//! Offline stand-in for the `serde` façade crate.
//!
//! Re-exports the no-op [`Serialize`] / [`Deserialize`] derive macros from
//! the sibling `serde_derive` shim so that `use serde::{Deserialize,
//! Serialize}` and `#[derive(serde::Serialize)]` compile unchanged in
//! hermetic builds. No serializer runs anywhere in the workspace yet; when
//! one is needed, point the workspace dependency at the real crates.io
//! `serde` and everything keeps compiling.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` so that the real `serde` can be dropped in once a
//! serialization workload lands (see ROADMAP), but nothing currently calls a
//! serializer. In hermetic builds these derives therefore expand to nothing:
//! the annotation is kept purely as a forward-compatible marker.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline micro-benchmark harness exposing the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API this workspace uses.
//!
//! The workspace builds hermetically (no crates.io access), so its
//! `cargo bench` targets run on this small stand-in: each benchmark is warmed
//! up briefly, timed for a fixed wall-clock budget, and reported as a
//! mean-per-iteration line on stdout. There is no statistical analysis,
//! plotting, or saved baseline — swap the workspace dependency for the real
//! crate when comparative numbers are needed.
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default();
//! c.bench_function("sum", |b| b.iter(|| (0..100u64).map(black_box).sum::<u64>()));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value
/// (thin wrapper over [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How long each benchmark is measured for.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// How long each benchmark is warmed up for.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// A named benchmark id, optionally carrying a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{parameter}", name.into()) }
    }

    /// An id that is just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Times closures; handed to the benchmark function.
pub struct Bencher {
    iters: u64,
    mean: Duration,
}

impl Bencher {
    /// Measure `routine`: warm up, then run repeatedly within the budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warmup_iters += 1;
        }
        // Size batches so the clock is read ~100 times per budget at most.
        let batch = (warmup_iters / 4).max(1);
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.iters = iters;
        self.mean = start.elapsed() / iters.max(1) as u32;
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one(name, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into() }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's budget is wall-clock based.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Run one benchmark of the group against `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// End the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher { iters: 0, mean: Duration::ZERO };
    f(&mut bencher);
    println!("bench {name:<50} {:>12.3?} /iter ({} iters)", bencher.mean, bencher.iters);
}

/// Collect benchmark functions into one runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = false;
        Criterion::default().bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &k| {
            b.iter(|| black_box(k * 2));
            seen = k;
        });
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &k| {
            b.iter(|| black_box(k * 2));
            seen += k;
        });
        group.finish();
        assert_eq!(seen, 8);
    }
}

//! Offline mini property-testing harness exposing the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API this workspace uses.
//!
//! The workspace builds hermetically (no crates.io access), so its
//! property-based tests run on this small, self-contained engine instead of
//! the real `proptest`. Supported surface:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   inner attribute) and the [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`] and [`prop_oneof!`] macros,
//! * [`Strategy`] with `prop_map` and `boxed`, implemented for integer
//!   ranges, tuples, [`Just`], [`any`] and simple `"[class]{lo,hi}"` string
//!   patterns,
//! * [`collection::vec`] (re-exported as `prop::collection::vec` from the
//!   [`prelude`]).
//!
//! Differences from the real crate: no shrinking (a failure reports the test
//! name, case number and seed instead of a minimized input), regex string
//! strategies only support a single character class with a `{lo,hi}`
//! repetition, and the default number of cases is 64.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// The crate example above must show `#[test]` inside `proptest!` because
// that is exactly what callers write; the doctest only checks compilation.
#![allow(clippy::test_attr_in_doctest)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The random source handed to strategies (a seeded [`StdRng`]).
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator for a named test.
    pub fn for_test(name: &str) -> TestRng {
        // Mix the test name into the seed so sibling tests draw different
        // streams while every run of the same test is reproducible.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn u64_below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n.max(1))
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assert!`-style failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the inputs do not apply, try others.
    Reject,
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// An input rejection.
    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// Per-test configuration, settable via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the runner gives up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 4096 }
    }
}

/// Drives one `proptest!`-generated test; called by the macro expansion.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    // A pass here would be vacuous; fail loudly like real
                    // proptest's "Too many global rejects".
                    panic!(
                        "proptest {name}: too many prop_assume! rejects \
                         ({rejected}; only {accepted}/{} cases ran)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest {name} failed at case {accepted} \
                     (deterministic seed; rerun this test to reproduce): {message}"
                );
            }
        }
    }
}

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no shrinking tree; a strategy simply draws a
/// fresh value per case.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies; built by [`prop_oneof!`].
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let arm = rng.u64_below(self.0.len() as u64) as usize;
        self.0[arm].new_value(rng)
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.0.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`, e.g. `any::<u8>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

/// String strategies from `"[class]{lo,hi}"` patterns.
///
/// Only this single-class shape of proptest's regex strategies is supported;
/// a pattern without metacharacters generates itself literally. Anything
/// else panics with a clear message.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self);
        let len = lo + rng.u64_below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| alphabet[rng.u64_below(alphabet.len() as u64) as usize]).collect()
    }
}

/// Parse `[class]{lo,hi}` into (alphabet, lo, hi); literals become
/// themselves with a fixed repetition of 1.
fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let unsupported = || {
        panic!(
            "the proptest shim only supports \"[class]{{lo,hi}}\" string \
             patterns or plain literals, got {pattern:?}"
        )
    };
    if !pattern.starts_with('[') {
        if pattern.contains(['[', ']', '{', '}', '*', '+', '?', '|', '(', ')']) {
            unsupported();
        }
        // A literal: "generate" the literal itself.
        return (pattern.chars().collect(), 1, 1);
    }
    let Some(class_end) = pattern.find(']') else { return unsupported() };
    let class: Vec<char> = pattern[1..class_end].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `x-y` is a range unless the `-` is the first or last character.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a > b {
                unsupported();
            }
            alphabet.extend((a..=b).filter(|c| c.is_ascii() || a == b));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        unsupported();
    }
    let rest = &pattern[class_end + 1..];
    let (lo, hi) = if rest.is_empty() {
        (1, 1)
    } else {
        let Some(inner) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
            return unsupported();
        };
        match inner.split_once(',') {
            Some((lo, hi)) => match (lo.trim().parse(), hi.trim().parse()) {
                (Ok(lo), Ok(hi)) if lo <= hi => (lo, hi),
                _ => return unsupported(),
            },
            None => match inner.trim().parse() {
                Ok(n) => (n, n),
                Err(_) => return unsupported(),
            },
        }
    };
    (alphabet, lo, hi)
}

/// Collection strategies (subset: [`collection::vec`]).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An element-count range for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.u64_below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of real proptest's `prelude::prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($config) $($rest)* }
    };
    (@run ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $(let $arg = $strategy;)+
                $crate::run_cases(&config, stringify!($name), |prop_rng| {
                    // Each binding shadows its strategy with a drawn value,
                    // so the body sees concretely-typed inputs (closures with
                    // inferred parameters would break method resolution).
                    $(let $arg = $crate::Strategy::new_value(&$arg, prop_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}: {:?} vs {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}: both {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case (retry with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, y in 1usize..=9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..=9).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_the_range(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(s in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0 && s < 20);
        }

        #[test]
        fn oneof_covers_all_arms(v in prop_oneof![Just(1u8), Just(2u8), 3u8..=3]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn string_patterns_match_class_and_length(s in "[a-c0-2 .:-]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| "abc012 .:-".contains(c)));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn config_cases_are_honoured() {
        let mut runs = 0;
        super::run_cases(&ProptestConfig::with_cases(24), "counting", |_| {
            runs += 1;
            Ok(())
        });
        assert_eq!(runs, 24);
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failures_panic_with_the_test_name() {
        super::run_cases(&ProptestConfig::with_cases(1), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejects")]
    fn unsatisfiable_assumptions_fail_instead_of_passing_vacuously() {
        super::run_cases(&ProptestConfig::with_cases(1), "always_rejects", |_| {
            Err(TestCaseError::reject())
        });
    }

    #[test]
    fn literal_patterns_generate_themselves() {
        let (alphabet, lo, hi) = super::parse_pattern("abc");
        assert_eq!(alphabet, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (1, 1));
    }
}

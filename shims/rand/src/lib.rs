//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand) 0.8
//! API.
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the handful of `rand` features the code actually uses are implemented
//! here: [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64, exactly like
//! `rand_xoshiro`), [`SeedableRng::seed_from_u64`], [`Rng::gen`] /
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom`]'s
//! `shuffle` / `choose`.
//!
//! The streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), but every consumer in this workspace only relies on the
//! generator being deterministic per seed and statistically uniform, both of
//! which hold here.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! assert!(rng.gen_range(10..20) >= 10);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64` / `u32` words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample a value from the "standard" distribution of `T`: uniform over
    /// the whole domain for integers, uniform in `[0, 1)` for floats.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive integer range.
    ///
    /// Panics if the range is empty, like upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit widening multiply
/// (Lemire's method without the rejection step; the bias is ≤ span/2^64).
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Not cryptographically secure (neither is upstream's contract), but
    /// fast, uniform, and deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset: `shuffle` and `choose` on slices).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut low = false;
        let mut high = false;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            low |= x < 0.25;
            high |= x > 0.75;
        }
        assert!(low && high, "samples should spread across [0, 1)");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(3usize..=3);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn gen_range_hits_every_value_of_a_small_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! A fuller outsourcing scenario: a hospital releases clinical records to a
//! research institute under explicit usage metrics, exports the release as
//! CSV, and later verifies that a leaked copy carries its mark.
//!
//! ```bash
//! cargo run --release -p medshield-core --example hospital_outsourcing
//! ```

use medshield_core::dht::GeneralizationSet;
use medshield_core::metrics::UsageBounds;
use medshield_core::relation::csv;
use medshield_core::{ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use std::collections::BTreeMap;

fn main() {
    // The hospital's data set.
    let dataset = MedicalDataset::generate(&DatasetConfig {
        num_tuples: 5_000,
        seed: 20_050_405, // ICDE 2005, Tokyo
        zipf_exponent: 0.8,
    });

    // Usage metrics agreed with the research institute. Following §5.1 of the
    // paper, the hospital states the maximal generalization nodes slightly
    // *looser* than what k-anonymity strictly requires (here: the tree roots),
    // so that a gap remains between the maximal and the ultimate
    // generalization nodes — that gap is the watermark's bandwidth channel.
    let maximal: BTreeMap<String, GeneralizationSet> = dataset
        .trees
        .iter()
        .map(|(name, tree)| (name.clone(), GeneralizationSet::at_depth(tree, 0)))
        .collect();

    let config = ProtectionConfig::builder()
        .k(25)
        .epsilon(2) // absorb watermarking perturbations (§6)
        .eta(20)
        .duplication(4)
        .mark_len(20)
        .mark_from_statistic(true) // rightful-ownership construction (§5.4)
        .encryption_secret(b"hospital-identifier-key-2005".to_vec())
        .watermark_secret(b"hospital-watermark-key-2005".to_vec())
        .build();
    let pipeline = ProtectionPipeline::new(config);

    let release = pipeline
        .protect_with_metrics(&dataset.table, &dataset.trees, &maximal)
        .expect("binnable under the agreed usage metrics");

    println!(
        "binned {} tuples to {}-anonymity (+ε), multi-attribute search mode: {:?}",
        release.table.len(),
        25,
        release.binning.mode
    );
    for warning in &release.binning.warnings {
        println!("  note: {warning}");
    }

    // Report the information loss of the release against (generous) usage
    // bounds — with 25-anonymity over five quasi-identifiers most columns end
    // up heavily generalized, exactly as the paper's Fig. 11 shows.
    let quasi = dataset.table.schema().quasi_names();
    let bounds = UsageBounds::uniform(&quasi, 1.0);
    let cgs: Vec<_> = release
        .binning
        .columns
        .iter()
        .map(|cb| medshield_core::metrics::ColumnGeneralization {
            column: &cb.column,
            tree: &dataset.trees[&cb.column],
            generalization: &cb.ultimate,
        })
        .collect();
    let check = bounds.check(&dataset.table, &cgs).unwrap();
    println!("information loss per column:");
    for (column, c) in &check.per_column {
        println!("  {column:<13} {:5.1}%  (bound {:.0}%)", c.loss * 100.0, c.bound * 100.0);
    }
    println!("  average       {:5.1}%", check.average_loss * 100.0);

    // Ship the release as CSV (this is what the institute receives).
    let csv_text = csv::to_csv(&release.table);
    println!(
        "release CSV: {} bytes, first line: {}",
        csv_text.len(),
        csv_text.lines().next().unwrap_or("")
    );

    // Months later, a copy of the data surfaces on a data broker's site. The
    // hospital checks whether it is its release.
    let leaked = release.table.snapshot();
    let detection = pipeline.detect(&leaked, &release.binning.columns, &dataset.trees).unwrap();
    let loss = medshield_core::metrics::mark_loss(release.mark.bits(), &detection.mark);
    println!(
        "mark recovered from the leaked copy with {:.0}% bit loss ({} of {} wmd positions covered)",
        loss * 100.0,
        detection.covered_positions,
        detection.wmd_len,
    );

    // And takes the broker to court with the statistic-derived proof.
    let proof = release.ownership.as_ref().expect("statistic-derived mark");
    let verdict = pipeline.resolve_ownership(
        proof,
        &leaked,
        "ssn",
        &detection.mark,
        proof.statistic.abs() * 0.05 + 1.0,
        0.2,
    );
    println!(
        "ownership dispute: statistic consistent = {}, mark loss = {:.0}%, accepted = {}",
        verdict.statistic_consistent,
        verdict.mark_loss * 100.0,
        verdict.accepted
    );
    assert!(verdict.accepted);
}

//! Quickstart: protect a synthetic medical table, verify the privacy and
//! ownership guarantees, and print a short report.
//!
//! ```bash
//! cargo run --release -p medshield-core --example quickstart
//! ```

use medshield_core::metrics::{satisfies_k_anonymity, ColumnGeneralization};
use medshield_core::{ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};

fn main() {
    // 1. A synthetic hospital data set (stand-in for the paper's 20,000-tuple
    //    clinical table). 2,000 tuples keep the example fast.
    let dataset = MedicalDataset::generate(&DatasetConfig::small(2_000));
    println!(
        "generated {} tuples with schema R(ssn, age, zip_code, doctor, symptom, prescription)",
        dataset.table.len()
    );

    // 2. Configure the framework: 10-anonymity, watermark 1 tuple in 10,
    //    20-bit mark derived from the owner's name.
    let config = ProtectionConfig::builder()
        .k(10)
        .eta(10)
        .duplication(4)
        .mark_len(20)
        .mark_text("City Hospital Research Release")
        .build();
    let pipeline = ProtectionPipeline::new(config);

    // 3. Protect: binning (privacy) followed by hierarchical watermarking
    //    (ownership).
    let release =
        pipeline.protect(&dataset.table, &dataset.trees).expect("the synthetic data are binnable");

    // 4. Privacy check: every quasi-identifier combination is shared by at
    //    least k records.
    let quasi = release.table.schema().quasi_names();
    let k_ok = satisfies_k_anonymity(&release.binning.table, &quasi, 10).unwrap();
    println!(
        "k-anonymity (k=10) on the binned table: {}",
        if k_ok { "satisfied" } else { "NOT satisfied" }
    );

    // 5. Information loss of the release (Eq. 3).
    let cgs: Vec<ColumnGeneralization<'_>> = release
        .binning
        .columns
        .iter()
        .map(|cb| ColumnGeneralization {
            column: &cb.column,
            tree: &dataset.trees[&cb.column],
            generalization: &cb.ultimate,
        })
        .collect();
    let loss = medshield_core::metrics::table_info_loss(&dataset.table, &cgs).unwrap();
    println!("normalized information loss of binning: {:.1}%", loss * 100.0);

    // 6. Ownership check: the mark is recoverable from the released table.
    let detection =
        pipeline.detect(&release.table, &release.binning.columns, &dataset.trees).unwrap();
    println!(
        "embedded mark : {}\nrecovered mark: {}",
        release.mark,
        medshield_core::watermark::Mark::from_bits(detection.mark.clone())
    );
    println!(
        "watermarked {} of {} tuples ({} cells changed)",
        release.embedding.selected_tuples,
        dataset.table.len(),
        release.embedding.changed_cells
    );
    assert_eq!(detection.mark, release.mark.bits(), "clean detection must be exact");
    println!("ownership mark verified — the release is ready for outsourcing");
}

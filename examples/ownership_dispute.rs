//! The rightful-ownership problem (§5.4) acted out: the owner protects a
//! release with a statistic-derived mark; an attacker re-watermarks the
//! stolen copy with his own key (attack 1 of Fig. 10) and both parties go to
//! court. The protocol accepts the owner and rejects the attacker without
//! ever presenting the original 20,000-tuple table.
//!
//! ```bash
//! cargo run --release -p medshield-core --example ownership_dispute
//! ```

use medshield_core::watermark::ownership::OwnershipProof;
use medshield_core::watermark::{HierarchicalWatermarker, Mark, WatermarkConfig, WatermarkKey};
use medshield_core::{ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};

fn main() {
    let dataset = MedicalDataset::generate(&DatasetConfig::small(3_000));

    // ---------------------------------------------------------------- owner
    let owner = ProtectionPipeline::new(
        ProtectionConfig::builder()
            .k(5)
            .eta(10)
            .mark_len(20)
            .mark_from_statistic(true)
            .encryption_secret(b"owner-identifier-key".to_vec())
            .watermark_secret(b"owner-watermark-key".to_vec())
            .build(),
    );
    let release = owner.protect(&dataset.table, &dataset.trees).unwrap();
    let owner_proof = release.ownership.clone().expect("statistic-derived mark");
    println!(
        "owner released {} tuples; statistic v = {:.3}; mark F(v) = {}",
        release.table.len(),
        owner_proof.statistic,
        release.mark
    );

    // ------------------------------------------------------------- attacker
    // Attack 1 (Fig. 10): the attacker takes the owner's watermarked data and
    // inserts his *own* mark with his own key, then claims ownership.
    let attacker_key = WatermarkKey::from_master(b"attacker-watermark-key", 10);
    let attacker_wm = HierarchicalWatermarker::new(WatermarkConfig::new(attacker_key));
    let attacker_mark = Mark::from_bytes(b"attacker-mark", 20);
    // The attacker only holds the released (already watermarked) table; he
    // re-embeds his own mark on top of it.
    let (double_marked, _) = attacker_wm
        .embed_into(&release.table, &release.binning.columns, &dataset.trees, &attacker_mark)
        .unwrap();
    println!("attacker re-watermarked the stolen copy with his own key");

    // ----------------------------------------------------------------- court
    // Both parties present: a statistic claim, and the mark their detector
    // extracts from the disputed table.
    let tau = owner_proof.statistic.abs() * 0.05 + 1.0;

    // The owner's detector still finds the owner's mark (the attacker's extra
    // permutations act like a subset-alteration attack).
    let owner_detection =
        owner.detect(&double_marked, &release.binning.columns, &dataset.trees).unwrap();
    let owner_verdict = owner.resolve_ownership(
        &owner_proof,
        &double_marked,
        "ssn",
        &owner_detection.mark,
        tau,
        0.3,
    );
    println!(
        "owner    → statistic consistent: {}, mark loss {:.0}%, accepted: {}",
        owner_verdict.statistic_consistent,
        owner_verdict.mark_loss * 100.0,
        owner_verdict.accepted
    );

    // The attacker cannot decrypt the identifying column (he lacks the
    // binning key), so his recomputed statistic is garbage; and his mark is
    // not F(v) for any v he can exhibit of the clear-text identifiers.
    let attacker_claim = OwnershipProof { statistic: 987_654_321.0, mark_len: 20 };
    let attacker_detection =
        attacker_wm.detect(&double_marked, &release.binning.columns, &dataset.trees, 20).unwrap();
    let attacker_verdict = owner.resolve_ownership(
        // The court uses the claimant's own proof and extraction, but the
        // decryption step requires the binning key, which only the owner has.
        &attacker_claim,
        &double_marked,
        "ssn",
        &attacker_detection.mark,
        tau,
        0.3,
    );
    println!(
        "attacker → statistic consistent: {}, mark loss {:.0}%, accepted: {}",
        attacker_verdict.statistic_consistent,
        attacker_verdict.mark_loss * 100.0,
        attacker_verdict.accepted
    );

    assert!(owner_verdict.accepted, "the rightful owner must win the dispute");
    assert!(!attacker_verdict.accepted, "the attacker must lose the dispute");
    println!("verdict: the original data holder retains provable ownership");
}

//! Traitor tracing acted out: the owner protects one release, hands
//! fingerprinted copies to three clinics, and — when a doctored table shows
//! up on a leak site — ranks every recipient against the recovered bits to
//! name the leaker. No per-recipient key material exists anywhere: each
//! fingerprint is re-derived from the owner key and the clinic's name.
//!
//! ```bash
//! cargo run --release --example traitor_tracing
//! ```

use medshield_core::attacks::{Attack, CollusionAttack, SubsetAlteration};
use medshield_core::watermark::{score_recipients, FingerprintDeriver, HierarchicalWatermarker};
use medshield_core::{ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};

fn main() {
    let dataset = MedicalDataset::generate(&DatasetConfig::small(3_000));

    // One protected release, exactly as before the release/copy refinement.
    let owner = ProtectionPipeline::new(
        ProtectionConfig::builder()
            .k(5)
            .eta(10)
            .mark_len(20)
            .watermark_secret(b"owner-watermark-key".to_vec())
            .build(),
    );
    let release = owner.protect(&dataset.table, &dataset.trees).unwrap();
    println!("owner released {} tuples (mark {})", release.table.len(), release.mark);

    // Per-recipient copies: re-embed each clinic's fingerprint over the
    // release. Tuple selection is content-keyed, so the re-embedding
    // overwrites exactly the cells the release mark occupies.
    let deriver = FingerprintDeriver::new(&owner.config().watermark.key, owner.config().mark_len);
    let wm = HierarchicalWatermarker::new(owner.config().watermark.clone());
    let clinics = ["clinic-a", "clinic-b", "clinic-c"];
    let copies: Vec<_> = clinics
        .iter()
        .map(|name| {
            let mark = deriver.derive(name);
            let (copy, _) = wm
                .embed_into(&release.table, &release.binning.columns, &dataset.trees, &mark)
                .unwrap();
            ((*name).to_string(), mark, copy)
        })
        .collect();
    println!("issued {} fingerprinted copies", copies.len());

    // clinic-b's copy leaks, doctored by a 15% subset-alteration attack.
    let leaked = SubsetAlteration::new(0.15, 42).apply(&copies[1].2);
    let report = owner.detect(&leaked, &release.binning.columns, &dataset.trees).unwrap();
    let ranking =
        score_recipients(&report.mark, copies.iter().map(|(name, mark, _)| (name.as_str(), mark)));
    println!("altered leak, ranked:");
    for r in &ranking {
        println!("  {}: {:.3} ({}/{} bits)", r.name, r.score, r.matching_bits, r.compared_bits);
    }
    assert_eq!(ranking[0].name, "clinic-b");
    println!("→ traced to {}", ranking[0].name);

    // clinic-b and clinic-c collude, majority-mixing their two copies cell
    // by cell. Each colluder still agrees with most mixed positions while
    // the innocent clinic-a sits near 1/2 — the top of the ranking is a
    // member of the colluding set.
    let colluded = CollusionAttack::new(vec![copies[2].2.clone()], 7).apply(&copies[1].2);
    let report = owner.detect(&colluded, &release.binning.columns, &dataset.trees).unwrap();
    let ranking =
        score_recipients(&report.mark, copies.iter().map(|(name, mark, _)| (name.as_str(), mark)));
    println!("colluded leak, ranked:");
    for r in &ranking {
        println!("  {}: {:.3}", r.name, r.score);
    }
    assert!(ranking[0].name == "clinic-b" || ranking[0].name == "clinic-c");
    println!("→ traced to {} (a colluder)", ranking[0].name);
}

//! Attack robustness demo: apply the paper's attack models to a protected
//! release and report how much of the mark survives each of them — a
//! miniature, human-readable version of the Fig. 12 experiments, plus the
//! §5.2 generalization-attack comparison between the single-level and the
//! hierarchical schemes.
//!
//! ```bash
//! cargo run --release -p medshield-core --example attack_robustness
//! ```

use medshield_core::attacks::{
    Attack, GeneralizationAttack, MixedAttack, SubsetAddition, SubsetAlteration, SubsetDeletion,
};
use medshield_core::metrics::mark_loss;
use medshield_core::watermark::{Mark, SingleLevelWatermarker, WatermarkConfig, WatermarkKey};
use medshield_core::{ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};

fn main() {
    let dataset = MedicalDataset::generate(&DatasetConfig::small(4_000));
    let config = ProtectionConfig::builder()
        .k(5)
        .eta(10)
        .mark_len(20)
        .mark_text("General Hospital 2005")
        .build();
    let pipeline = ProtectionPipeline::new(config);
    let release = pipeline.protect(&dataset.table, &dataset.trees).unwrap();
    println!(
        "protected {} tuples; {} watermarked; mark = {}",
        release.table.len(),
        release.embedding.selected_tuples,
        release.mark
    );

    let attacks: Vec<(String, Box<dyn Attack>)> = vec![
        ("subset alteration 30%".into(), Box::new(SubsetAlteration::new(0.30, 1))),
        ("subset alteration 60%".into(), Box::new(SubsetAlteration::new(0.60, 2))),
        ("subset addition 50%".into(), Box::new(SubsetAddition::new(0.50, 3))),
        ("subset deletion 50% (random)".into(), Box::new(SubsetDeletion::random(0.50, 4))),
        (
            "subset deletion 40% (SQL ranges)".into(),
            Box::new(SubsetDeletion::ranges(0.40, 5, "ssn")),
        ),
        (
            "generalization attack (1 level)".into(),
            Box::new(GeneralizationAttack::new(1, dataset.trees.clone())),
        ),
        (
            "mixed: delete 20% + add 20% + alter 20%".into(),
            Box::new(
                MixedAttack::new()
                    .then(SubsetDeletion::random(0.20, 6))
                    .then(SubsetAddition::new(0.20, 7))
                    .then(SubsetAlteration::new(0.20, 8)),
            ),
        ),
    ];

    println!("\n{:<42} {:>10} {:>12}", "attack", "mark loss", "table size");
    for (name, attack) in &attacks {
        let attacked = attack.apply(&release.table);
        let detection =
            pipeline.detect(&attacked, &release.binning.columns, &dataset.trees).unwrap();
        let loss = mark_loss(release.mark.bits(), &detection.mark);
        println!("{:<42} {:>9.1}% {:>12}", name, loss * 100.0, attacked.len());
    }

    // §5.2: the generalization attack erases a single-level watermark but not
    // the hierarchical one.
    println!("\ngeneralization-attack ablation (single-level vs hierarchical):");
    let key = WatermarkKey::from_master(b"General Hospital 2005/single", 10);
    let single = SingleLevelWatermarker::new(WatermarkConfig::new(key));
    let mark = Mark::from_bytes(b"General Hospital 2005", 20);
    let single_marked = single.embed(&release.binning, &dataset.trees, &mark).unwrap();
    let attack = GeneralizationAttack::new(1, dataset.trees.clone());

    let single_clean = single
        .detect(&single_marked, &release.binning.columns, &dataset.trees, mark.len())
        .unwrap();
    let single_attacked = single
        .detect(&attack.apply(&single_marked), &release.binning.columns, &dataset.trees, mark.len())
        .unwrap();
    let hier_attacked = pipeline
        .detect(&attack.apply(&release.table), &release.binning.columns, &dataset.trees)
        .unwrap();
    println!(
        "  single-level : {:>5.1}% loss before the attack, {:>5.1}% after",
        mark_loss(mark.bits(), &single_clean) * 100.0,
        mark_loss(mark.bits(), &single_attacked) * 100.0
    );
    println!(
        "  hierarchical : {:>5.1}% loss before the attack, {:>5.1}% after",
        0.0,
        mark_loss(release.mark.bits(), &hier_attacked.mark) * 100.0
    );
}

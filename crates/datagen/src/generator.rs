//! Deterministic synthetic generation of the medical table.
//!
//! The generator draws categorical values from a Zipf-like distribution over
//! the ontology leaves (rank-skewed, like diagnosis frequencies in real
//! clinical data), ages from a triangular-ish mixture centred on middle age,
//! and zip codes Zipf-skewed across the metropolitan range. Every tuple gets
//! a unique SSN-formatted identifier. The same [`DatasetConfig`] always
//! produces the same table.

use crate::ontology;
use medshield_dht::DomainHierarchyTree;
use medshield_relation::{Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Configuration of the synthetic data set.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of tuples to generate (the paper's data set has ~20,000).
    pub num_tuples: usize,
    /// PRNG seed; the same seed yields the same table.
    pub seed: u64,
    /// Zipf exponent for categorical leaf frequencies (0 = uniform; the
    /// default 0.8 gives realistically skewed bins).
    pub zipf_exponent: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig { num_tuples: 20_000, seed: 0x5EED_CAFE, zipf_exponent: 0.8 }
    }
}

impl DatasetConfig {
    /// A smaller configuration for unit tests and quick examples.
    pub fn small(num_tuples: usize) -> Self {
        DatasetConfig { num_tuples, ..Default::default() }
    }
}

/// The generated data set: the table plus the domain hierarchy tree of every
/// quasi-identifying column.
#[derive(Debug, Clone)]
pub struct MedicalDataset {
    /// The generated table, using [`Schema::medical_example`].
    pub table: Table,
    /// Quasi-identifier trees keyed by column name.
    pub trees: BTreeMap<String, DomainHierarchyTree>,
}

impl MedicalDataset {
    /// Generate a data set from the configuration.
    pub fn generate(config: &DatasetConfig) -> Self {
        let trees = ontology::all_trees();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut table = Table::new(Schema::medical_example());

        // Pre-compute the leaf label pools for the categorical columns.
        let doctor_leaves = leaf_labels(&trees["doctor"]);
        let symptom_leaves = leaf_labels(&trees["symptom"]);
        let prescription_leaves = leaf_labels(&trees["prescription"]);

        let doctor_cdf = zipf_cdf(doctor_leaves.len(), config.zipf_exponent);
        let symptom_cdf = zipf_cdf(symptom_leaves.len(), config.zipf_exponent);
        let prescription_cdf = zipf_cdf(prescription_leaves.len(), config.zipf_exponent);
        let zip_leaves =
            ((ontology::ZIP_MAX - ontology::ZIP_MIN) / ontology::ZIP_LEAF_WIDTH) as usize;
        let zip_cdf = zipf_cdf(zip_leaves, config.zipf_exponent);

        for i in 0..config.num_tuples {
            let ssn =
                format!("{:03}-{:02}-{:04}", (i / 100_000) % 1000, (i / 10_000) % 100, i % 10_000);
            let age = sample_age(&mut rng);
            let zip = sample_zip(&mut rng, &zip_cdf);
            let doctor = pick(&mut rng, &doctor_cdf, &doctor_leaves);
            let symptom = pick(&mut rng, &symptom_cdf, &symptom_leaves);
            let prescription = pick(&mut rng, &prescription_cdf, &prescription_leaves);
            table
                .insert(vec![
                    Value::text(ssn),
                    Value::int(age),
                    Value::int(zip),
                    Value::text(doctor),
                    Value::text(symptom),
                    Value::text(prescription),
                ])
                .expect("generated tuple matches the schema arity");
        }

        MedicalDataset { table, trees }
    }

    /// The tree for a column, if it is one of the quasi-identifiers.
    pub fn tree(&self, column: &str) -> Option<&DomainHierarchyTree> {
        self.trees.get(column)
    }

    /// Names of the quasi-identifying columns, in schema order.
    pub fn quasi_columns(&self) -> Vec<String> {
        self.table
            .schema()
            .quasi_names()
            .into_iter()
            .map(std::string::ToString::to_string)
            .collect()
    }
}

/// Labels of the leaves of a categorical tree, in left-to-right order.
fn leaf_labels(tree: &DomainHierarchyTree) -> Vec<String> {
    tree.leaves().into_iter().map(|l| tree.node(l).expect("leaf exists").label.clone()).collect()
}

/// Cumulative distribution of a Zipf(s) law over `n` ranks.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Draw an index from a CDF.
fn sample_cdf(rng: &mut StdRng, cdf: &[f64]) -> usize {
    let u: f64 = rng.gen();
    match cdf.iter().position(|&c| u <= c) {
        Some(i) => i,
        None => cdf.len() - 1,
    }
}

/// Pick a label using a Zipf CDF.
fn pick<'a>(rng: &mut StdRng, cdf: &[f64], labels: &'a [String]) -> &'a str {
    &labels[sample_cdf(rng, cdf)]
}

/// Age distribution: a mixture of three uniform bands approximating a
/// clinical population (children, adults, elderly), clipped to the domain.
fn sample_age(rng: &mut StdRng) -> i64 {
    let band: f64 = rng.gen();
    let age: i64 = if band < 0.15 {
        rng.gen_range(0..18)
    } else if band < 0.70 {
        rng.gen_range(18..65)
    } else {
        rng.gen_range(65..100)
    };
    age.clamp(ontology::AGE_MIN, ontology::AGE_MAX - 1)
}

/// Zip codes: Zipf-skewed across the leaf intervals, uniform inside a leaf.
fn sample_zip(rng: &mut StdRng, cdf: &[f64]) -> i64 {
    let leaf = sample_cdf(rng, cdf) as i64;
    let lo = ontology::ZIP_MIN + leaf * ontology::ZIP_LEAF_WIDTH;
    let hi = (lo + ontology::ZIP_LEAF_WIDTH).min(ontology::ZIP_MAX);
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_relation::stats;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DatasetConfig::small(200);
        let a = MedicalDataset::generate(&cfg);
        let b = MedicalDataset::generate(&cfg);
        assert_eq!(a.table.len(), 200);
        for (ta, tb) in a.table.iter().zip(b.table.iter()) {
            assert_eq!(ta.values, tb.values);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = MedicalDataset::generate(&DatasetConfig { seed: 1, ..DatasetConfig::small(100) });
        let b = MedicalDataset::generate(&DatasetConfig { seed: 2, ..DatasetConfig::small(100) });
        let same = a.table.iter().zip(b.table.iter()).filter(|(x, y)| x.values == y.values).count();
        assert!(same < 100, "tables should differ between seeds");
    }

    #[test]
    fn ssns_are_unique() {
        let d = MedicalDataset::generate(&DatasetConfig::small(1000));
        let ssns = stats::value_counts(&d.table, "ssn").unwrap();
        assert_eq!(ssns.len(), 1000);
    }

    #[test]
    fn every_value_is_in_its_tree_domain() {
        let d = MedicalDataset::generate(&DatasetConfig::small(500));
        for column in d.quasi_columns() {
            let tree = d.tree(&column).unwrap();
            for v in d.table.column_values(&column).unwrap() {
                assert!(
                    tree.leaf_for_value(&v).is_ok(),
                    "column {column} value {v} not in the tree domain"
                );
            }
        }
    }

    #[test]
    fn categorical_distribution_is_skewed() {
        let d = MedicalDataset::generate(&DatasetConfig::small(5000));
        let counts = stats::value_counts(&d.table, "symptom").unwrap();
        let max = counts.values().max().copied().unwrap_or(0);
        let min = counts.values().min().copied().unwrap_or(0);
        // Zipf skew: the most common code should be clearly more frequent
        // than the least common one.
        assert!(max >= 4 * min.max(1), "max {max}, min {min}");
    }

    #[test]
    fn ages_are_within_domain() {
        let d = MedicalDataset::generate(&DatasetConfig::small(2000));
        for v in d.table.column_values("age").unwrap() {
            let age = v.as_int().unwrap();
            assert!((ontology::AGE_MIN..ontology::AGE_MAX).contains(&age));
        }
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let cfg = DatasetConfig::default();
        assert_eq!(cfg.num_tuples, 20_000);
    }

    #[test]
    fn quasi_columns_match_schema() {
        let d = MedicalDataset::generate(&DatasetConfig::small(10));
        assert_eq!(d.quasi_columns(), vec!["age", "zip_code", "doctor", "symptom", "prescription"]);
        assert!(d.tree("age").is_some());
        assert!(d.tree("ssn").is_none());
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let cdf = zipf_cdf(10, 0.8);
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
    }
}

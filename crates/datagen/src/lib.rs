//! # medshield-datagen
//!
//! Synthetic medical data sets and domain ontologies for the MedShield
//! framework.
//!
//! The paper evaluates on a proprietary real-world data set of roughly 20,000
//! tuples with schema `R(ssn, age, zip_code, doctor, symptom, prescription)`,
//! where the `symptom` hierarchy follows ICD-9 and the other attributes use
//! self-defined ontologies (§7). That data set is not available, so this crate
//! provides the substitution documented in `DESIGN.md`:
//!
//! * [`ontology`] — domain hierarchy trees with the same *shapes* the paper
//!   describes: an ICD-9-like multi-level code tree for `symptom`, fan-out
//!   trees for `doctor` and `prescription`, a narrow-interval binary tree for
//!   `age` (Fig. 3 "of narrower intervals"), and an interval tree for
//!   `zip_code`.
//! * [`generator`] — a deterministic, seedable generator producing any number
//!   of tuples with skewed (Zipf-like) categorical frequencies and a plausible
//!   age distribution, so that bin sizes are uneven the way real clinical data
//!   are.
//!
//! All algorithms in the paper depend only on tree topology and on the
//! multiplicity of values per leaf, so this substitution preserves the
//! behaviour that the experiments measure.
//!
//! ```
//! use medshield_datagen::{DatasetConfig, MedicalDataset};
//!
//! let ds = MedicalDataset::generate(&DatasetConfig::small(100));
//! assert_eq!(ds.table.len(), 100);
//! // Every quasi-identifying column comes with its domain hierarchy tree.
//! assert_eq!(ds.quasi_columns().len(), 5);
//! assert!(ds.quasi_columns().iter().all(|c| ds.tree(c).is_some()));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod generator;
pub mod ontology;

pub use generator::{DatasetConfig, MedicalDataset};

//! Domain ontologies (domain hierarchy trees) for the synthetic medical
//! schema `R(ssn, age, zip_code, doctor, symptom, prescription)`.
//!
//! The trees mirror the shapes described in §7 of the paper: the `symptom`
//! tree is ICD-9-like (chapters → blocks → three-digit categories), `age` is
//! the Fig. 3 binary interval tree "of narrower intervals", and the other
//! attributes use self-defined ontologies.

use medshield_dht::builder::{numeric_binary_tree, CategoricalNodeSpec};
use medshield_dht::DomainHierarchyTree;
use std::collections::BTreeMap;

/// Lower bound (inclusive) of the age domain.
pub const AGE_MIN: i64 = 0;
/// Upper bound (exclusive) of the age domain.
pub const AGE_MAX: i64 = 150;
/// Width of an age leaf interval ("narrower intervals" than Fig. 3's 20).
pub const AGE_LEAF_WIDTH: i64 = 5;

/// Lower bound (inclusive) of the zip-code domain.
pub const ZIP_MIN: i64 = 53_000;
/// Upper bound (exclusive) of the zip-code domain.
pub const ZIP_MAX: i64 = 53_640;
/// Width of a zip-code leaf interval.
pub const ZIP_LEAF_WIDTH: i64 = 10;

/// The Fig. 1 person-role tree (types of person roles), kept verbatim as the
/// paper's illustrative example. The synthetic `doctor` column uses the
/// richer [`doctor_tree`], but this one is handy for small tests and the
/// quickstart example.
pub fn role_tree() -> DomainHierarchyTree {
    CategoricalNodeSpec::internal(
        "Person",
        vec![
            CategoricalNodeSpec::internal(
                "Medical Staff",
                vec![
                    CategoricalNodeSpec::internal(
                        "Doctor",
                        vec![
                            CategoricalNodeSpec::leaf("Surgeon"),
                            CategoricalNodeSpec::leaf("Physician"),
                        ],
                    ),
                    CategoricalNodeSpec::internal(
                        "Paramedic",
                        vec![
                            CategoricalNodeSpec::leaf("Pharmacist"),
                            CategoricalNodeSpec::leaf("Nurse"),
                            CategoricalNodeSpec::leaf("Consultant"),
                        ],
                    ),
                ],
            ),
            CategoricalNodeSpec::internal(
                "Non-medical Staff",
                vec![
                    CategoricalNodeSpec::leaf("Technician"),
                    CategoricalNodeSpec::leaf("Administrator"),
                ],
            ),
        ],
    )
    .build("role")
    .expect("role ontology labels are unique")
}

/// The attending-practitioner ontology for the `doctor` column:
/// care domain → specialty group → concrete specialty (18 leaves, depth 3).
pub fn doctor_tree() -> DomainHierarchyTree {
    let spec = CategoricalNodeSpec::internal(
        "Practitioner",
        vec![
            CategoricalNodeSpec::internal(
                "Physician",
                vec![
                    CategoricalNodeSpec::internal(
                        "Surgical",
                        vec![
                            CategoricalNodeSpec::leaf("Cardiac Surgeon"),
                            CategoricalNodeSpec::leaf("Neurosurgeon"),
                            CategoricalNodeSpec::leaf("Orthopedic Surgeon"),
                            CategoricalNodeSpec::leaf("General Surgeon"),
                        ],
                    ),
                    CategoricalNodeSpec::internal(
                        "Internal Medicine",
                        vec![
                            CategoricalNodeSpec::leaf("Cardiologist"),
                            CategoricalNodeSpec::leaf("Pulmonologist"),
                            CategoricalNodeSpec::leaf("Gastroenterologist"),
                            CategoricalNodeSpec::leaf("Endocrinologist"),
                        ],
                    ),
                    CategoricalNodeSpec::internal(
                        "Primary Care",
                        vec![
                            CategoricalNodeSpec::leaf("Family Physician"),
                            CategoricalNodeSpec::leaf("Pediatrician"),
                            CategoricalNodeSpec::leaf("Geriatrician"),
                        ],
                    ),
                ],
            ),
            CategoricalNodeSpec::internal(
                "Allied Health",
                vec![
                    CategoricalNodeSpec::internal(
                        "Nursing",
                        vec![
                            CategoricalNodeSpec::leaf("Registered Nurse"),
                            CategoricalNodeSpec::leaf("Nurse Practitioner"),
                            CategoricalNodeSpec::leaf("Midwife"),
                        ],
                    ),
                    CategoricalNodeSpec::internal(
                        "Therapy",
                        vec![
                            CategoricalNodeSpec::leaf("Physiotherapist"),
                            CategoricalNodeSpec::leaf("Occupational Therapist"),
                        ],
                    ),
                    CategoricalNodeSpec::internal(
                        "Pharmacy",
                        vec![
                            CategoricalNodeSpec::leaf("Clinical Pharmacist"),
                            CategoricalNodeSpec::leaf("Pharmacy Technician"),
                        ],
                    ),
                ],
            ),
        ],
    );
    spec.build("doctor").expect("doctor ontology labels are unique")
}

/// ICD-9 chapter descriptors used to generate the symptom tree:
/// (chapter name, first three-digit code, number of blocks, codes per block).
const ICD9_CHAPTERS: &[(&str, u32, u32, u32)] = &[
    ("Infectious And Parasitic Diseases (001-139)", 1, 3, 4),
    ("Neoplasms (140-239)", 140, 3, 4),
    ("Endocrine And Metabolic Diseases (240-279)", 240, 3, 4),
    ("Diseases Of The Circulatory System (390-459)", 390, 4, 4),
    ("Diseases Of The Respiratory System (460-519)", 460, 3, 4),
    ("Diseases Of The Digestive System (520-579)", 520, 3, 4),
    ("Diseases Of The Genitourinary System (580-629)", 580, 3, 4),
    ("Injury And Poisoning (800-999)", 800, 3, 4),
];

/// The ICD-9-like symptom ontology: chapter → block → three-digit code.
/// 8 chapters × 3–4 blocks × 4 codes ≈ 104 leaves, depth 3 — the same
/// topology class as the real ICD-9 hierarchy the paper uses.
pub fn symptom_tree() -> DomainHierarchyTree {
    let chapters: Vec<CategoricalNodeSpec> = ICD9_CHAPTERS
        .iter()
        .map(|&(name, start, blocks, codes_per_block)| {
            let block_specs: Vec<CategoricalNodeSpec> = (0..blocks)
                .map(|b| {
                    let block_start = start + b * codes_per_block;
                    let block_end = block_start + codes_per_block - 1;
                    let leaves: Vec<CategoricalNodeSpec> = (0..codes_per_block)
                        .map(|c| CategoricalNodeSpec::leaf(format!("{:03}", block_start + c)))
                        .collect();
                    CategoricalNodeSpec::internal(
                        format!("Block {block_start:03}-{block_end:03}"),
                        leaves,
                    )
                })
                .collect();
            CategoricalNodeSpec::internal(name, block_specs)
        })
        .collect();
    CategoricalNodeSpec::internal("ICD-9", chapters)
        .build("symptom")
        .expect("symptom ontology labels are unique")
}

/// The prescription ontology: therapeutic class → subclass → drug
/// (24 leaves, depth 3).
pub fn prescription_tree() -> DomainHierarchyTree {
    let spec = CategoricalNodeSpec::internal(
        "Medication",
        vec![
            CategoricalNodeSpec::internal(
                "Cardiovascular Agents",
                vec![
                    CategoricalNodeSpec::internal(
                        "ACE Inhibitors",
                        vec![
                            CategoricalNodeSpec::leaf("Lisinopril"),
                            CategoricalNodeSpec::leaf("Enalapril"),
                            CategoricalNodeSpec::leaf("Ramipril"),
                        ],
                    ),
                    CategoricalNodeSpec::internal(
                        "Beta Blockers",
                        vec![
                            CategoricalNodeSpec::leaf("Metoprolol"),
                            CategoricalNodeSpec::leaf("Atenolol"),
                            CategoricalNodeSpec::leaf("Carvedilol"),
                        ],
                    ),
                ],
            ),
            CategoricalNodeSpec::internal(
                "Anti-infectives",
                vec![
                    CategoricalNodeSpec::internal(
                        "Penicillins",
                        vec![
                            CategoricalNodeSpec::leaf("Amoxicillin"),
                            CategoricalNodeSpec::leaf("Ampicillin"),
                            CategoricalNodeSpec::leaf("Piperacillin"),
                        ],
                    ),
                    CategoricalNodeSpec::internal(
                        "Macrolides",
                        vec![
                            CategoricalNodeSpec::leaf("Azithromycin"),
                            CategoricalNodeSpec::leaf("Erythromycin"),
                            CategoricalNodeSpec::leaf("Clarithromycin"),
                        ],
                    ),
                ],
            ),
            CategoricalNodeSpec::internal(
                "Analgesics",
                vec![
                    CategoricalNodeSpec::internal(
                        "NSAIDs",
                        vec![
                            CategoricalNodeSpec::leaf("Ibuprofen"),
                            CategoricalNodeSpec::leaf("Naproxen"),
                            CategoricalNodeSpec::leaf("Celecoxib"),
                        ],
                    ),
                    CategoricalNodeSpec::internal(
                        "Opioids",
                        vec![
                            CategoricalNodeSpec::leaf("Morphine"),
                            CategoricalNodeSpec::leaf("Oxycodone"),
                            CategoricalNodeSpec::leaf("Tramadol"),
                        ],
                    ),
                ],
            ),
            CategoricalNodeSpec::internal(
                "Endocrine Agents",
                vec![
                    CategoricalNodeSpec::internal(
                        "Antidiabetics",
                        vec![
                            CategoricalNodeSpec::leaf("Metformin"),
                            CategoricalNodeSpec::leaf("Glipizide"),
                            CategoricalNodeSpec::leaf("Insulin Glargine"),
                        ],
                    ),
                    CategoricalNodeSpec::internal(
                        "Thyroid Agents",
                        vec![
                            CategoricalNodeSpec::leaf("Levothyroxine"),
                            CategoricalNodeSpec::leaf("Methimazole"),
                            CategoricalNodeSpec::leaf("Propylthiouracil"),
                        ],
                    ),
                ],
            ),
        ],
    );
    spec.build("prescription").expect("prescription ontology labels are unique")
}

/// The age tree: Fig. 3's binary interval tree over `[0, 150)`, but with the
/// "narrower intervals" the paper says its experiments use (5-year leaves).
pub fn age_tree() -> DomainHierarchyTree {
    let intervals: Vec<(i64, i64)> = (AGE_MIN..AGE_MAX)
        .step_by(AGE_LEAF_WIDTH as usize)
        .map(|lo| (lo, (lo + AGE_LEAF_WIDTH).min(AGE_MAX)))
        .collect();
    numeric_binary_tree("age", &intervals).expect("age intervals tile the domain")
}

/// The zip-code tree: a binary interval tree over a metropolitan zip range,
/// 10-code leaves.
pub fn zip_tree() -> DomainHierarchyTree {
    let intervals: Vec<(i64, i64)> = (ZIP_MIN..ZIP_MAX)
        .step_by(ZIP_LEAF_WIDTH as usize)
        .map(|lo| (lo, (lo + ZIP_LEAF_WIDTH).min(ZIP_MAX)))
        .collect();
    numeric_binary_tree("zip_code", &intervals).expect("zip intervals tile the domain")
}

/// All five quasi-identifier trees keyed by column name, matching
/// `Schema::medical_example()`.
pub fn all_trees() -> BTreeMap<String, DomainHierarchyTree> {
    let mut m = BTreeMap::new();
    for tree in [age_tree(), zip_tree(), doctor_tree(), symptom_tree(), prescription_tree()] {
        m.insert(tree.attribute().to_string(), tree);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_dht::{DhtKind, GeneralizationSet};
    use medshield_relation::Value;

    #[test]
    fn fig1_role_tree_matches_the_paper() {
        let t = role_tree();
        assert_eq!(t.leaf_count(), 7);
        assert_eq!(t.height(), 3);
        assert!(t.node_by_label("Paramedic").is_ok());
        assert!(t.node_by_label("Pharmacist").is_ok());
    }

    #[test]
    fn doctor_tree_shape() {
        let t = doctor_tree();
        assert_eq!(t.kind(), DhtKind::Categorical);
        assert_eq!(t.leaf_count(), 18);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn symptom_tree_is_icd9_like() {
        let t = symptom_tree();
        assert_eq!(t.height(), 3);
        assert!(t.leaf_count() >= 90, "leaf count {}", t.leaf_count());
        // Codes are zero-padded three-digit strings.
        assert!(t.node_by_label("001").is_ok());
        assert!(t.node_by_label("390").is_ok());
        // Leaves resolve as values.
        assert!(t.leaf_for_value(&Value::text("460")).is_ok());
    }

    #[test]
    fn prescription_tree_shape() {
        let t = prescription_tree();
        assert_eq!(t.leaf_count(), 24);
        assert_eq!(t.height(), 3);
        assert!(t.node_by_label("Metformin").is_ok());
    }

    #[test]
    fn age_tree_covers_domain_with_narrow_leaves() {
        let t = age_tree();
        assert_eq!(t.kind(), DhtKind::Numeric);
        assert_eq!(t.leaf_count(), 30);
        for age in [0, 4, 37, 89, 149] {
            let leaf = t.leaf_for_value(&Value::int(age)).unwrap();
            let (lo, hi) = t.node(leaf).unwrap().interval.unwrap();
            assert!(age >= lo && age < hi);
            assert_eq!(hi - lo, AGE_LEAF_WIDTH);
        }
    }

    #[test]
    fn zip_tree_covers_domain() {
        let t = zip_tree();
        assert_eq!(t.leaf_count(), ((ZIP_MAX - ZIP_MIN) / ZIP_LEAF_WIDTH) as usize);
        assert!(t.leaf_for_value(&Value::int(53_211)).is_ok());
        assert!(t.leaf_for_value(&Value::int(99_999)).is_err());
    }

    #[test]
    fn all_trees_keyed_by_schema_columns() {
        let m = all_trees();
        for col in ["age", "zip_code", "doctor", "symptom", "prescription"] {
            assert!(m.contains_key(col), "missing tree for {col}");
            assert_eq!(m[col].attribute(), col);
        }
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn depth1_generalizations_are_valid_for_every_tree() {
        // The experiment harness uses depth-based maximal generalization
        // nodes; they must be valid for every ontology.
        for (_, tree) in all_trees() {
            for depth in 0..=2 {
                let g = GeneralizationSet::at_depth(&tree, depth);
                assert!(
                    GeneralizationSet::new(&tree, g.nodes().to_vec()).is_ok(),
                    "tree {} depth {depth}",
                    tree.attribute()
                );
            }
        }
    }
}

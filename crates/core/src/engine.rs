//! The chunk-parallel protection engine.
//!
//! [`ProtectionEngine`] runs the paper's Fig. 2 pipeline — binning agent,
//! watermarking agent, detection, dispute resolution — with the watermark
//! hot paths sharded over row chunks and executed on scoped threads.
//!
//! Tuple selection and embedding are keyed per-tuple PRF decisions (Eq. 5)
//! with no cross-tuple data dependency, so the table can be split into
//! disjoint row chunks processed independently (the same observation
//! exploited by Agrawal–Kiernan-style relational watermarking):
//!
//! 1. the run-wide state (selector, resolved identity, extended mark, target
//!    columns) is precomputed once as an
//!    [`EmbedPlan`](medshield_watermark::EmbedPlan) /
//!    [`DetectPlan`](medshield_watermark::DetectPlan), and the columnar
//!    batch state (per-dictionary-code memos, identity codec, interned write
//!    targets) once as an [`EmbedKernel`](medshield_watermark::EmbedKernel) /
//!    [`DetectKernel`](medshield_watermark::DetectKernel);
//! 2. the row index space is split into `threads` contiguous ranges, one
//!    scoped worker per range (`std::thread::scope` — no extra dependencies,
//!    no detached threads), every worker reading the same immutable columnar
//!    table;
//! 3. per-range results ([`EmbeddingReport`] counters plus edit lists,
//!    detection vote tallies) are merged **in range order**; embedding edits
//!    are written back on this thread by `EmbedKernel::apply`.
//!
//! Because every per-tuple decision is content-keyed and chunk results merge
//! by exact integer arithmetic, the parallel output is byte-identical to the
//! sequential path for any thread count — a property pinned by the
//! `engine_equivalence` test suite. The multi-attribute binning search is
//! sharded too (candidate combinations scored against an immutable
//! `SearchPlan`, per-shard bests merged deterministically — see
//! `medshield_binning::multi`); the engine's `threads` knob drives both
//! stages, and the `binning_equivalence` suite pins the binning side.

use crate::config::ProtectionConfig;
use medshield_binning::{BinningAgent, BinningError, BinningOutcome, ColumnBinning};
use medshield_dht::{DomainHierarchyTree, GeneralizationSet};
use medshield_relation::Table;
use medshield_watermark::hierarchical::{DetectionTally, EmbeddingReport};
use medshield_watermark::ownership::{self, OwnershipProof, OwnershipVerdict};
use medshield_watermark::{
    DetectionReport, EmbedChunk, HierarchicalWatermarker, Mark, WatermarkError,
};
use std::collections::BTreeMap;
use std::thread;

/// Errors from the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The binning stage failed.
    Binning(BinningError),
    /// The watermarking stage failed.
    Watermark(WatermarkError),
    /// The table has no identifying column to derive the ownership statistic
    /// from.
    NoIdentifyingColumn,
    /// The requested worker-thread count is zero. The engine used to clamp
    /// this silently to one while the binning agent rejected it
    /// ([`BinningError::InvalidThreads`]); the contract is now uniform —
    /// every entry point rejects zero.
    InvalidThreads,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Binning(e) => write!(f, "binning failed: {e}"),
            PipelineError::Watermark(e) => write!(f, "watermarking failed: {e}"),
            PipelineError::NoIdentifyingColumn => {
                write!(f, "the schema declares no identifying column")
            }
            PipelineError::InvalidThreads => {
                write!(f, "the worker thread count must be at least 1")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<BinningError> for PipelineError {
    fn from(e: BinningError) -> Self {
        PipelineError::Binning(e)
    }
}

impl From<WatermarkError> for PipelineError {
    fn from(e: WatermarkError) -> Self {
        PipelineError::Watermark(e)
    }
}

/// Everything the data holder keeps after protecting a table: the release
/// itself plus the state needed for later detection and dispute resolution.
#[derive(Debug, Clone)]
pub struct ProtectedRelease {
    /// The binned **and** watermarked table — this is what gets outsourced.
    pub table: Table,
    /// The binning outcome (binned-but-unmarked table, per-column node sets).
    /// Kept by the data holder; the maximal/ultimate sets are needed to
    /// detect the mark later.
    pub binning: BinningOutcome,
    /// The embedded mark.
    pub mark: Mark,
    /// The ownership proof (`v` and `F(v)`), present when the mark was
    /// derived from the identifying-column statistic.
    pub ownership: Option<OwnershipProof>,
    /// Statistics of the embedding run.
    pub embedding: EmbeddingReport,
}

/// The unified protection framework — binning agent + watermarking agent —
/// with chunk-parallel watermark embedding and detection.
#[derive(Debug, Clone)]
pub struct ProtectionEngine {
    config: ProtectionConfig,
    binning_agent: BinningAgent,
    watermarker: HierarchicalWatermarker,
    threads: usize,
}

impl ProtectionEngine {
    /// Build an engine from a configuration. `threads` drives **both**
    /// sharded stages — the multi-attribute binning search and the watermark
    /// embed/detect hot paths — and overrides `config.binning.threads` so one
    /// knob rules both; `1` reproduces the strictly sequential pipeline —
    /// though every thread count produces byte-identical output, so the
    /// choice is purely about hardware. `0` is rejected
    /// ([`PipelineError::InvalidThreads`]), matching the binning agent's
    /// contract instead of silently clamping.
    pub fn new(config: ProtectionConfig, threads: usize) -> Result<Self, PipelineError> {
        if threads == 0 {
            return Err(PipelineError::InvalidThreads);
        }
        let mut config = config;
        config.binning.threads = threads;
        let binning_agent = BinningAgent::new(config.binning.clone());
        let watermarker = HierarchicalWatermarker::new(config.watermark.clone());
        Ok(ProtectionEngine { config, binning_agent, watermarker, threads })
    }

    /// A single-threaded engine (the sequential pipeline).
    pub fn sequential(config: ProtectionConfig) -> Self {
        Self::new(config, 1).expect("one worker thread is always a valid count")
    }

    /// Number of worker threads the binning search and the watermark stages
    /// use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Change the worker-thread count for both the binning search and the
    /// watermark stages. Like [`ProtectionEngine::new`], zero is rejected.
    pub fn set_threads(&mut self, threads: usize) -> Result<(), PipelineError> {
        if threads == 0 {
            return Err(PipelineError::InvalidThreads);
        }
        self.threads = threads;
        self.config.binning.threads = threads;
        self.binning_agent = BinningAgent::new(self.config.binning.clone());
        Ok(())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ProtectionConfig {
        &self.config
    }

    /// The binning agent (exposes the identifier cipher for dispute
    /// resolution).
    pub fn binning_agent(&self) -> &BinningAgent {
        &self.binning_agent
    }

    /// The watermarking agent.
    pub fn watermarker(&self) -> &HierarchicalWatermarker {
        &self.watermarker
    }

    /// Default per-column usage metrics: maximal generalization nodes at the
    /// configured depth.
    pub fn default_maximal(
        &self,
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> BTreeMap<String, GeneralizationSet> {
        trees
            .iter()
            .map(|(name, tree)| {
                (name.clone(), GeneralizationSet::at_depth(tree, self.config.default_maximal_depth))
            })
            .collect()
    }

    /// Protect `table`: bin to the k-anonymity specification under the
    /// default usage metrics, then embed the owner's mark chunk-parallel.
    pub fn protect(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> Result<ProtectedRelease, PipelineError> {
        let maximal = self.default_maximal(trees);
        self.protect_with_metrics(table, trees, &maximal)
    }

    /// Protect `table` under explicit per-column usage metrics (maximal
    /// generalization nodes).
    pub fn protect_with_metrics(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        maximal: &BTreeMap<String, GeneralizationSet>,
    ) -> Result<ProtectedRelease, PipelineError> {
        let binning = self.binning_agent.bin(table, trees, maximal)?;
        self.finish_release(table, trees, binning)
    }

    /// Protect `table` enforcing k-anonymity **per attribute only** (the
    /// mono-attribute stage of the paper; the granularity at which its §6
    /// analysis and Fig. 12–14 experiments operate). Leaves much more
    /// watermark bandwidth than the full combination requirement.
    pub fn protect_per_attribute(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> Result<ProtectedRelease, PipelineError> {
        let maximal = self.default_maximal(trees);
        let binning = self.binning_agent.bin_per_attribute(table, trees, &maximal)?;
        self.finish_release(table, trees, binning)
    }

    /// Shared tail of the protect variants: derive the mark and embed it.
    fn finish_release(
        &self,
        original: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        binning: BinningOutcome,
    ) -> Result<ProtectedRelease, PipelineError> {
        // The owner's mark: either F(statistic of the clear-text identifiers)
        // or a hash of the configured mark text.
        let (mark, ownership) = if self.config.mark_from_statistic {
            let proof = OwnershipProof::from_original_table(original, self.config.mark_len)
                .ok_or(PipelineError::NoIdentifyingColumn)?;
            (proof.mark(), Some(proof))
        } else {
            (Mark::from_bytes(self.config.mark_text.as_bytes(), self.config.mark_len), None)
        };

        let (table, embedding) = self.embed(&binning.table, &binning.columns, trees, &mark)?;
        Ok(ProtectedRelease { table, binning, mark, ownership, embedding })
    }

    /// Embed `mark` into a binned table, sharding the rows over the engine's
    /// worker threads. Chunk reports are merged in chunk order; the result is
    /// byte-identical to the sequential embedding.
    pub fn embed(
        &self,
        binned_table: &Table,
        binning_columns: &[ColumnBinning],
        trees: &BTreeMap<String, DomainHierarchyTree>,
        mark: &Mark,
    ) -> Result<(Table, EmbeddingReport), PipelineError> {
        let plan = self
            .watermarker
            .plan_embed(binned_table.schema(), binning_columns, trees, mark)
            .map_err(PipelineError::Watermark)?;
        let mut table = binned_table.snapshot();
        let kernel =
            self.watermarker.prepare_embed(&plan, &mut table).map_err(PipelineError::Watermark)?;
        let rows = table.len();
        // A 0-row table embeds nothing: return the empty report instead of
        // letting the chunking arithmetic below see a zero length (a served
        // endpoint must never panic on an empty submission).
        if rows == 0 {
            let report = EmbeddingReport::empty(plan.wmd_len());
            return Ok((table, report));
        }
        let threads = self.threads.min(rows).max(1);
        let chunks: Vec<EmbedChunk> = if threads == 1 {
            vec![kernel.run_range(&plan, &table, 0..rows).map_err(PipelineError::Watermark)?]
        } else {
            let chunk_size = rows.div_ceil(threads);
            let kernel_ref = &kernel;
            let plan_ref = &plan;
            let table_ref = &table;
            let results: Vec<Result<EmbedChunk, WatermarkError>> = thread::scope(|scope| {
                let workers: Vec<_> = (0..threads)
                    .map(|i| {
                        let start = (i * chunk_size).min(rows);
                        let end = ((i + 1) * chunk_size).min(rows);
                        scope.spawn(move || kernel_ref.run_range(plan_ref, table_ref, start..end))
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().expect("embedding worker panicked")).collect()
            });
            results.into_iter().collect::<Result<Vec<_>, _>>().map_err(PipelineError::Watermark)?
        };
        let report = kernel.apply(&plan, &mut table, chunks).map_err(PipelineError::Watermark)?;
        Ok((table, report))
    }

    /// Detect the mark in a (possibly attacked) table, using the binning
    /// state retained by the data holder. Votes are collected chunk-parallel
    /// and merged in chunk order, so the report is identical to the
    /// sequential detector's.
    pub fn detect(
        &self,
        table: &Table,
        columns: &[ColumnBinning],
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> Result<DetectionReport, PipelineError> {
        let mark_len = self.config.mark_len;
        let plan = self
            .watermarker
            .plan_detect(table.schema(), columns, trees, mark_len)
            .map_err(PipelineError::Watermark)?;
        let rows = table.len();
        // A 0-row table carries no votes: an empty report, never a panic.
        if rows == 0 {
            return Ok(DetectionTally::new(plan.wmd_len()).into_report(mark_len));
        }
        let kernel =
            self.watermarker.prepare_detect(&plan, table).map_err(PipelineError::Watermark)?;
        let threads = self.threads.min(rows).max(1);
        if threads == 1 {
            let tally =
                kernel.run_range(&plan, table, 0..rows).map_err(PipelineError::Watermark)?;
            return Ok(tally.into_report(mark_len));
        }
        let chunk_size = rows.div_ceil(threads);
        let kernel_ref = &kernel;
        let plan_ref = &plan;
        let results: Vec<Result<DetectionTally, WatermarkError>> = thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|i| {
                    let start = (i * chunk_size).min(rows);
                    let end = ((i + 1) * chunk_size).min(rows);
                    scope.spawn(move || kernel_ref.run_range(plan_ref, table, start..end))
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("detection worker panicked")).collect()
        });
        let mut tally = DetectionTally::new(plan.wmd_len());
        for chunk_tally in results {
            tally.merge(&chunk_tally.map_err(PipelineError::Watermark)?);
        }
        Ok(tally.into_report(mark_len))
    }

    /// Resolve an ownership dispute over `disputed` (§5.4): decrypt the
    /// identifying column with the holder's binning key, recompute the
    /// statistic, compare against the claimed proof and the extracted mark.
    pub fn resolve_ownership(
        &self,
        proof: &OwnershipProof,
        disputed: &Table,
        identifier_column: &str,
        extracted_mark: &[bool],
        tau: f64,
        max_mark_loss: f64,
    ) -> OwnershipVerdict {
        ownership::resolve_dispute(
            proof,
            disputed,
            identifier_column,
            |cipher| self.binning_agent.decrypt_identifier(cipher).ok(),
            tau,
            extracted_mark,
            max_mark_loss,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_datagen::{DatasetConfig, MedicalDataset};
    use medshield_relation::csv;

    fn dataset(n: usize) -> MedicalDataset {
        MedicalDataset::generate(&DatasetConfig::small(n))
    }

    fn config(k: usize, eta: u64) -> ProtectionConfig {
        ProtectionConfig::builder().k(k).eta(eta).duplication(2).mark_text("Engine Owner").build()
    }

    #[test]
    fn parallel_release_is_byte_identical_to_sequential() {
        let ds = dataset(1200);
        let sequential = ProtectionEngine::sequential(config(4, 5));
        let reference = sequential.protect(&ds.table, &ds.trees).unwrap();
        let reference_csv = csv::to_csv(&reference.table);
        for threads in [2usize, 3, 4, 8] {
            let engine = ProtectionEngine::new(config(4, 5), threads).unwrap();
            let release = engine.protect(&ds.table, &ds.trees).unwrap();
            assert_eq!(
                csv::to_csv(&release.table),
                reference_csv,
                "{threads}-thread release must match the sequential bytes"
            );
            assert_eq!(release.embedding, reference.embedding, "{threads}-thread report");
            assert_eq!(release.mark, reference.mark);
        }
    }

    #[test]
    fn parallel_detection_matches_sequential_report() {
        let ds = dataset(1000);
        let sequential = ProtectionEngine::sequential(config(4, 5));
        let release = sequential.protect(&ds.table, &ds.trees).unwrap();
        let reference =
            sequential.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
        assert_eq!(reference.mark, release.mark.bits());
        for threads in [2usize, 4, 8] {
            let engine = ProtectionEngine::new(config(4, 5), threads).unwrap();
            let report =
                engine.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
            assert_eq!(report, reference, "{threads}-thread detection report");
        }
    }

    #[test]
    fn more_threads_than_rows_degrades_gracefully() {
        // A 40-row table offers too little bandwidth to guarantee exact mark
        // recovery; what must hold is that 64 requested workers collapse to
        // the row count and reproduce the sequential results exactly.
        let ds = dataset(40);
        let sequential = ProtectionEngine::sequential(config(2, 2));
        let reference = sequential.protect(&ds.table, &ds.trees).unwrap();
        let reference_report =
            sequential.detect(&reference.table, &reference.binning.columns, &ds.trees).unwrap();
        let engine = ProtectionEngine::new(config(2, 2), 64).unwrap();
        let release = engine.protect(&ds.table, &ds.trees).unwrap();
        assert_eq!(csv::to_csv(&release.table), csv::to_csv(&reference.table));
        let report = engine.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
        assert_eq!(report, reference_report);
    }

    #[test]
    fn zero_threads_is_rejected_consistently() {
        // The engine used to clamp 0 to 1 while the binning agent rejected
        // it; both entry points now agree on a structured error.
        assert_eq!(
            ProtectionEngine::new(config(2, 2), 0).unwrap_err(),
            PipelineError::InvalidThreads
        );
        let mut engine = ProtectionEngine::new(config(2, 2), 2).unwrap();
        assert_eq!(engine.set_threads(0), Err(PipelineError::InvalidThreads));
        // A failed set_threads must leave the engine untouched and usable.
        assert_eq!(engine.threads(), 2);
        engine.set_threads(4).unwrap();
        assert_eq!(engine.threads(), 4);
        // The binning agent's own entry point keeps rejecting zero too.
        let agent = BinningAgent::new(medshield_binning::BinningConfig {
            threads: 0,
            ..Default::default()
        });
        let ds = dataset(40);
        let maximal = ProtectionEngine::sequential(config(2, 2)).default_maximal(&ds.trees);
        assert_eq!(
            agent.bin(&ds.table, &ds.trees, &maximal).unwrap_err(),
            BinningError::InvalidThreads
        );
    }

    #[test]
    fn empty_table_never_panics_and_yields_empty_reports() {
        let ds = dataset(10);
        let empty = Table::new(ds.table.schema().clone());
        for threads in [1usize, 4] {
            let engine = ProtectionEngine::new(config(2, 2), threads).unwrap();
            // Binning an empty table succeeds trivially; embedding selects
            // nothing; detection sees no votes — and none of it may panic.
            let release = engine.protect(&empty, &ds.trees).unwrap();
            assert_eq!(release.table.len(), 0);
            assert_eq!(release.embedding.selected_tuples, 0);
            assert_eq!(release.embedding.embedded_cells, 0);
            assert_eq!(release.embedding.changed_cells, 0);
            let report =
                engine.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
            assert_eq!(report.selected_tuples, 0);
            assert_eq!(report.covered_positions, 0);
            // Detecting an empty (possibly fully-deleted) suspect against a
            // real release's binning state must not panic either.
            let real = engine.protect(&ds.table, &ds.trees).unwrap();
            let report = engine.detect(&empty, &real.binning.columns, &ds.trees).unwrap();
            assert_eq!(report.selected_tuples, 0);
        }
    }
}

//! The end-to-end protection pipeline (Fig. 2 of the paper): binning agent
//! followed by watermarking agent, plus detection and the ownership-dispute
//! protocol.
//!
//! [`ProtectionPipeline`] is the strictly sequential front door — a
//! single-threaded [`ProtectionEngine`] — kept as the reference semantics
//! the chunk-parallel engine is pinned against (the engine's output is
//! byte-identical for every thread count).

use crate::config::ProtectionConfig;
use crate::engine::ProtectionEngine;
pub use crate::engine::{PipelineError, ProtectedRelease};
use medshield_binning::{BinningAgent, ColumnBinning};
use medshield_dht::{DomainHierarchyTree, GeneralizationSet};
use medshield_relation::Table;
use medshield_watermark::ownership::{OwnershipProof, OwnershipVerdict};
use medshield_watermark::DetectionReport;
use std::collections::BTreeMap;

/// The unified protection framework: binning agent + watermarking agent,
/// run sequentially.
#[derive(Debug, Clone)]
pub struct ProtectionPipeline {
    engine: ProtectionEngine,
}

impl ProtectionPipeline {
    /// Build a pipeline from a configuration.
    pub fn new(config: ProtectionConfig) -> Self {
        ProtectionPipeline { engine: ProtectionEngine::sequential(config) }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &ProtectionConfig {
        self.engine.config()
    }

    /// The binning agent (exposes the identifier cipher for dispute
    /// resolution).
    pub fn binning_agent(&self) -> &BinningAgent {
        self.engine.binning_agent()
    }

    /// Default per-column usage metrics: maximal generalization nodes at the
    /// configured depth.
    pub fn default_maximal(
        &self,
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> BTreeMap<String, GeneralizationSet> {
        self.engine.default_maximal(trees)
    }

    /// Protect `table`: bin to the k-anonymity specification under the
    /// default usage metrics, then embed the owner's mark.
    pub fn protect(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> Result<ProtectedRelease, PipelineError> {
        self.engine.protect(table, trees)
    }

    /// Protect `table` under explicit per-column usage metrics (maximal
    /// generalization nodes).
    pub fn protect_with_metrics(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        maximal: &BTreeMap<String, GeneralizationSet>,
    ) -> Result<ProtectedRelease, PipelineError> {
        self.engine.protect_with_metrics(table, trees, maximal)
    }

    /// Protect `table` enforcing k-anonymity **per attribute only** (the
    /// mono-attribute stage of the paper; the granularity at which its §6
    /// analysis and Fig. 12–14 experiments operate). Leaves much more
    /// watermark bandwidth than the full combination requirement.
    pub fn protect_per_attribute(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> Result<ProtectedRelease, PipelineError> {
        self.engine.protect_per_attribute(table, trees)
    }

    /// Detect the mark in a (possibly attacked) table, using the binning
    /// state retained by the data holder.
    pub fn detect(
        &self,
        table: &Table,
        columns: &[ColumnBinning],
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> Result<DetectionReport, PipelineError> {
        self.engine.detect(table, columns, trees)
    }

    /// Resolve an ownership dispute over `disputed` (§5.4): decrypt the
    /// identifying column with the holder's binning key, recompute the
    /// statistic, compare against the claimed proof and the extracted mark.
    pub fn resolve_ownership(
        &self,
        proof: &OwnershipProof,
        disputed: &Table,
        identifier_column: &str,
        extracted_mark: &[bool],
        tau: f64,
        max_mark_loss: f64,
    ) -> OwnershipVerdict {
        self.engine.resolve_ownership(
            proof,
            disputed,
            identifier_column,
            extracted_mark,
            tau,
            max_mark_loss,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_binning::BinningError;
    use medshield_datagen::{DatasetConfig, MedicalDataset};
    use medshield_metrics::mark_loss;
    use medshield_watermark::WatermarkError;

    fn dataset(n: usize) -> MedicalDataset {
        MedicalDataset::generate(&DatasetConfig::small(n))
    }

    fn pipeline(k: usize, eta: u64) -> ProtectionPipeline {
        ProtectionPipeline::new(
            ProtectionConfig::builder()
                .k(k)
                .eta(eta)
                // Small data sets leave only a modest bandwidth channel, so
                // keep the extended mark short enough for full coverage.
                .duplication(2)
                .mark_text("City Hospital")
                .build(),
        )
    }

    #[test]
    fn protect_then_detect_roundtrip() {
        let ds = dataset(1000);
        let p = pipeline(4, 5);
        let release = p.protect(&ds.table, &ds.trees).unwrap();
        assert!(release.binning.satisfied);
        assert!(release.embedding.embedded_cells > 0);
        let detection = p.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
        assert_eq!(detection.mark, release.mark.bits());
    }

    #[test]
    fn statistic_derived_mark_supports_dispute_resolution() {
        let ds = dataset(1000);
        let p = ProtectionPipeline::new(
            ProtectionConfig::builder()
                .k(4)
                .eta(5)
                .duplication(2)
                .mark_from_statistic(true)
                .build(),
        );
        let release = p.protect(&ds.table, &ds.trees).unwrap();
        let proof = release.ownership.clone().expect("statistic-derived mark carries a proof");
        let detection = p.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
        let verdict = p.resolve_ownership(
            &proof,
            &release.table,
            "ssn",
            &detection.mark,
            proof.statistic.abs() * 0.05 + 1.0,
            0.2,
        );
        assert!(verdict.accepted, "{verdict:?}");
    }

    #[test]
    fn attacker_without_keys_is_rejected_in_dispute() {
        let ds = dataset(600);
        let owner = ProtectionPipeline::new(
            ProtectionConfig::builder()
                .k(4)
                .eta(8)
                .mark_from_statistic(true)
                .encryption_secret(b"owner-enc".to_vec())
                .watermark_secret(b"owner-wm".to_vec())
                .build(),
        );
        let release = owner.protect(&ds.table, &ds.trees).unwrap();

        // The attacker claims the release as his own, with his own pipeline
        // (different keys) and a fabricated statistic.
        let attacker = ProtectionPipeline::new(
            ProtectionConfig::builder()
                .k(4)
                .eta(8)
                .mark_from_statistic(true)
                .encryption_secret(b"attacker-enc".to_vec())
                .watermark_secret(b"attacker-wm".to_vec())
                .build(),
        );
        let bogus_proof = OwnershipProof { statistic: 123456.0, mark_len: 20 };
        let detection =
            attacker.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
        let verdict = attacker.resolve_ownership(
            &bogus_proof,
            &release.table,
            "ssn",
            &detection.mark,
            1000.0,
            0.2,
        );
        assert!(!verdict.accepted);
    }

    #[test]
    fn mark_survives_without_attack_at_various_eta() {
        let ds = dataset(2500);
        for eta in [5u64, 10, 20] {
            let p = pipeline(4, eta);
            let release = p.protect(&ds.table, &ds.trees).unwrap();
            let detection = p.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
            let loss = mark_loss(release.mark.bits(), &detection.mark);
            assert_eq!(loss, 0.0, "eta={eta}");
        }
    }

    #[test]
    fn per_attribute_protection_roundtrips_and_keeps_columns_anonymous() {
        let ds = dataset(1500);
        let p = pipeline(6, 10);
        let release = p.protect_per_attribute(&ds.table, &ds.trees).unwrap();
        for column in release.table.schema().quasi_names() {
            assert!(
                medshield_metrics::column_satisfies_k(&release.binning.table, column, 6).unwrap(),
                "column {column}"
            );
        }
        let detection = p.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
        assert_eq!(detection.mark, release.mark.bits());
        // Per-attribute binning leaves plenty of bandwidth: most selected
        // cells should actually carry a bit.
        assert!(release.embedding.embedded_cells > release.embedding.skipped_cells);
    }

    #[test]
    fn explicit_usage_metrics_are_respected() {
        let ds = dataset(500);
        let p = pipeline(3, 10);
        // Usage metrics: depth-1 maximal nodes for every column.
        let maximal: BTreeMap<String, GeneralizationSet> =
            ds.trees.iter().map(|(n, t)| (n.clone(), GeneralizationSet::at_depth(t, 1))).collect();
        let release = p.protect_with_metrics(&ds.table, &ds.trees, &maximal).unwrap();
        for cb in &release.binning.columns {
            let tree = &ds.trees[&cb.column];
            assert!(cb.ultimate.is_at_or_below(tree, &maximal[&cb.column]).unwrap());
            for v in release.table.column_values(&cb.column).unwrap() {
                let node = tree.node_for_value(&v).unwrap();
                assert!(maximal[&cb.column].covering_node(tree, node).is_ok());
            }
        }
    }

    /// §5.4 under fire: the rightful owner must still win a dispute over a
    /// release mauled by a composition of the paper's attack models, and an
    /// attacker presenting a fabricated statistic over the same mauled
    /// release must still lose.
    #[test]
    fn dispute_resolves_correctly_on_mixed_attacked_release() {
        use medshield_attacks::{Attack, MixedAttack, SubsetAlteration, SubsetDeletion};

        let ds = dataset(1500);
        let p = ProtectionPipeline::new(
            ProtectionConfig::builder()
                .k(4)
                .eta(5)
                .duplication(2)
                .mark_from_statistic(true)
                .build(),
        );
        let release = p.protect(&ds.table, &ds.trees).unwrap();
        let proof = release.ownership.clone().expect("statistic-derived mark carries a proof");

        // A mild mixed attack: delete 10% of the tuples, then alter 5%.
        let attack = MixedAttack::new()
            .then(SubsetDeletion::random(0.10, 7))
            .then(SubsetAlteration::new(0.05, 8));
        let attacked = attack.apply(&release.table);
        assert!(attacked.len() < release.table.len());

        let detection = p.detect(&attacked, &release.binning.columns, &ds.trees).unwrap();
        let tau = proof.statistic.abs() * 0.05 + 1.0;
        let verdict = p.resolve_ownership(&proof, &attacked, "ssn", &detection.mark, tau, 0.25);
        assert!(verdict.statistic_consistent, "{verdict:?}");
        assert!(verdict.accepted, "owner must prevail on a mildly attacked release: {verdict:?}");

        // The thief's claim over the very same attacked table: wrong statistic
        // (he cannot decrypt the identifiers to compute the real one).
        let bogus = OwnershipProof { statistic: proof.statistic + 10_000_000.0, mark_len: 20 };
        let thief_verdict =
            p.resolve_ownership(&bogus, &attacked, "ssn", &detection.mark, tau, 0.25);
        assert!(!thief_verdict.accepted, "{thief_verdict:?}");
    }

    #[test]
    fn pipeline_error_display() {
        let e = PipelineError::NoIdentifyingColumn;
        assert!(e.to_string().contains("identifying"));
        let e = PipelineError::Binning(BinningError::InvalidK);
        assert!(e.to_string().contains("binning failed"));
        let e = PipelineError::Watermark(WatermarkError::EmptyMark);
        assert!(e.to_string().contains("watermarking failed"));
    }
}

//! The end-to-end protection pipeline (Fig. 2 of the paper): binning agent
//! followed by watermarking agent, plus detection and the ownership-dispute
//! protocol.

use crate::config::ProtectionConfig;
use medshield_binning::{BinningAgent, BinningError, BinningOutcome, ColumnBinning};
use medshield_dht::{DomainHierarchyTree, GeneralizationSet};
use medshield_relation::Table;
use medshield_watermark::hierarchical::EmbeddingReport;
use medshield_watermark::ownership::{self, OwnershipProof, OwnershipVerdict};
use medshield_watermark::{DetectionReport, HierarchicalWatermarker, Mark, WatermarkError};
use std::collections::BTreeMap;

/// Errors from the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The binning stage failed.
    Binning(BinningError),
    /// The watermarking stage failed.
    Watermark(WatermarkError),
    /// The table has no identifying column to derive the ownership statistic
    /// from.
    NoIdentifyingColumn,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Binning(e) => write!(f, "binning failed: {e}"),
            PipelineError::Watermark(e) => write!(f, "watermarking failed: {e}"),
            PipelineError::NoIdentifyingColumn => {
                write!(f, "the schema declares no identifying column")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<BinningError> for PipelineError {
    fn from(e: BinningError) -> Self {
        PipelineError::Binning(e)
    }
}

impl From<WatermarkError> for PipelineError {
    fn from(e: WatermarkError) -> Self {
        PipelineError::Watermark(e)
    }
}

/// Everything the data holder keeps after protecting a table: the release
/// itself plus the state needed for later detection and dispute resolution.
#[derive(Debug, Clone)]
pub struct ProtectedRelease {
    /// The binned **and** watermarked table — this is what gets outsourced.
    pub table: Table,
    /// The binning outcome (binned-but-unmarked table, per-column node sets).
    /// Kept by the data holder; the maximal/ultimate sets are needed to
    /// detect the mark later.
    pub binning: BinningOutcome,
    /// The embedded mark.
    pub mark: Mark,
    /// The ownership proof (`v` and `F(v)`), present when the mark was
    /// derived from the identifying-column statistic.
    pub ownership: Option<OwnershipProof>,
    /// Statistics of the embedding run.
    pub embedding: EmbeddingReport,
}

/// The unified protection framework: binning agent + watermarking agent.
#[derive(Debug, Clone)]
pub struct ProtectionPipeline {
    config: ProtectionConfig,
    binning_agent: BinningAgent,
    watermarker: HierarchicalWatermarker,
}

impl ProtectionPipeline {
    /// Build a pipeline from a configuration.
    pub fn new(config: ProtectionConfig) -> Self {
        let binning_agent = BinningAgent::new(config.binning.clone());
        let watermarker = HierarchicalWatermarker::new(config.watermark.clone());
        ProtectionPipeline { config, binning_agent, watermarker }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &ProtectionConfig {
        &self.config
    }

    /// The binning agent (exposes the identifier cipher for dispute
    /// resolution).
    pub fn binning_agent(&self) -> &BinningAgent {
        &self.binning_agent
    }

    /// Default per-column usage metrics: maximal generalization nodes at the
    /// configured depth.
    pub fn default_maximal(
        &self,
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> BTreeMap<String, GeneralizationSet> {
        trees
            .iter()
            .map(|(name, tree)| {
                (name.clone(), GeneralizationSet::at_depth(tree, self.config.default_maximal_depth))
            })
            .collect()
    }

    /// Protect `table`: bin to the k-anonymity specification under the
    /// default usage metrics, then embed the owner's mark.
    pub fn protect(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> Result<ProtectedRelease, PipelineError> {
        let maximal = self.default_maximal(trees);
        self.protect_with_metrics(table, trees, &maximal)
    }

    /// Protect `table` under explicit per-column usage metrics (maximal
    /// generalization nodes).
    pub fn protect_with_metrics(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        maximal: &BTreeMap<String, GeneralizationSet>,
    ) -> Result<ProtectedRelease, PipelineError> {
        let binning = self.binning_agent.bin(table, trees, maximal)?;
        self.finish_release(table, trees, binning)
    }

    /// Protect `table` enforcing k-anonymity **per attribute only** (the
    /// mono-attribute stage of the paper; the granularity at which its §6
    /// analysis and Fig. 12–14 experiments operate). Leaves much more
    /// watermark bandwidth than the full combination requirement.
    pub fn protect_per_attribute(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> Result<ProtectedRelease, PipelineError> {
        let maximal = self.default_maximal(trees);
        let binning = self.binning_agent.bin_per_attribute(table, trees, &maximal)?;
        self.finish_release(table, trees, binning)
    }

    /// Shared tail of the protect variants: derive the mark and embed it.
    fn finish_release(
        &self,
        original: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        binning: BinningOutcome,
    ) -> Result<ProtectedRelease, PipelineError> {
        // The owner's mark: either F(statistic of the clear-text identifiers)
        // or a hash of the configured mark text.
        let (mark, ownership) = if self.config.mark_from_statistic {
            let proof = OwnershipProof::from_original_table(original, self.config.mark_len)
                .ok_or(PipelineError::NoIdentifyingColumn)?;
            (proof.mark(), Some(proof))
        } else {
            (Mark::from_bytes(self.config.mark_text.as_bytes(), self.config.mark_len), None)
        };

        let (table, embedding) = self.watermarker.embed(&binning, trees, &mark)?;
        Ok(ProtectedRelease { table, binning, mark, ownership, embedding })
    }

    /// Detect the mark in a (possibly attacked) table, using the binning
    /// state retained by the data holder.
    pub fn detect(
        &self,
        table: &Table,
        columns: &[ColumnBinning],
        trees: &BTreeMap<String, DomainHierarchyTree>,
    ) -> Result<DetectionReport, PipelineError> {
        Ok(self.watermarker.detect(table, columns, trees, self.config.mark_len)?)
    }

    /// Resolve an ownership dispute over `disputed` (§5.4): decrypt the
    /// identifying column with the holder's binning key, recompute the
    /// statistic, compare against the claimed proof and the extracted mark.
    pub fn resolve_ownership(
        &self,
        proof: &OwnershipProof,
        disputed: &Table,
        identifier_column: &str,
        extracted_mark: &[bool],
        tau: f64,
        max_mark_loss: f64,
    ) -> OwnershipVerdict {
        ownership::resolve_dispute(
            proof,
            disputed,
            identifier_column,
            |cipher| self.binning_agent.decrypt_identifier(cipher).ok(),
            tau,
            extracted_mark,
            max_mark_loss,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_datagen::{DatasetConfig, MedicalDataset};
    use medshield_metrics::mark_loss;

    fn dataset(n: usize) -> MedicalDataset {
        MedicalDataset::generate(&DatasetConfig::small(n))
    }

    fn pipeline(k: usize, eta: u64) -> ProtectionPipeline {
        ProtectionPipeline::new(
            ProtectionConfig::builder()
                .k(k)
                .eta(eta)
                // Small data sets leave only a modest bandwidth channel, so
                // keep the extended mark short enough for full coverage.
                .duplication(2)
                .mark_text("City Hospital")
                .build(),
        )
    }

    #[test]
    fn protect_then_detect_roundtrip() {
        let ds = dataset(1000);
        let p = pipeline(4, 5);
        let release = p.protect(&ds.table, &ds.trees).unwrap();
        assert!(release.binning.satisfied);
        assert!(release.embedding.embedded_cells > 0);
        let detection = p.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
        assert_eq!(detection.mark, release.mark.bits());
    }

    #[test]
    fn statistic_derived_mark_supports_dispute_resolution() {
        let ds = dataset(1000);
        let p = ProtectionPipeline::new(
            ProtectionConfig::builder()
                .k(4)
                .eta(5)
                .duplication(2)
                .mark_from_statistic(true)
                .build(),
        );
        let release = p.protect(&ds.table, &ds.trees).unwrap();
        let proof = release.ownership.clone().expect("statistic-derived mark carries a proof");
        let detection = p.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
        let verdict = p.resolve_ownership(
            &proof,
            &release.table,
            "ssn",
            &detection.mark,
            proof.statistic.abs() * 0.05 + 1.0,
            0.2,
        );
        assert!(verdict.accepted, "{verdict:?}");
    }

    #[test]
    fn attacker_without_keys_is_rejected_in_dispute() {
        let ds = dataset(600);
        let owner = ProtectionPipeline::new(
            ProtectionConfig::builder()
                .k(4)
                .eta(8)
                .mark_from_statistic(true)
                .encryption_secret(b"owner-enc".to_vec())
                .watermark_secret(b"owner-wm".to_vec())
                .build(),
        );
        let release = owner.protect(&ds.table, &ds.trees).unwrap();

        // The attacker claims the release as his own, with his own pipeline
        // (different keys) and a fabricated statistic.
        let attacker = ProtectionPipeline::new(
            ProtectionConfig::builder()
                .k(4)
                .eta(8)
                .mark_from_statistic(true)
                .encryption_secret(b"attacker-enc".to_vec())
                .watermark_secret(b"attacker-wm".to_vec())
                .build(),
        );
        let bogus_proof = OwnershipProof { statistic: 123456.0, mark_len: 20 };
        let detection =
            attacker.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
        let verdict = attacker.resolve_ownership(
            &bogus_proof,
            &release.table,
            "ssn",
            &detection.mark,
            1000.0,
            0.2,
        );
        assert!(!verdict.accepted);
    }

    #[test]
    fn mark_survives_without_attack_at_various_eta() {
        let ds = dataset(2500);
        for eta in [5u64, 10, 20] {
            let p = pipeline(4, eta);
            let release = p.protect(&ds.table, &ds.trees).unwrap();
            let detection = p.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
            let loss = mark_loss(release.mark.bits(), &detection.mark);
            assert_eq!(loss, 0.0, "eta={eta}");
        }
    }

    #[test]
    fn per_attribute_protection_roundtrips_and_keeps_columns_anonymous() {
        let ds = dataset(1500);
        let p = pipeline(6, 10);
        let release = p.protect_per_attribute(&ds.table, &ds.trees).unwrap();
        for column in release.table.schema().quasi_names() {
            assert!(
                medshield_metrics::column_satisfies_k(&release.binning.table, column, 6).unwrap(),
                "column {column}"
            );
        }
        let detection = p.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
        assert_eq!(detection.mark, release.mark.bits());
        // Per-attribute binning leaves plenty of bandwidth: most selected
        // cells should actually carry a bit.
        assert!(release.embedding.embedded_cells > release.embedding.skipped_cells);
    }

    #[test]
    fn explicit_usage_metrics_are_respected() {
        let ds = dataset(500);
        let p = pipeline(3, 10);
        // Usage metrics: depth-1 maximal nodes for every column.
        let maximal: BTreeMap<String, GeneralizationSet> =
            ds.trees.iter().map(|(n, t)| (n.clone(), GeneralizationSet::at_depth(t, 1))).collect();
        let release = p.protect_with_metrics(&ds.table, &ds.trees, &maximal).unwrap();
        for cb in &release.binning.columns {
            let tree = &ds.trees[&cb.column];
            assert!(cb.ultimate.is_at_or_below(tree, &maximal[&cb.column]).unwrap());
            for v in release.table.column_values(&cb.column).unwrap() {
                let node = tree.node_for_value(v).unwrap();
                assert!(maximal[&cb.column].covering_node(tree, node).is_ok());
            }
        }
    }

    #[test]
    fn pipeline_error_display() {
        let e = PipelineError::NoIdentifyingColumn;
        assert!(e.to_string().contains("identifying"));
        let e = PipelineError::Binning(BinningError::InvalidK);
        assert!(e.to_string().contains("binning failed"));
        let e = PipelineError::Watermark(WatermarkError::EmptyMark);
        assert!(e.to_string().contains("watermarking failed"));
    }
}

//! A compact, versioned binary codec for the release state a data owner
//! must retain durably: per-column binning sets, the mark, the ownership
//! proof.
//!
//! The workspace builds hermetically (the `serde` dependency is a no-op
//! shim), so persistence cannot lean on derived serialization. This module
//! provides the hand-rolled alternative: little-endian fixed-width
//! primitives, `u32`-length-prefixed byte strings, and explicit
//! `write_*`/`read_*` pairs for the three protection-state types. Every
//! reader is **total** — malformed or truncated input yields a
//! [`CodecError`], never a panic — because the write-ahead log of the
//! serving layer replays these bytes after a crash.
//!
//! The serving layer's log and snapshot files frame each encoded record
//! with a length prefix and a [`crc32`] checksum so a torn tail can be
//! detected and truncated on recovery.

use medshield_binning::ColumnBinning;
use medshield_dht::{GeneralizationSet, NodeId};
use medshield_watermark::{Mark, OwnershipProof};

/// Why a byte buffer could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value it announced.
    Truncated,
    /// The bytes are structurally invalid (bad tag, impossible length,
    /// non-UTF-8 string).
    Invalid(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer ends before the announced value"),
            CodecError::Invalid(m) => write!(f, "invalid encoding: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only byte buffer the `write_*` functions encode into.
///
/// Length conversions are checked with a *sticky overflow* design: a
/// count that does not fit its wire width poisons the writer instead of
/// truncating silently, and [`Writer::into_bytes`] reports it once at
/// the end — callers keep the simple infallible `write_*` call style.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
    overflow: bool,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round-trip,
    /// including NaN payloads and infinities).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a count/length as a little-endian `u32`; a value above
    /// `u32::MAX` poisons the writer.
    pub fn count_u32(&mut self, v: usize) {
        match u32::try_from(v) {
            Ok(n) => self.u32(n),
            Err(_) => self.overflow = true,
        }
    }

    /// Append a count/length as a little-endian `u64`; lossless for any
    /// `usize` this codebase can run on, but checked all the same.
    pub fn count_u64(&mut self, v: usize) {
        match u64::try_from(v) {
            Ok(n) => self.u64(n),
            Err(_) => self.overflow = true,
        }
    }

    /// Append a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.count_u32(v.len());
        if !self.overflow {
            self.buf.extend_from_slice(v);
        }
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// The encoded bytes — or [`CodecError::Invalid`] if any length
    /// overflowed its wire width along the way.
    pub fn into_bytes(self) -> Result<Vec<u8>, CodecError> {
        if self.overflow {
            return Err(CodecError::Invalid("a length overflowed its wire width".into()));
        }
        Ok(self.buf)
    }
}

/// A cursor over a byte buffer the `read_*` functions decode from.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.at.checked_add(n).ok_or(CodecError::Truncated)?;
        let slice = self.buf.get(self.at..end).ok_or(CodecError::Truncated)?;
        self.at = end;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        self.take(1)?.first().copied().ok_or(CodecError::Truncated)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?.try_into().map_err(|_| CodecError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let bytes = self.take(8)?.try_into().map_err(|_| CodecError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = usize::try_from(self.u32()?).map_err(|_| CodecError::Truncated)?;
        self.take(len)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| CodecError::Invalid("string is not UTF-8".into()))
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Error unless every byte was consumed — a record with trailing bytes
    /// was not produced by this codec.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Invalid(format!("{} trailing bytes after the value", self.remaining())))
        }
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`. Used by the durable
/// release store to checksum every log and snapshot record.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encode a [`Mark`] (bit count + packed bits).
pub fn write_mark(w: &mut Writer, mark: &Mark) {
    w.count_u64(mark.len());
    w.bytes(&mark.to_packed_bits());
}

/// Decode a [`Mark`] written by [`write_mark`].
pub fn read_mark(r: &mut Reader<'_>) -> Result<Mark, CodecError> {
    let len = usize::try_from(r.u64()?)
        .map_err(|_| CodecError::Invalid("mark length exceeds usize".into()))?;
    let packed = r.bytes()?;
    Mark::from_packed_bits(len, packed).ok_or_else(|| {
        CodecError::Invalid(format!("{} packed bytes cannot hold {len} bits", packed.len()))
    })
}

/// Encode an [`OwnershipProof`].
pub fn write_ownership_proof(w: &mut Writer, proof: &OwnershipProof) {
    w.f64(proof.statistic);
    w.count_u64(proof.mark_len);
}

/// Decode an [`OwnershipProof`] written by [`write_ownership_proof`].
pub fn read_ownership_proof(r: &mut Reader<'_>) -> Result<OwnershipProof, CodecError> {
    let statistic = r.f64()?;
    let mark_len = usize::try_from(r.u64()?)
        .map_err(|_| CodecError::Invalid("mark length exceeds usize".into()))?;
    Ok(OwnershipProof { statistic, mark_len })
}

fn write_generalization_set(w: &mut Writer, set: &GeneralizationSet) {
    w.count_u32(set.nodes().len());
    for node in set.nodes() {
        w.u32(node.0);
    }
}

fn read_generalization_set(r: &mut Reader<'_>) -> Result<GeneralizationSet, CodecError> {
    let count = usize::try_from(r.u32()?).map_err(|_| CodecError::Truncated)?;
    // Cap the preallocation by what the buffer can actually hold (4 bytes
    // per node) so a corrupt count cannot balloon memory.
    if count.saturating_mul(4) > r.remaining() {
        return Err(CodecError::Truncated);
    }
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push(NodeId(r.u32()?));
    }
    Ok(GeneralizationSet::from_validated_nodes(nodes))
}

/// Encode a [`ColumnBinning`] (column name + maximal/minimal/ultimate node
/// sets).
pub fn write_column_binning(w: &mut Writer, column: &ColumnBinning) {
    w.str(&column.column);
    write_generalization_set(w, &column.maximal);
    write_generalization_set(w, &column.minimal);
    write_generalization_set(w, &column.ultimate);
}

/// Decode a [`ColumnBinning`] written by [`write_column_binning`].
///
/// Node sets come back through
/// [`GeneralizationSet::from_validated_nodes`], which re-sorts and dedups
/// but does **not** re-check tree validity — the bytes are trusted to have
/// been produced by [`write_column_binning`] over a set that was validated
/// when it was first built (checksums in the store's framing catch
/// corruption before decoding starts).
pub fn read_column_binning(r: &mut Reader<'_>) -> Result<ColumnBinning, CodecError> {
    Ok(ColumnBinning {
        column: r.str()?.to_string(),
        maximal: read_generalization_set(r)?,
        minimal: read_generalization_set(r)?,
        ultimate: read_generalization_set(r)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.f64(-0.125);
        w.f64(f64::NAN);
        w.bytes(b"raw");
        w.str("caf\u{e9}");
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.str().unwrap(), "caf\u{e9}");
        r.finish().unwrap();
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.str("column");
        w.u64(42);
        let bytes = w.into_bytes().unwrap();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let first =
                r.str().map(std::string::ToString::to_string).and_then(|s| r.u64().map(|n| (s, n)));
            assert!(first.is_err(), "cut at {cut} still decoded");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = Writer::new();
        w.u32(1);
        let mut bytes = w.into_bytes().unwrap();
        bytes.push(0);
        let mut r = Reader::new(&bytes);
        r.u32().unwrap();
        assert!(matches!(r.finish(), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn mark_and_proof_round_trip() {
        for len in [0usize, 1, 7, 8, 9, 20, 64, 301] {
            let mark = Mark::from_bytes(b"owner", len);
            let mut w = Writer::new();
            write_mark(&mut w, &mark);
            let bytes = w.into_bytes().unwrap();
            let mut r = Reader::new(&bytes);
            assert_eq!(read_mark(&mut r).unwrap(), mark, "len {len}");
            r.finish().unwrap();
        }
        let proof = OwnershipProof { statistic: 123_456_789.654_321, mark_len: 20 };
        let mut w = Writer::new();
        write_ownership_proof(&mut w, &proof);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        assert_eq!(read_ownership_proof(&mut r).unwrap(), proof);
        r.finish().unwrap();
    }

    #[test]
    fn mark_rejects_impossible_packing() {
        let mut w = Writer::new();
        w.u64(64); // claims 64 bits…
        w.bytes(&[0xFF]); // …but supplies one byte
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        assert!(matches!(read_mark(&mut r), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn column_binning_round_trips_through_real_trees() {
        use medshield_datagen::ontology;
        let trees = ontology::all_trees();
        let tree = trees.values().next().expect("ontology has trees");
        let column = ColumnBinning {
            column: "symptom".to_string(),
            maximal: GeneralizationSet::root_only(tree),
            minimal: GeneralizationSet::all_leaves(tree),
            ultimate: GeneralizationSet::at_depth(tree, 1),
        };
        let mut w = Writer::new();
        write_column_binning(&mut w, &column);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        let decoded = read_column_binning(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, column);
    }
}

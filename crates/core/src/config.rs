//! Configuration of the end-to-end protection pipeline.

use medshield_binning::{BinningConfig, KAnonymitySpec, MinimalNodeStrategy, SelectionStrategy};
use medshield_watermark::{WatermarkConfig, WatermarkKey};
use serde::{Deserialize, Serialize};

/// Complete configuration of [`crate::ProtectionPipeline`]: the k-anonymity
/// specification and binning knobs, the watermarking key and embedding knobs,
/// and the owner's mark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectionConfig {
    /// Binning agent configuration (§4).
    pub binning: BinningConfig,
    /// Watermarking agent configuration (§5).
    pub watermark: WatermarkConfig,
    /// Length of the owner's mark in bits (the paper's experiments use 20).
    pub mark_len: usize,
    /// Free-text seed of the owner's mark when it is not derived from the
    /// identifying-column statistic (the rightful-ownership protocol derives
    /// it from the data instead; see [`crate::ProtectionPipeline::protect`]).
    pub mark_text: String,
    /// Derive the mark from the identifying-column statistic (`F(v)`, §5.4)
    /// instead of from `mark_text`. This is what makes the ownership dispute
    /// resolvable without the original table.
    pub mark_from_statistic: bool,
    /// Depth of the maximal generalization nodes when the caller does not
    /// supply explicit per-column usage metrics (0 = the tree root, i.e. no
    /// usage restriction).
    pub default_maximal_depth: usize,
}

impl ProtectionConfig {
    /// Start building a configuration.
    pub fn builder() -> ProtectionConfigBuilder {
        ProtectionConfigBuilder::default()
    }
}

impl Default for ProtectionConfig {
    fn default() -> Self {
        ProtectionConfig::builder().build()
    }
}

/// Builder for [`ProtectionConfig`].
#[derive(Debug, Clone)]
pub struct ProtectionConfigBuilder {
    k: usize,
    epsilon: usize,
    minimal_strategy: MinimalNodeStrategy,
    selection_strategy: SelectionStrategy,
    exhaustive_limit: usize,
    encryption_secret: Vec<u8>,
    master_secret: Vec<u8>,
    eta: u64,
    duplication: usize,
    weighted_voting: bool,
    columns: Option<Vec<String>>,
    mark_len: usize,
    mark_text: String,
    mark_from_statistic: bool,
    default_maximal_depth: usize,
}

impl Default for ProtectionConfigBuilder {
    fn default() -> Self {
        ProtectionConfigBuilder {
            k: 10,
            epsilon: 0,
            minimal_strategy: MinimalNodeStrategy::default(),
            selection_strategy: SelectionStrategy::default(),
            exhaustive_limit: 4_096,
            encryption_secret: b"medshield-binning-secret".to_vec(),
            master_secret: b"medshield-watermark-secret".to_vec(),
            eta: 100,
            duplication: 8,
            weighted_voting: false,
            columns: None,
            mark_len: 20,
            mark_text: "medshield".to_string(),
            mark_from_statistic: false,
            default_maximal_depth: 0,
        }
    }
}

impl ProtectionConfigBuilder {
    /// The k of the k-anonymity specification.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// The ε safety margin added to k before binning (§6).
    pub fn epsilon(mut self, epsilon: usize) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// The minimal-node strategy of mono-attribute binning.
    pub fn minimal_strategy(mut self, s: MinimalNodeStrategy) -> Self {
        self.minimal_strategy = s;
        self
    }

    /// The selection strategy of multi-attribute binning.
    pub fn selection_strategy(mut self, s: SelectionStrategy) -> Self {
        self.selection_strategy = s;
        self
    }

    /// Secret from which the identifier-encryption key is derived.
    pub fn encryption_secret(mut self, secret: impl Into<Vec<u8>>) -> Self {
        self.encryption_secret = secret.into();
        self
    }

    /// Master secret from which the watermarking keys k1 and k2 are derived.
    pub fn watermark_secret(mut self, secret: impl Into<Vec<u8>>) -> Self {
        self.master_secret = secret.into();
        self
    }

    /// The η selection modulus (1 in η tuples is watermarked).
    pub fn eta(mut self, eta: u64) -> Self {
        self.eta = eta;
        self
    }

    /// How many times the mark is replicated into the extended mark.
    pub fn duplication(mut self, duplication: usize) -> Self {
        self.duplication = duplication.max(1);
        self
    }

    /// Enable level-weighted majority voting during detection.
    pub fn weighted_voting(mut self, on: bool) -> Self {
        self.weighted_voting = on;
        self
    }

    /// Restrict watermarking to specific quasi-identifying columns.
    pub fn watermark_columns(mut self, columns: Vec<String>) -> Self {
        self.columns = Some(columns);
        self
    }

    /// Length of the mark in bits.
    pub fn mark_len(mut self, len: usize) -> Self {
        self.mark_len = len.max(1);
        self
    }

    /// Text from which the mark is derived when not using the
    /// identifying-column statistic.
    pub fn mark_text(mut self, text: impl Into<String>) -> Self {
        self.mark_text = text.into();
        self
    }

    /// Derive the mark from the identifying-column statistic (`F(v)`), the
    /// rightful-ownership construction of §5.4.
    pub fn mark_from_statistic(mut self, on: bool) -> Self {
        self.mark_from_statistic = on;
        self
    }

    /// Depth of the default maximal generalization nodes (usage metrics)
    /// when none are supplied per column.
    pub fn default_maximal_depth(mut self, depth: usize) -> Self {
        self.default_maximal_depth = depth;
        self
    }

    /// Cap on exhaustive enumeration in multi-attribute binning.
    pub fn exhaustive_limit(mut self, limit: usize) -> Self {
        self.exhaustive_limit = limit.max(1);
        self
    }

    /// Finish building.
    pub fn build(self) -> ProtectionConfig {
        let binning = BinningConfig {
            spec: KAnonymitySpec::with_epsilon(self.k, self.epsilon),
            minimal_strategy: self.minimal_strategy,
            selection_strategy: self.selection_strategy,
            exhaustive_limit: self.exhaustive_limit,
            // The engine's `threads` knob overrides this so one setting
            // drives both the binning search and the watermark stages.
            threads: 1,
            encryption_secret: self.encryption_secret,
        };
        let key = WatermarkKey::from_master(&self.master_secret, self.eta);
        let watermark = WatermarkConfig {
            key,
            duplication: self.duplication,
            columns: self.columns,
            weighted_voting: self.weighted_voting,
            virtual_key_columns: Vec::new(),
        };
        ProtectionConfig {
            binning,
            watermark,
            mark_len: self.mark_len,
            mark_text: self.mark_text,
            mark_from_statistic: self.mark_from_statistic,
            default_maximal_depth: self.default_maximal_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let c = ProtectionConfig::default();
        assert_eq!(c.binning.spec.k, 10);
        assert_eq!(c.watermark.key.eta, 100);
        assert_eq!(c.mark_len, 20);
        assert!(!c.mark_from_statistic);
        assert_eq!(c.default_maximal_depth, 0);
        assert_eq!(c.binning.threads, 1);
    }

    #[test]
    fn builder_sets_every_knob() {
        let c = ProtectionConfig::builder()
            .k(25)
            .epsilon(3)
            .eta(50)
            .duplication(4)
            .weighted_voting(true)
            .watermark_columns(vec!["doctor".into()])
            .mark_len(32)
            .mark_text("owner")
            .mark_from_statistic(true)
            .default_maximal_depth(1)
            .exhaustive_limit(99)
            .encryption_secret(b"enc".to_vec())
            .watermark_secret(b"wat".to_vec())
            .minimal_strategy(MinimalNodeStrategy::Aggressive)
            .selection_strategy(SelectionStrategy::FullInfoLoss)
            .build();
        assert_eq!(c.binning.spec.k, 25);
        assert_eq!(c.binning.spec.epsilon, 3);
        assert_eq!(c.binning.spec.effective_k(), 28);
        assert_eq!(c.binning.exhaustive_limit, 99);
        assert_eq!(c.binning.minimal_strategy, MinimalNodeStrategy::Aggressive);
        assert_eq!(c.binning.selection_strategy, SelectionStrategy::FullInfoLoss);
        assert_eq!(c.watermark.key.eta, 50);
        assert_eq!(c.watermark.duplication, 4);
        assert!(c.watermark.weighted_voting);
        assert_eq!(c.watermark.columns, Some(vec!["doctor".to_string()]));
        assert_eq!(c.mark_len, 32);
        assert!(c.mark_from_statistic);
        assert_eq!(c.default_maximal_depth, 1);
    }

    #[test]
    fn degenerate_values_are_clamped() {
        let c = ProtectionConfig::builder().duplication(0).mark_len(0).exhaustive_limit(0).build();
        assert_eq!(c.watermark.duplication, 1);
        assert_eq!(c.mark_len, 1);
        assert_eq!(c.binning.exhaustive_limit, 1);
    }

    #[test]
    fn different_watermark_secrets_produce_different_keys() {
        let a = ProtectionConfig::builder().watermark_secret(b"a".to_vec()).build();
        let b = ProtectionConfig::builder().watermark_secret(b"b".to_vec()).build();
        assert_ne!(a.watermark.key, b.watermark.key);
    }
}

//! Interference of watermarking with binning: the §6 analysis (Lemmas 1–2)
//! and the Fig. 14 measurements.
//!
//! Restricting attention to one quasi-identifying column whose tree has
//! maximal generalization nodes `N_1..N_m` with `n_i` ultimate generalization
//! nodes under `N_i`, the paper shows that a single bit-embedding decreases
//! the size of a particular bin (under `N_k`) with probability
//! `Pr⁻ = (n_k − 1) / (n_k · Σ_i n_i)` and increases it with the same
//! probability `Pr⁺`, so on average watermarking neither grows nor shrinks
//! any bin. [`analytic_interference`] computes those probabilities from the
//! binning state; [`measure_interference`] produces the empirical Fig. 14
//! table (total bins / bins changed / bins below k) by comparing the binned
//! and the watermarked tables.

use medshield_binning::ColumnBinning;
use medshield_dht::DomainHierarchyTree;
use medshield_metrics::bin_stats::{column_bin_report, BinReport};
use medshield_relation::{RelationError, Table};
use std::collections::BTreeMap;

/// Analytic interference figures for one column (§6).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnInterference {
    /// Column name.
    pub column: String,
    /// Number of maximal generalization nodes `m`.
    pub maximal_nodes: usize,
    /// Total number of ultimate generalization nodes `Σ n_i`.
    pub ultimate_nodes: usize,
    /// Per-maximal-node probability that one bit-embedding shrinks a bin
    /// under that node by one (`Pr⁻` of Lemma 1), averaged over the maximal
    /// nodes.
    pub pr_minus: f64,
    /// The corresponding `Pr⁺` of Lemma 2 (equal to `pr_minus` by the
    /// lemmas; kept separate so tests can assert the equality explicitly).
    pub pr_plus: f64,
}

/// Compute the Lemma 1/2 probabilities for every binned column.
pub fn analytic_interference(
    columns: &[ColumnBinning],
    trees: &BTreeMap<String, DomainHierarchyTree>,
) -> Vec<ColumnInterference> {
    let mut out = Vec::with_capacity(columns.len());
    for cb in columns {
        let Some(tree) = trees.get(&cb.column) else { continue };
        let total_ultimate = cb.ultimate.len() as f64;
        let mut pr_minus_sum = 0.0;
        let mut counted = 0usize;
        for &max_node in cb.maximal.nodes() {
            // n_k: ultimate generalization nodes under this maximal node.
            let n_k = cb
                .ultimate
                .nodes()
                .iter()
                .filter(|&&u| tree.is_ancestor_or_self(max_node, u).unwrap_or(false))
                .count() as f64;
            if n_k == 0.0 || total_ultimate == 0.0 {
                continue;
            }
            pr_minus_sum += (n_k - 1.0) / (n_k * total_ultimate);
            counted += 1;
        }
        let pr = if counted == 0 { 0.0 } else { pr_minus_sum / counted as f64 };
        out.push(ColumnInterference {
            column: cb.column.clone(),
            maximal_nodes: cb.maximal.len(),
            ultimate_nodes: cb.ultimate.len(),
            pr_minus: pr,
            pr_plus: pr,
        });
    }
    out
}

/// The empirical Fig. 14 table: per quasi-identifying column, the bin report
/// comparing the binned table with the watermarked table at parameter `k`.
pub fn measure_interference(
    binned: &Table,
    watermarked: &Table,
    k: usize,
) -> Result<Vec<(String, BinReport)>, RelationError> {
    let mut out = Vec::new();
    for column in binned.schema().quasi_names() {
        let report = column_bin_report(binned, watermarked, column, k)?;
        out.push((column.to_string(), report));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProtectionConfig, ProtectionPipeline};
    use medshield_datagen::{DatasetConfig, MedicalDataset};

    fn protected(n: usize, k: usize, eta: u64) -> (MedicalDataset, crate::ProtectedRelease) {
        let ds = MedicalDataset::generate(&DatasetConfig::small(n));
        let p = ProtectionPipeline::new(ProtectionConfig::builder().k(k).eta(eta).build());
        let release = p.protect(&ds.table, &ds.trees).unwrap();
        (ds, release)
    }

    #[test]
    fn lemma_1_and_2_probabilities_are_equal_and_bounded() {
        let (ds, release) = protected(800, 5, 10);
        let analysis = analytic_interference(&release.binning.columns, &ds.trees);
        assert_eq!(analysis.len(), release.binning.columns.len());
        for a in &analysis {
            assert_eq!(a.pr_minus, a.pr_plus, "Lemma 1 = Lemma 2 for {}", a.column);
            assert!(a.pr_minus >= 0.0 && a.pr_minus <= 1.0);
            assert!(a.ultimate_nodes >= 1);
            assert!(a.maximal_nodes >= 1);
        }
    }

    #[test]
    fn single_ultimate_node_has_zero_interference() {
        // When a maximal node has exactly one ultimate node under it, the
        // permutation can only return the same bin: Pr⁻ = 0.
        let (ds, release) = protected(150, 60, 5);
        let analysis = analytic_interference(&release.binning.columns, &ds.trees);
        for a in analysis {
            let cb = release.binning.column(&a.column).unwrap();
            if cb.ultimate.len() == 1 {
                assert_eq!(a.pr_minus, 0.0);
            }
        }
    }

    #[test]
    fn fig14_style_measurement_reports_every_quasi_column() {
        let (_, release) = protected(1000, 5, 10);
        let reports = measure_interference(&release.binning.table, &release.table, 5).unwrap();
        assert_eq!(reports.len(), 5);
        for (column, report) in &reports {
            assert!(report.total_bins >= 1, "{column}");
            assert!(report.changed_bins <= report.total_bins);
        }
        // The headline claim of Fig. 14: watermarking changes bin sizes but
        // does not push bins below k (up to the tiny ε the paper discusses).
        let below: usize = reports.iter().map(|(_, r)| r.below_k).sum();
        let total: usize = reports.iter().map(|(_, r)| r.total_bins).sum();
        assert!(below * 20 <= total, "too many bins fell below k: {below} of {total}");
    }

    #[test]
    fn unknown_trees_are_skipped_in_the_analysis() {
        let (ds, release) = protected(200, 4, 10);
        let mut trees = ds.trees.clone();
        trees.remove("age");
        let analysis = analytic_interference(&release.binning.columns, &trees);
        assert_eq!(analysis.len(), release.binning.columns.len() - 1);
    }
}

//! # MedShield — privacy and ownership preserving outsourcing of medical data
//!
//! A from-scratch Rust implementation of the unified framework of
//! Bertino, Ooi, Yang and Deng, *Privacy and Ownership Preserving of
//! Outsourced Medical Data*, ICDE 2005.
//!
//! The framework protects a relational table of medical records before it is
//! outsourced, against two distinct threats:
//!
//! 1. **Re-identification of individuals** — handled by the *binning agent*
//!    ([`medshield_binning`]): quasi-identifying columns are generalized along
//!    domain hierarchy trees until every quasi-identifier combination is
//!    shared by at least k records, while information loss stays inside
//!    usage-metric bounds enforced off-line as *maximal generalization
//!    nodes*. Identifying columns are encrypted rather than suppressed so the
//!    data remain traceable to the holder.
//! 2. **Data theft / ownership disputes** — handled by the *watermarking
//!    agent* ([`medshield_watermark`]): a keyed fraction of tuples carries an
//!    owner-specific mark, embedded by permuting binned values in the gap
//!    between the maximal and ultimate generalization nodes, hierarchically
//!    at every level so that even a re-generalization attack cannot erase it.
//!    The mark itself is derived from a statistic of the clear-text
//!    identifying column, which settles the rightful-ownership problem
//!    without presenting the original table in court.
//!
//! [`ProtectionEngine`] wires the two agents together (Fig. 2 of the paper):
//! `protect` runs binning followed by watermarking, `detect` recovers the
//! mark from a (possibly attacked) release, and `resolve_ownership` runs the
//! court protocol. The watermark hot paths are sharded over row chunks and
//! run on scoped worker threads — with output byte-identical to the
//! sequential path, which survives as the single-threaded
//! [`ProtectionPipeline`]. [`interference`] quantifies how much watermarking
//! perturbs the bins (Lemmas 1–2 and the Fig. 14 statistics).
//!
//! ```
//! use medshield_core::{ProtectionConfig, ProtectionPipeline};
//! use medshield_datagen::{DatasetConfig, MedicalDataset};
//!
//! let dataset = MedicalDataset::generate(&DatasetConfig::small(400));
//! let config = ProtectionConfig::builder()
//!     .k(4)
//!     .eta(2)          // watermark every other tuple in this small example
//!     .duplication(1)  // small table ⇒ small extended mark
//!     .mark_text("City Hospital Research Release 2005")
//!     .build();
//! let pipeline = ProtectionPipeline::new(config);
//! let release = pipeline.protect(&dataset.table, &dataset.trees).unwrap();
//! let detection = pipeline
//!     .detect(&release.table, &release.binning.columns, &dataset.trees)
//!     .unwrap();
//! assert_eq!(detection.mark, release.mark.bits());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod codec;
pub mod config;
pub mod engine;
pub mod interference;
pub mod pipeline;

pub use codec::CodecError;
pub use config::{ProtectionConfig, ProtectionConfigBuilder};
pub use engine::{PipelineError, ProtectedRelease, ProtectionEngine};
pub use interference::{analytic_interference, measure_interference, ColumnInterference};
pub use pipeline::ProtectionPipeline;

// Re-export the sub-crates so downstream users can depend on `medshield-core`
// alone.
pub use medshield_attacks as attacks;
pub use medshield_binning as binning;
pub use medshield_crypto as crypto;
pub use medshield_datagen as datagen;
pub use medshield_dht as dht;
pub use medshield_metrics as metrics;
pub use medshield_relation as relation;
pub use medshield_watermark as watermark;

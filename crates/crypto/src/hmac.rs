//! HMAC (RFC 2104) over the hash functions of this crate.
//!
//! The paper writes the keyed hash as `H(ti.ident, k1)`; HMAC is the standard
//! construction for turning a Merkle–Damgård hash into such a keyed function
//! without the length-extension weaknesses of naive concatenation.

use crate::md5::Md5;
use crate::sha1::Sha1;
use crate::sha256::Sha256;

const BLOCK_LEN: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

macro_rules! impl_hmac {
    ($name:ident, $hasher:ident, $digest_len:expr, $doc:expr) => {
        #[doc = $doc]
        pub fn $name(key: &[u8], message: &[u8]) -> [u8; $digest_len] {
            // Keys longer than the block size are hashed first (RFC 2104 §2).
            let mut key_block = [0u8; BLOCK_LEN];
            if key.len() > BLOCK_LEN {
                let mut h = $hasher::new();
                h.update(key);
                let digest = h.finalize();
                key_block[..$digest_len].copy_from_slice(&digest);
            } else {
                key_block[..key.len()].copy_from_slice(key);
            }

            let mut ipad = [0u8; BLOCK_LEN];
            let mut opad = [0u8; BLOCK_LEN];
            for i in 0..BLOCK_LEN {
                ipad[i] = key_block[i] ^ IPAD;
                opad[i] = key_block[i] ^ OPAD;
            }

            let mut inner = $hasher::new();
            inner.update(&ipad);
            inner.update(message);
            let inner_digest = inner.finalize();

            let mut outer = $hasher::new();
            outer.update(&opad);
            outer.update(&inner_digest);
            outer.finalize()
        }
    };
}

impl_hmac!(hmac_md5, Md5, 16, "HMAC-MD5 of `message` under `key` (16-byte tag).");
impl_hmac!(hmac_sha1, Sha1, 20, "HMAC-SHA1 of `message` under `key` (20-byte tag).");
impl_hmac!(hmac_sha256, Sha256, 32, "HMAC-SHA256 of `message` under `key` (32-byte tag).");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 2202 test vectors for HMAC-MD5 and HMAC-SHA1, RFC 4231 for HMAC-SHA256.
    #[test]
    fn rfc2202_hmac_md5() {
        let key = [0x0b_u8; 16];
        assert_eq!(hex::encode(&hmac_md5(&key, b"Hi There")), "9294727a3638bb1c13f48ef8158bfc9d");
        assert_eq!(
            hex::encode(&hmac_md5(b"Jefe", b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
    }

    #[test]
    fn rfc2202_hmac_sha1() {
        let key = [0x0b_u8; 20];
        assert_eq!(
            hex::encode(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
        assert_eq!(
            hex::encode(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc4231_hmac_sha256() {
        let key = [0x0b_u8; 20];
        assert_eq!(
            hex::encode(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex::encode(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // RFC 4231 test case 6: 131-byte key.
        let key = [0xaa_u8; 131];
        assert_eq!(
            hex::encode(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn key_separation() {
        // Different keys must produce different tags (the property the paper
        // relies on when using distinct keys k1 and k2, §5.3).
        let msg = b"ssn-encrypted-value";
        assert_ne!(hmac_sha256(b"k1", msg), hmac_sha256(b"k2", msg));
        assert_ne!(hmac_sha1(b"k1", msg), hmac_sha1(b"k2", msg));
        assert_ne!(hmac_md5(b"k1", msg), hmac_md5(b"k2", msg));
    }
}

//! HMAC (RFC 2104) over the hash functions of this crate.
//!
//! The paper writes the keyed hash as `H(ti.ident, k1)`; HMAC is the standard
//! construction for turning a Merkle–Damgård hash into such a keyed function
//! without the length-extension weaknesses of naive concatenation.

use crate::md5::Md5;
use crate::sha1::Sha1;
use crate::sha256::Sha256;
use crate::HashAlgorithm;

const BLOCK_LEN: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

macro_rules! impl_hmac {
    ($name:ident, $hasher:ident, $digest_len:expr, $doc:expr) => {
        #[doc = $doc]
        pub fn $name(key: &[u8], message: &[u8]) -> [u8; $digest_len] {
            // Keys longer than the block size are hashed first (RFC 2104 §2).
            let mut key_block = [0u8; BLOCK_LEN];
            if key.len() > BLOCK_LEN {
                let mut h = $hasher::new();
                h.update(key);
                let digest = h.finalize();
                key_block[..$digest_len].copy_from_slice(&digest);
            } else {
                key_block[..key.len()].copy_from_slice(key);
            }

            let mut ipad = [0u8; BLOCK_LEN];
            let mut opad = [0u8; BLOCK_LEN];
            for i in 0..BLOCK_LEN {
                ipad[i] = key_block[i] ^ IPAD;
                opad[i] = key_block[i] ^ OPAD;
            }

            let mut inner = $hasher::new();
            inner.update(&ipad);
            inner.update(message);
            let inner_digest = inner.finalize();

            let mut outer = $hasher::new();
            outer.update(&opad);
            outer.update(&inner_digest);
            outer.finalize()
        }
    };
}

impl_hmac!(hmac_md5, Md5, 16, "HMAC-MD5 of `message` under `key` (16-byte tag).");
impl_hmac!(hmac_sha1, Sha1, 20, "HMAC-SHA1 of `message` under `key` (20-byte tag).");
impl_hmac!(hmac_sha256, Sha256, 32, "HMAC-SHA256 of `message` under `key` (32-byte tag).");

/// Builds the ipad/opad-primed hasher pair for one hasher type: the RFC 2104
/// key schedule run once, with the two hashers left positioned just past
/// their 64-byte pad block.
macro_rules! primed_pair {
    ($hasher:ident, $digest_len:expr, $key:expr) => {{
        let key: &[u8] = $key;
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let mut h = $hasher::new();
            h.update(key);
            let digest = h.finalize();
            key_block[..$digest_len].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ IPAD;
            opad[i] = key_block[i] ^ OPAD;
        }
        let mut inner = $hasher::new();
        inner.update(&ipad);
        let mut outer = $hasher::new();
        outer.update(&opad);
        (inner, outer)
    }};
}

/// The ipad/opad midstates for one algorithm: both hashers have already
/// absorbed their exactly-one-block pad, so a per-message digest costs two
/// hasher clones instead of a fresh key schedule.
#[derive(Clone)]
enum Midstate {
    Md5 { inner: Md5, outer: Md5 },
    Sha1 { inner: Sha1, outer: Sha1 },
    Sha256 { inner: Sha256, outer: Sha256 },
}

/// A precomputed HMAC key schedule.
///
/// [`hmac_md5`]/[`hmac_sha1`]/[`hmac_sha256`] rebuild the padded key blocks
/// and absorb them into fresh hashers on every call; in the watermarking hot
/// loops that key schedule dominates the per-tuple cost because the messages
/// themselves are short. `HmacKey` runs the schedule once at construction and
/// caches the two primed hashers, producing tags byte-identical to the naive
/// functions (pinned by tests).
#[derive(Clone)]
pub struct HmacKey {
    algorithm: HashAlgorithm,
    midstate: Midstate,
}

impl HmacKey {
    /// Run the RFC 2104 key schedule for `key` under `algorithm` and cache
    /// the resulting ipad/opad midstates.
    pub fn new(algorithm: HashAlgorithm, key: &[u8]) -> Self {
        let midstate = match algorithm {
            HashAlgorithm::Md5 => {
                let (inner, outer) = primed_pair!(Md5, 16, key);
                Midstate::Md5 { inner, outer }
            }
            HashAlgorithm::Sha1 => {
                let (inner, outer) = primed_pair!(Sha1, 20, key);
                Midstate::Sha1 { inner, outer }
            }
            HashAlgorithm::Sha256 => {
                let (inner, outer) = primed_pair!(Sha256, 32, key);
                Midstate::Sha256 { inner, outer }
            }
        };
        HmacKey { algorithm, midstate }
    }

    /// The hash algorithm this key schedule was built for.
    pub fn algorithm(&self) -> HashAlgorithm {
        self.algorithm
    }

    /// The HMAC tag of `message`, byte-identical to the corresponding
    /// `hmac_*` function.
    pub fn digest(&self, message: &[u8]) -> Vec<u8> {
        self.digest_parts(&[message])
    }

    /// The HMAC tag of the concatenation of `parts`, without materializing
    /// the concatenation. Streaming the parts through the inner hasher is
    /// definitionally equal to hashing their concatenation, so
    /// `digest_parts(&[a, b]) == digest(a ++ b)` byte for byte.
    pub fn digest_parts(&self, parts: &[&[u8]]) -> Vec<u8> {
        match &self.midstate {
            Midstate::Md5 { inner, outer } => {
                let mut h = inner.clone();
                for part in parts {
                    h.update(part);
                }
                let inner_digest = h.finalize();
                let mut o = outer.clone();
                o.update(&inner_digest);
                o.finalize().to_vec()
            }
            Midstate::Sha1 { inner, outer } => {
                let mut h = inner.clone();
                for part in parts {
                    h.update(part);
                }
                let inner_digest = h.finalize();
                let mut o = outer.clone();
                o.update(&inner_digest);
                o.finalize().to_vec()
            }
            Midstate::Sha256 { inner, outer } => {
                let mut h = inner.clone();
                for part in parts {
                    h.update(part);
                }
                let inner_digest = h.finalize();
                let mut o = outer.clone();
                o.update(&inner_digest);
                o.finalize().to_vec()
            }
        }
    }
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The midstates are key material; never print them.
        f.debug_struct("HmacKey").field("algorithm", &self.algorithm).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 2202 test vectors for HMAC-MD5 and HMAC-SHA1, RFC 4231 for HMAC-SHA256.
    #[test]
    fn rfc2202_hmac_md5() {
        let key = [0x0b_u8; 16];
        assert_eq!(hex::encode(&hmac_md5(&key, b"Hi There")), "9294727a3638bb1c13f48ef8158bfc9d");
        assert_eq!(
            hex::encode(&hmac_md5(b"Jefe", b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
    }

    #[test]
    fn rfc2202_hmac_sha1() {
        let key = [0x0b_u8; 20];
        assert_eq!(
            hex::encode(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
        assert_eq!(
            hex::encode(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc4231_hmac_sha256() {
        let key = [0x0b_u8; 20];
        assert_eq!(
            hex::encode(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex::encode(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // RFC 4231 test case 6: 131-byte key.
        let key = [0xaa_u8; 131];
        assert_eq!(
            hex::encode(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn key_separation() {
        // Different keys must produce different tags (the property the paper
        // relies on when using distinct keys k1 and k2, §5.3).
        let msg = b"ssn-encrypted-value";
        assert_ne!(hmac_sha256(b"k1", msg), hmac_sha256(b"k2", msg));
        assert_ne!(hmac_sha1(b"k1", msg), hmac_sha1(b"k2", msg));
        assert_ne!(hmac_md5(b"k1", msg), hmac_md5(b"k2", msg));
    }

    #[test]
    fn cached_midstate_matches_naive_path() {
        // The midstate-cached schedule must be byte-identical to the naive
        // per-call functions for every algorithm, across the key-length cases
        // RFC 2104 distinguishes (short, exactly block-sized, longer than a
        // block) and messages spanning block boundaries.
        let keys: [&[u8]; 4] = [b"", b"k1", &[0x0b; 64], &[0xaa; 131]];
        let messages: [&[u8]; 4] = [b"", b"Hi There", &[0x42; 64], &[0x37; 200]];
        for key in keys {
            for msg in messages {
                let md5_key = HmacKey::new(HashAlgorithm::Md5, key);
                assert_eq!(md5_key.digest(msg), hmac_md5(key, msg).to_vec());
                let sha1_key = HmacKey::new(HashAlgorithm::Sha1, key);
                assert_eq!(sha1_key.digest(msg), hmac_sha1(key, msg).to_vec());
                let sha256_key = HmacKey::new(HashAlgorithm::Sha256, key);
                assert_eq!(sha256_key.digest(msg), hmac_sha256(key, msg).to_vec());
            }
        }
    }

    #[test]
    fn digest_parts_equals_digest_of_concatenation() {
        let key = HmacKey::new(HashAlgorithm::Sha256, b"k2");
        let (a, b, c): (&[u8], &[u8], &[u8]) = (b"perm:age\x1f", b"ident-", b"bytes");
        let mut concat = a.to_vec();
        concat.extend_from_slice(b);
        concat.extend_from_slice(c);
        assert_eq!(key.digest_parts(&[a, b, c]), key.digest(&concat));
        assert_eq!(key.digest_parts(&[&concat]), key.digest(&concat));
        assert_eq!(key.digest_parts(&[]), key.digest(b""));
    }

    #[test]
    fn cached_key_is_reusable_across_messages() {
        // Reusing one HmacKey for many messages must not leak state between
        // calls: each digest equals a fresh naive computation.
        let key = HmacKey::new(HashAlgorithm::Sha256, b"watermark-key");
        for i in 0..32u32 {
            let msg = i.to_be_bytes();
            assert_eq!(key.digest(&msg), hmac_sha256(b"watermark-key", &msg).to_vec());
        }
    }
}

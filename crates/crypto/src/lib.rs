//! # medshield-crypto
//!
//! From-scratch cryptographic primitives for the MedShield framework
//! (Bertino et al., *Privacy and Ownership Preserving of Outsourced Medical
//! Data*, ICDE 2005).
//!
//! The paper's framework requires three cryptographic building blocks:
//!
//! * `H()` — a cryptographic hash function (the paper suggests MD5 or SHA-1)
//!   used, keyed, for watermark tuple selection (Eq. 5) and for deriving the
//!   permutation indices of the hierarchical embedding (Fig. 9).
//! * `E()` — a block cipher (the paper suggests DES or AES) used for the
//!   one-to-one replacement of the identifying columns during binning
//!   (Fig. 8).
//! * `F()` — a one-way function that maps a statistic of the clear-text
//!   identifying column to the owner's mark, resolving the rightful
//!   ownership problem (§5.4).
//!
//! None of these are available in the allowed offline dependency set, so this
//! crate implements them from scratch:
//!
//! * [`md5`], [`sha1`], [`sha256`] — reference implementations validated
//!   against the RFC 1321 / FIPS 180 test vectors.
//! * [`hmac`] — HMAC over any of the provided hash functions, used as the
//!   keyed hash `H(·, k)` of the paper.
//! * [`aes`] — AES-128 with ECB (for deterministic one-to-one identifier
//!   replacement) and CTR (for general encryption) modes, validated against
//!   the FIPS 197 test vectors.
//! * [`prf`] — a convenience keyed pseudo-random function built on HMAC-SHA-256
//!   that yields `u64` values, the form in which the rest of the framework
//!   consumes `H(ti.ident, k) mod η`.
//!
//! The crate is `#![forbid(unsafe_code)]` and has no dependencies besides
//! `serde` (for key serialization).
//!
//! ```
//! use medshield_crypto::{hex, HashAlgorithm};
//!
//! let digest = HashAlgorithm::Sha256.digest(b"abc");
//! assert_eq!(
//!     hex::encode(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
//! );
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aes;
pub mod error;
pub mod hex;
pub mod hmac;
pub mod md5;
pub mod prf;
pub mod sha1;
pub mod sha256;

pub use aes::{Aes128, AesBlock};
pub use error::CryptoError;
pub use hmac::{hmac_md5, hmac_sha1, hmac_sha256, HmacKey};
pub use prf::{KeyedPrf, PrfAlgorithm};

/// The digest size, in bytes, of MD5.
pub const MD5_DIGEST_LEN: usize = 16;
/// The digest size, in bytes, of SHA-1.
pub const SHA1_DIGEST_LEN: usize = 20;
/// The digest size, in bytes, of SHA-256.
pub const SHA256_DIGEST_LEN: usize = 32;

/// The hash algorithms available to the framework, mirroring the paper's
/// "e.g. MD5 or SHA1" choice plus SHA-256 as a modern default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum HashAlgorithm {
    /// RFC 1321 MD5 (16-byte digest). Kept for fidelity with the paper.
    Md5,
    /// FIPS 180-1 SHA-1 (20-byte digest). Kept for fidelity with the paper.
    Sha1,
    /// FIPS 180-4 SHA-256 (32-byte digest). Recommended default.
    Sha256,
}

impl HashAlgorithm {
    /// Digest length in bytes for this algorithm.
    pub fn digest_len(self) -> usize {
        match self {
            HashAlgorithm::Md5 => MD5_DIGEST_LEN,
            HashAlgorithm::Sha1 => SHA1_DIGEST_LEN,
            HashAlgorithm::Sha256 => SHA256_DIGEST_LEN,
        }
    }

    /// Hash `data` with this algorithm, returning the digest as a `Vec<u8>`.
    pub fn digest(self, data: &[u8]) -> Vec<u8> {
        match self {
            HashAlgorithm::Md5 => md5::md5(data).to_vec(),
            HashAlgorithm::Sha1 => sha1::sha1(data).to_vec(),
            HashAlgorithm::Sha256 => sha256::sha256(data).to_vec(),
        }
    }

    /// Keyed (HMAC) hash of `data` under `key` with this algorithm.
    pub fn keyed_digest(self, key: &[u8], data: &[u8]) -> Vec<u8> {
        match self {
            HashAlgorithm::Md5 => hmac::hmac_md5(key, data).to_vec(),
            HashAlgorithm::Sha1 => hmac::hmac_sha1(key, data).to_vec(),
            HashAlgorithm::Sha256 => hmac::hmac_sha256(key, data).to_vec(),
        }
    }
}

impl std::fmt::Display for HashAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HashAlgorithm::Md5 => write!(f, "md5"),
            HashAlgorithm::Sha1 => write!(f, "sha1"),
            HashAlgorithm::Sha256 => write!(f, "sha256"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_lengths_match_constants() {
        assert_eq!(HashAlgorithm::Md5.digest_len(), 16);
        assert_eq!(HashAlgorithm::Sha1.digest_len(), 20);
        assert_eq!(HashAlgorithm::Sha256.digest_len(), 32);
    }

    #[test]
    fn digest_dispatch_matches_direct_calls() {
        let data = b"outsourced medical data";
        assert_eq!(HashAlgorithm::Md5.digest(data), md5::md5(data).to_vec());
        assert_eq!(HashAlgorithm::Sha1.digest(data), sha1::sha1(data).to_vec());
        assert_eq!(HashAlgorithm::Sha256.digest(data), sha256::sha256(data).to_vec());
    }

    #[test]
    fn keyed_digest_differs_from_plain_digest() {
        let data = b"tuple-identifier";
        for alg in [HashAlgorithm::Md5, HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            assert_ne!(alg.keyed_digest(b"key", data), alg.digest(data));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(HashAlgorithm::Md5.to_string(), "md5");
        assert_eq!(HashAlgorithm::Sha1.to_string(), "sha1");
        assert_eq!(HashAlgorithm::Sha256.to_string(), "sha256");
    }
}

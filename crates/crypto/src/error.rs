//! Error type shared by the cryptographic primitives.

/// Errors raised by the `medshield-crypto` primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The supplied key has a length that the algorithm cannot accept.
    InvalidKeyLength {
        /// Length that was expected by the algorithm.
        expected: usize,
        /// Length that was actually supplied.
        actual: usize,
    },
    /// Ciphertext or plaintext length is not a multiple of the block size
    /// (for block modes that require exact blocks, such as ECB).
    InvalidBlockLength {
        /// The cipher block size in bytes.
        block: usize,
        /// The offending input length.
        actual: usize,
    },
    /// A hex string could not be decoded.
    InvalidHex(String),
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::InvalidKeyLength { expected, actual } => {
                write!(f, "invalid key length: expected {expected} bytes, got {actual}")
            }
            CryptoError::InvalidBlockLength { block, actual } => {
                write!(f, "input length {actual} is not a multiple of the {block}-byte block size")
            }
            CryptoError::InvalidHex(s) => write!(f, "invalid hex string: {s}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CryptoError::InvalidKeyLength { expected: 16, actual: 7 };
        assert!(e.to_string().contains("expected 16"));
        let e = CryptoError::InvalidBlockLength { block: 16, actual: 17 };
        assert!(e.to_string().contains("16-byte block"));
        let e = CryptoError::InvalidHex("zz".into());
        assert!(e.to_string().contains("zz"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&CryptoError::InvalidHex("x".into()));
    }
}

//! SHA-1 message digest (FIPS 180-1 / RFC 3174).
//!
//! SHA-1 is the second hash function the paper names for `H()`. As with MD5 it
//! is kept for fidelity with the paper; new deployments should use SHA-256.

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a new hasher with the FIPS 180-1 initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process_block(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finish hashing and return the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.process_block(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn fips_test_vectors() {
        let cases: &[(&str, &str)] = &[
            ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (
                "The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(hex::encode(&sha1(input.as_bytes())), *expected, "input {input:?}");
        }
    }

    #[test]
    fn million_a() {
        // FIPS 180-1 vector: one million repetitions of "a".
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(hex::encode(&h.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..777).map(|i| (i * 7 % 256) as u8).collect();
        let expected = sha1(&data);
        for chunk in [1usize, 5, 64, 100] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), expected, "chunk size {chunk}");
        }
    }
}

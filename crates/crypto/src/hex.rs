//! Minimal hex encoding/decoding helpers.
//!
//! Used for displaying digests in reports and for round-tripping encrypted
//! identifier values through the textual `Value` representation of the
//! relational substrate.

use crate::error::CryptoError;

const HEX_CHARS: &[u8; 16] = b"0123456789abcdef";

/// Encode `data` as a lowercase hexadecimal string.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(HEX_CHARS[(b >> 4) as usize] as char);
        out.push(HEX_CHARS[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decode a hexadecimal string (upper- or lowercase) into bytes.
///
/// Returns [`CryptoError::InvalidHex`] if the string has odd length or
/// contains a non-hex character.
pub fn decode(s: &str) -> Result<Vec<u8>, CryptoError> {
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::InvalidHex(s.to_string()));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = hex_val(pair[0]).ok_or_else(|| CryptoError::InvalidHex(s.to_string()))?;
        let lo = hex_val(pair[1]).ok_or_else(|| CryptoError::InvalidHex(s.to_string()))?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known_values() {
        assert_eq!(encode(&[]), "");
        assert_eq!(encode(&[0x00]), "00");
        assert_eq!(encode(&[0xde, 0xad, 0xbe, 0xef]), "deadbeef");
        assert_eq!(encode(&[0x0f, 0xf0]), "0ff0");
    }

    #[test]
    fn decode_known_values() {
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
        assert_eq!(decode("deadbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn decode_rejects_odd_length() {
        assert!(decode("abc").is_err());
    }

    #[test]
    fn decode_rejects_non_hex() {
        assert!(decode("zz").is_err());
        assert!(decode("0g").is_err());
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}

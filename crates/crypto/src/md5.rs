//! MD5 message digest (RFC 1321).
//!
//! MD5 is cryptographically broken for collision resistance, but it is one of
//! the two hash functions the paper explicitly names for the keyed tuple
//! selection step (Eq. 5). It is provided for fidelity with the paper; the
//! framework defaults to SHA-256.

/// Streaming MD5 hasher.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-round shift amounts (RFC 1321 §3.4).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9,
    14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10, 15,
    21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants `K[i] = floor(2^32 * abs(sin(i+1)))` (RFC 1321 §3.4).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

impl Md5 {
    /// Create a new hasher with the RFC 1321 initial state.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process_block(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finish hashing and return the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros until length ≡ 56 (mod 64), then 8-byte LE length.
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        // Append the length without counting it into total_len again.
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_le_bytes());
        self.process_block(&block);

        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }

        let [mut a, mut b, mut c, mut d] = self.state;

        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | (!b & d), i),
                16..=31 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(S[i]));
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// One-shot MD5 of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_test_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(hex::encode(&md5(input.as_bytes())), *expected, "input {input:?}");
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let one_shot = md5(&data);
        for chunk in [1usize, 3, 7, 63, 64, 65, 127] {
            let mut h = Md5::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), one_shot, "chunk size {chunk}");
        }
    }

    #[test]
    fn multi_block_input() {
        // Exactly two blocks plus padding spill.
        let data = vec![b'x'; 128];
        let d = md5(&data);
        assert_eq!(d.len(), 16);
        // Deterministic.
        assert_eq!(md5(&data), d);
    }
}

//! AES-128 block cipher (FIPS 197) with ECB and CTR modes.
//!
//! The binning algorithm (Fig. 8 in the paper) replaces every value of the
//! identifying columns with `E(value)` where `E()` is "an encryption function,
//! e.g. DES or AES". The replacement must be a deterministic one-to-one map so
//! that the encrypted identifier can still act as a (pseudonymous) key for
//! watermark tuple selection and for the rightful-ownership statistic. For
//! that use case [`Aes128::encrypt_value`] applies ECB over a length-prefixed,
//! zero-padded encoding — deterministic and invertible. For bulk encryption
//! where determinism is not wanted, [`Aes128::ctr_crypt`] provides CTR mode.

use crate::error::CryptoError;

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;
/// AES-128 key size in bytes.
pub const KEY_LEN: usize = 16;
/// Number of AES-128 rounds.
const ROUNDS: usize = 10;

/// A single 16-byte AES block.
pub type AesBlock = [u8; BLOCK_LEN];

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// AES inverse S-box.
const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

/// Round constants for key expansion.
const RCON: [u8; 11] = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply in GF(2^8) modulo the AES polynomial x^8 + x^4 + x^3 + x + 1.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key schedule.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; BLOCK_LEN]; ROUNDS + 1],
}

impl std::fmt::Debug for Aes128 {
    /// The key schedule is secret material; never print it.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expand a 16-byte key into the round-key schedule.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        if key.len() != KEY_LEN {
            return Err(CryptoError::InvalidKeyLength { expected: KEY_LEN, actual: key.len() });
        }
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i] = [chunk[0], chunk[1], chunk[2], chunk[3]];
        }
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; BLOCK_LEN]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..(c + 1) * 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Ok(Aes128 { round_keys })
    }

    /// Construct from an arbitrary-length secret by deriving the 16-byte key
    /// with SHA-256 (first 16 bytes of the digest). Convenient for textual
    /// watermarking keys.
    pub fn from_secret(secret: &[u8]) -> Self {
        let digest = crate::sha256::sha256(secret);
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(&digest[..KEY_LEN]);
        // Unwrap is fine: the key length is correct by construction.
        Aes128::new(&key).expect("derived key has the correct length")
    }

    /// Encrypt a single block in place.
    pub fn encrypt_block(&self, block: &mut AesBlock) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..ROUNDS {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[ROUNDS]);
    }

    /// Decrypt a single block in place.
    pub fn decrypt_block(&self, block: &mut AesBlock) {
        add_round_key(block, &self.round_keys[ROUNDS]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..ROUNDS).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// ECB-encrypt `data`, which must be a multiple of 16 bytes.
    ///
    /// ECB is used deliberately for the deterministic one-to-one identifier
    /// replacement of the binning step; see the module documentation.
    pub fn ecb_encrypt(&self, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if !data.len().is_multiple_of(BLOCK_LEN) {
            return Err(CryptoError::InvalidBlockLength { block: BLOCK_LEN, actual: data.len() });
        }
        let mut out = data.to_vec();
        for chunk in out.chunks_exact_mut(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(chunk);
            self.encrypt_block(&mut block);
            chunk.copy_from_slice(&block);
        }
        Ok(out)
    }

    /// ECB-decrypt `data`, which must be a multiple of 16 bytes.
    pub fn ecb_decrypt(&self, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if !data.len().is_multiple_of(BLOCK_LEN) {
            return Err(CryptoError::InvalidBlockLength { block: BLOCK_LEN, actual: data.len() });
        }
        let mut out = data.to_vec();
        for chunk in out.chunks_exact_mut(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(chunk);
            self.decrypt_block(&mut block);
            chunk.copy_from_slice(&block);
        }
        Ok(out)
    }

    /// Encrypt or decrypt `data` in CTR mode with the given 16-byte nonce/IV.
    /// CTR is an involution, so the same call decrypts.
    pub fn ctr_crypt(&self, nonce: &AesBlock, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        let mut counter = u128::from_be_bytes(*nonce);
        for chunk in data.chunks(BLOCK_LEN) {
            let mut keystream = counter.to_be_bytes();
            self.encrypt_block(&mut keystream);
            for (i, &b) in chunk.iter().enumerate() {
                out.push(b ^ keystream[i]);
            }
            counter = counter.wrapping_add(1);
        }
        out
    }

    /// Deterministically encrypt an arbitrary byte string into a hex-encoded
    /// ciphertext. Used as the `E()` of the binning algorithm (Fig. 8): a
    /// one-to-one replacement for identifying-column values.
    ///
    /// Encoding: an 8-byte big-endian length prefix followed by the value,
    /// zero-padded to a multiple of 16 bytes, ECB-encrypted, hex-encoded.
    pub fn encrypt_value(&self, value: &[u8]) -> String {
        let mut plain = Vec::with_capacity(8 + value.len() + BLOCK_LEN);
        plain.extend_from_slice(&(value.len() as u64).to_be_bytes());
        plain.extend_from_slice(value);
        while plain.len() % BLOCK_LEN != 0 {
            plain.push(0);
        }
        let cipher = self.ecb_encrypt(&plain).expect("padded plaintext is block aligned");
        crate::hex::encode(&cipher)
    }

    /// Invert [`Aes128::encrypt_value`], recovering the original byte string.
    pub fn decrypt_value(&self, hex_ciphertext: &str) -> Result<Vec<u8>, CryptoError> {
        let cipher = crate::hex::decode(hex_ciphertext)?;
        let plain = self.ecb_decrypt(&cipher)?;
        if plain.len() < 8 {
            return Err(CryptoError::InvalidBlockLength { block: BLOCK_LEN, actual: plain.len() });
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&plain[..8]);
        let len = u64::from_be_bytes(len_bytes) as usize;
        if 8 + len > plain.len() {
            return Err(CryptoError::InvalidHex(hex_ciphertext.to_string()));
        }
        Ok(plain[8..8 + len].to_vec())
    }
}

fn add_round_key(block: &mut AesBlock, rk: &[u8; BLOCK_LEN]) {
    for i in 0..BLOCK_LEN {
        block[i] ^= rk[i];
    }
}

fn sub_bytes(block: &mut AesBlock) {
    for b in block.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(block: &mut AesBlock) {
    for b in block.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

/// State is column-major: byte `i` sits at row `i % 4`, column `i / 4`.
fn shift_rows(block: &mut AesBlock) {
    let orig = *block;
    for row in 1..4 {
        for col in 0..4 {
            block[col * 4 + row] = orig[((col + row) % 4) * 4 + row];
        }
    }
}

fn inv_shift_rows(block: &mut AesBlock) {
    let orig = *block;
    for row in 1..4 {
        for col in 0..4 {
            block[((col + row) % 4) * 4 + row] = orig[col * 4 + row];
        }
    }
}

fn mix_columns(block: &mut AesBlock) {
    for col in 0..4 {
        let c = &mut block[col * 4..(col + 1) * 4];
        let a = [c[0], c[1], c[2], c[3]];
        c[0] = gmul(a[0], 2) ^ gmul(a[1], 3) ^ a[2] ^ a[3];
        c[1] = a[0] ^ gmul(a[1], 2) ^ gmul(a[2], 3) ^ a[3];
        c[2] = a[0] ^ a[1] ^ gmul(a[2], 2) ^ gmul(a[3], 3);
        c[3] = gmul(a[0], 3) ^ a[1] ^ a[2] ^ gmul(a[3], 2);
    }
}

fn inv_mix_columns(block: &mut AesBlock) {
    for col in 0..4 {
        let c = &mut block[col * 4..(col + 1) * 4];
        let a = [c[0], c[1], c[2], c[3]];
        c[0] = gmul(a[0], 14) ^ gmul(a[1], 11) ^ gmul(a[2], 13) ^ gmul(a[3], 9);
        c[1] = gmul(a[0], 9) ^ gmul(a[1], 14) ^ gmul(a[2], 11) ^ gmul(a[3], 13);
        c[2] = gmul(a[0], 13) ^ gmul(a[1], 9) ^ gmul(a[2], 14) ^ gmul(a[3], 11);
        c[3] = gmul(a[0], 11) ^ gmul(a[1], 13) ^ gmul(a[2], 9) ^ gmul(a[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// FIPS 197 Appendix B example vector.
    #[test]
    fn fips197_appendix_b() {
        let key = hex::decode("2b7e151628aed2a6abf7158809cf4f3c").unwrap();
        let cipher = Aes128::new(&key).unwrap();
        let mut block: AesBlock = [0u8; 16];
        block.copy_from_slice(&hex::decode("3243f6a8885a308d313198a2e0370734").unwrap());
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "3925841d02dc09fbdc118597196a0b32");
        cipher.decrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "3243f6a8885a308d313198a2e0370734");
    }

    /// FIPS 197 Appendix C.1 known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key = hex::decode("000102030405060708090a0b0c0d0e0f").unwrap();
        let cipher = Aes128::new(&key).unwrap();
        let mut block: AesBlock = [0u8; 16];
        block.copy_from_slice(&hex::decode("00112233445566778899aabbccddeeff").unwrap());
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
    }

    #[test]
    fn invalid_key_length_rejected() {
        assert!(matches!(
            Aes128::new(&[0u8; 15]),
            Err(CryptoError::InvalidKeyLength { expected: 16, actual: 15 })
        ));
        assert!(Aes128::new(&[0u8; 16]).is_ok());
    }

    #[test]
    fn ecb_rejects_partial_blocks() {
        let cipher = Aes128::from_secret(b"owner-key");
        assert!(cipher.ecb_encrypt(&[0u8; 17]).is_err());
        assert!(cipher.ecb_decrypt(&[0u8; 1]).is_err());
    }

    #[test]
    fn ecb_roundtrip() {
        let cipher = Aes128::from_secret(b"owner-key");
        let plain = vec![7u8; 64];
        let ct = cipher.ecb_encrypt(&plain).unwrap();
        assert_ne!(ct, plain);
        assert_eq!(cipher.ecb_decrypt(&ct).unwrap(), plain);
    }

    #[test]
    fn ctr_roundtrip_arbitrary_length() {
        let cipher = Aes128::from_secret(b"owner-key");
        let nonce = [9u8; 16];
        for len in [0usize, 1, 15, 16, 17, 100] {
            let plain: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = cipher.ctr_crypt(&nonce, &plain);
            assert_eq!(cipher.ctr_crypt(&nonce, &ct), plain, "len {len}");
        }
    }

    #[test]
    fn encrypt_value_is_deterministic_and_invertible() {
        let cipher = Aes128::from_secret(b"hospital-secret");
        let ssn = b"987-65-4320";
        let c1 = cipher.encrypt_value(ssn);
        let c2 = cipher.encrypt_value(ssn);
        assert_eq!(c1, c2, "one-to-one replacement must be deterministic");
        assert_eq!(cipher.decrypt_value(&c1).unwrap(), ssn.to_vec());
    }

    #[test]
    fn encrypt_value_is_injective_on_sample() {
        let cipher = Aes128::from_secret(b"hospital-secret");
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let v = format!("ssn-{i:09}");
            assert!(seen.insert(cipher.encrypt_value(v.as_bytes())), "collision at {i}");
        }
    }

    #[test]
    fn different_secrets_different_ciphertexts() {
        let a = Aes128::from_secret(b"key-a");
        let b = Aes128::from_secret(b"key-b");
        assert_ne!(a.encrypt_value(b"123-45-6789"), b.encrypt_value(b"123-45-6789"));
    }

    #[test]
    fn decrypt_value_rejects_garbage() {
        let cipher = Aes128::from_secret(b"key");
        assert!(cipher.decrypt_value("not-hex!").is_err());
        assert!(cipher.decrypt_value("00").is_err());
    }

    #[test]
    fn empty_value_roundtrip() {
        let cipher = Aes128::from_secret(b"key");
        let ct = cipher.encrypt_value(b"");
        assert_eq!(cipher.decrypt_value(&ct).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn long_value_roundtrip() {
        let cipher = Aes128::from_secret(b"key");
        let v: Vec<u8> = (0..200).map(|i| (i * 3) as u8).collect();
        let ct = cipher.encrypt_value(&v);
        assert_eq!(cipher.decrypt_value(&ct).unwrap(), v);
    }
}

//! Keyed pseudo-random function used throughout the framework.
//!
//! The watermarking algorithm consumes the keyed hash as integers:
//!
//! * tuple selection — `H(ti.ident, k1) mod η = 0` (Eq. 5),
//! * permutation index — `H(ti.ident, k2) mod |S|`,
//! * mark-bit index — `H(ti.ident, k2) mod |wmd|`.
//!
//! [`KeyedPrf`] wraps HMAC over the chosen hash and exposes exactly those
//! operations, taking care of the bytes→integer reduction in one place so the
//! distribution assumptions of the paper (§6: "the use of hash function in the
//! suitability selection step renders a uniform culling") hold everywhere.

use crate::hmac::HmacKey;
use crate::HashAlgorithm;

/// Which keyed-hash construction backs the PRF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PrfAlgorithm {
    /// HMAC over the hash algorithm named by the paper (MD5/SHA-1) or SHA-256.
    Hmac(HashAlgorithm),
}

impl Default for PrfAlgorithm {
    fn default() -> Self {
        PrfAlgorithm::Hmac(HashAlgorithm::Sha256)
    }
}

/// A keyed PRF mapping byte strings to uniformly distributed `u64` values.
///
/// The HMAC ipad/opad key schedule is run once at construction and cached
/// ([`HmacKey`]), so per-message derivations cost two midstate clones rather
/// than a fresh key schedule — the difference dominates the watermarking hot
/// loops, where messages are short tuple identifiers.
#[derive(Debug, Clone)]
pub struct KeyedPrf {
    algorithm: PrfAlgorithm,
    hmac: HmacKey,
}

impl KeyedPrf {
    /// Create a PRF with the default algorithm (HMAC-SHA-256).
    pub fn new(key: impl AsRef<[u8]>) -> Self {
        Self::with_algorithm(key, PrfAlgorithm::default())
    }

    /// Create a PRF with an explicit algorithm.
    pub fn with_algorithm(key: impl AsRef<[u8]>, algorithm: PrfAlgorithm) -> Self {
        let hmac = match algorithm {
            PrfAlgorithm::Hmac(h) => HmacKey::new(h, key.as_ref()),
        };
        KeyedPrf { algorithm, hmac }
    }

    /// The algorithm backing this PRF.
    pub fn algorithm(&self) -> PrfAlgorithm {
        self.algorithm
    }

    /// The full keyed digest of `data`.
    pub fn digest(&self, data: &[u8]) -> Vec<u8> {
        self.hmac.digest(data)
    }

    /// The full keyed digest of the concatenation of `parts`, streamed so the
    /// caller never materializes the concatenated message. Byte-identical to
    /// `digest` of the concatenation.
    pub fn digest_parts(&self, parts: &[&[u8]]) -> Vec<u8> {
        self.hmac.digest_parts(parts)
    }

    /// Map `data` to a `u64` by taking the first eight bytes of the keyed
    /// digest (big-endian). All digests produced by this crate are at least
    /// 16 bytes, so this never truncates below eight bytes.
    pub fn value(&self, data: &[u8]) -> u64 {
        let digest = self.digest(data);
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&digest[..8]);
        u64::from_be_bytes(bytes)
    }

    /// Map `data` to a `u128` from the first sixteen bytes of the keyed
    /// digest (big-endian). This is the wide value backing the modular
    /// reductions below.
    pub fn value_wide(&self, data: &[u8]) -> u128 {
        let digest = self.digest(data);
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(&digest[..16]);
        u128::from_be_bytes(bytes)
    }

    /// `H(data, key) mod modulus`. Returns 0 when `modulus` is 0 (callers
    /// treat a zero modulus as "select everything").
    ///
    /// The reduction is performed on 128 digest bits rather than 64, so for
    /// any `u64` modulus `m` the residual bias is at most `m / 2^128` —
    /// negligible even for moduli that are not powers of two or exceed
    /// `u32::MAX` (a plain 64-bit truncate-then-mod would bias low residues
    /// by up to `m / 2^64`).
    pub fn value_mod(&self, data: &[u8], modulus: u64) -> u64 {
        if modulus == 0 {
            return 0;
        }
        (self.value_wide(data) % u128::from(modulus)) as u64
    }

    /// The tuple-selection predicate of Eq. 5: `H(data, key) mod eta == 0`.
    /// `eta == 0` or `eta == 1` selects every tuple.
    pub fn selects(&self, data: &[u8], eta: u64) -> bool {
        if eta <= 1 {
            return true;
        }
        self.value_mod(data, eta) == 0
    }

    /// The domain-separated message for the labeled variants: the label, a
    /// unit separator (which never appears in labels), then the data.
    fn labeled_message(label: &str, data: &[u8]) -> Vec<u8> {
        let mut msg = Vec::with_capacity(label.len() + 1 + data.len());
        msg.extend_from_slice(label.as_bytes());
        msg.push(0x1f);
        msg.extend_from_slice(data);
        msg
    }

    /// A domain-separated variant: prefixes the message with a label so the
    /// same key can safely drive independent decisions (e.g. permutation index
    /// vs mark-bit index) without correlation.
    pub fn labeled_value(&self, label: &str, data: &[u8]) -> u64 {
        self.value(&Self::labeled_message(label, data))
    }

    /// Labeled variant of [`KeyedPrf::value_mod`]: the same 128-bit wide
    /// reduction, applied to the domain-separated digest.
    pub fn labeled_value_mod(&self, label: &str, data: &[u8], modulus: u64) -> u64 {
        if modulus == 0 {
            return 0;
        }
        (self.value_wide(&Self::labeled_message(label, data)) % u128::from(modulus)) as u64
    }

    /// The full keyed digest of the domain-separated message
    /// `label ++ 0x1f ++ data`, streamed through the cached HMAC midstate.
    /// Byte-identical to `digest` of the labeled message. This is the
    /// derivation primitive behind per-recipient fingerprints: the owner key
    /// plus a recipient identity as the label yields an independent digest
    /// without storing any new key material.
    pub fn labeled_digest(&self, label: &str, data: &[u8]) -> Vec<u8> {
        self.hmac.digest_parts(&[label.as_bytes(), &[0x1f], data])
    }

    /// The domain-separation prefix for `label`: the label bytes plus the
    /// unit separator. Hoist this out of a hot loop and pass it to
    /// [`KeyedPrf::prefixed_value_wide`] to avoid re-formatting the label and
    /// concatenating the message per call.
    pub fn label_prefix(label: &str) -> Vec<u8> {
        let mut prefix = Vec::with_capacity(label.len() + 1);
        prefix.extend_from_slice(label.as_bytes());
        prefix.push(0x1f);
        prefix
    }

    /// The wide (128-bit) value of the domain-separated message, given a
    /// prefix precomputed by [`KeyedPrf::label_prefix`]. Equal to
    /// `value_wide(label ++ 0x1f ++ data)` — the parts are streamed through
    /// the cached HMAC midstate instead of concatenated.
    pub fn prefixed_value_wide(&self, prefix: &[u8], data: &[u8]) -> u128 {
        let digest = self.digest_parts(&[prefix, data]);
        let mut bytes = [0u8; 16];
        bytes.copy_from_slice(&digest[..16]);
        u128::from_be_bytes(bytes)
    }

    /// Reduce a wide value obtained from [`KeyedPrf::value_wide`] or
    /// [`KeyedPrf::prefixed_value_wide`] modulo `modulus`, with the same
    /// zero-modulus convention as [`KeyedPrf::value_mod`]. Splitting the
    /// digest from the reduction lets batch kernels evaluate one HMAC per
    /// (identity, column) and reuse the wide value across every per-level
    /// modulus: `reduce_wide(value_wide(m), n) == value_mod(m, n)` exactly.
    pub fn reduce_wide(wide: u128, modulus: u64) -> u64 {
        if modulus == 0 {
            return 0;
        }
        (wide % u128::from(modulus)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let prf = KeyedPrf::new(b"k1");
        assert_eq!(prf.value(b"tuple-17"), prf.value(b"tuple-17"));
    }

    #[test]
    fn key_separation() {
        let p1 = KeyedPrf::new(b"k1");
        let p2 = KeyedPrf::new(b"k2");
        assert_ne!(p1.value(b"tuple-17"), p2.value(b"tuple-17"));
    }

    #[test]
    fn algorithm_separation() {
        let a = KeyedPrf::with_algorithm(b"k", PrfAlgorithm::Hmac(HashAlgorithm::Md5));
        let b = KeyedPrf::with_algorithm(b"k", PrfAlgorithm::Hmac(HashAlgorithm::Sha1));
        let c = KeyedPrf::with_algorithm(b"k", PrfAlgorithm::Hmac(HashAlgorithm::Sha256));
        let vals = [a.value(b"x"), b.value(b"x"), c.value(b"x")];
        assert_ne!(vals[0], vals[1]);
        assert_ne!(vals[1], vals[2]);
        assert_ne!(vals[0], vals[2]);
    }

    #[test]
    fn value_mod_bounds() {
        let prf = KeyedPrf::new(b"k");
        for i in 0..100u32 {
            let v = prf.value_mod(&i.to_be_bytes(), 7);
            assert!(v < 7);
        }
    }

    #[test]
    fn zero_modulus_is_total_selection() {
        let prf = KeyedPrf::new(b"k");
        assert_eq!(prf.value_mod(b"x", 0), 0);
        assert!(prf.selects(b"x", 0));
        assert!(prf.selects(b"x", 1));
    }

    #[test]
    fn selection_rate_roughly_one_over_eta() {
        // With eta = 10 roughly 10% of tuples should be selected. Allow a
        // generous tolerance; this is a sanity check on uniformity, which the
        // paper's seamlessness argument (§6) relies on.
        let prf = KeyedPrf::new(b"watermark-key");
        let eta = 10u64;
        let n = 20_000u32;
        let selected = (0..n).filter(|i| prf.selects(format!("ident-{i}").as_bytes(), eta)).count();
        let expected = (n as f64) / eta as f64;
        let tolerance = expected * 0.25;
        assert!(
            ((selected as f64) - expected).abs() < tolerance,
            "selected {selected}, expected ~{expected}"
        );
    }

    #[test]
    fn labels_decorrelate() {
        let prf = KeyedPrf::new(b"k2");
        assert_ne!(prf.labeled_value("perm", b"tuple"), prf.labeled_value("bit", b"tuple"));
    }

    #[test]
    fn labeled_digest_matches_labeled_message_digest() {
        let prf = KeyedPrf::new(b"owner-key");
        let naive = {
            let mut msg = b"fingerprint".to_vec();
            msg.push(0x1f);
            msg.extend_from_slice(b"clinic-a");
            prf.digest(&msg)
        };
        assert_eq!(prf.labeled_digest("fingerprint", b"clinic-a"), naive);
        // Label and data boundaries must not be confusable.
        assert_ne!(
            prf.labeled_digest("fingerprint", b"clinic-a"),
            prf.labeled_digest("fingerprint:clinic", b"-a")
        );
    }

    #[test]
    fn labeled_value_mod_respects_modulus() {
        let prf = KeyedPrf::new(b"k2");
        for m in 1..20u64 {
            assert!(prf.labeled_value_mod("perm", b"t", m) < m);
        }
        assert_eq!(prf.labeled_value_mod("perm", b"t", 0), 0);
    }

    #[test]
    fn wide_reduction_agrees_across_entry_points() {
        // `value_mod` and `labeled_value_mod` must reduce the same wide value
        // the label-less / labeled digests produce.
        let prf = KeyedPrf::new(b"k");
        for m in [1u64, 2, 3, 7, 10, 1000, u64::from(u32::MAX) + 17, u64::MAX] {
            assert_eq!(prf.value_mod(b"t", m), (prf.value_wide(b"t") % u128::from(m)) as u64);
            let msg = {
                let mut v = b"perm".to_vec();
                v.push(0x1f);
                v.extend_from_slice(b"t");
                v
            };
            assert_eq!(
                prf.labeled_value_mod("perm", b"t", m),
                (prf.value_wide(&msg) % u128::from(m)) as u64
            );
        }
    }

    #[test]
    fn prefixed_wide_value_matches_labeled_path() {
        // The batch kernels derive one wide value per (ident, column) via the
        // precomputed label prefix and reduce it per level; every reduction
        // must equal the per-call labeled_value_mod it replaces.
        for algorithm in [
            PrfAlgorithm::Hmac(HashAlgorithm::Md5),
            PrfAlgorithm::Hmac(HashAlgorithm::Sha1),
            PrfAlgorithm::Hmac(HashAlgorithm::Sha256),
        ] {
            let prf = KeyedPrf::with_algorithm(b"k2", algorithm);
            let prefix = KeyedPrf::label_prefix("perm:diagnosis");
            for i in 0..16u32 {
                let ident = i.to_be_bytes();
                let wide = prf.prefixed_value_wide(&prefix, &ident);
                for m in [0u64, 1, 2, 3, 7, 10, 255, u64::MAX] {
                    assert_eq!(
                        KeyedPrf::reduce_wide(wide, m),
                        prf.labeled_value_mod("perm:diagnosis", &ident, m)
                    );
                }
            }
        }
    }

    #[test]
    fn digest_matches_naive_hmac() {
        // KeyedPrf now caches the HMAC key schedule; its digests must stay
        // byte-identical to the from-scratch hmac_* functions.
        use crate::hmac::{hmac_md5, hmac_sha1, hmac_sha256};
        for key in [&b"k"[..], &[0xaa; 131][..]] {
            let msg = b"tuple-ident";
            let md5 = KeyedPrf::with_algorithm(key, PrfAlgorithm::Hmac(HashAlgorithm::Md5));
            assert_eq!(md5.digest(msg), hmac_md5(key, msg).to_vec());
            let sha1 = KeyedPrf::with_algorithm(key, PrfAlgorithm::Hmac(HashAlgorithm::Sha1));
            assert_eq!(sha1.digest(msg), hmac_sha1(key, msg).to_vec());
            let sha256 = KeyedPrf::with_algorithm(key, PrfAlgorithm::Hmac(HashAlgorithm::Sha256));
            assert_eq!(sha256.digest(msg), hmac_sha256(key, msg).to_vec());
        }
    }

    #[test]
    fn chi_square_uniformity_over_small_moduli() {
        // Chi-square goodness-of-fit of `labeled_value_mod` over moduli that
        // are not powers of two (the cases a truncating reduction would bias).
        // With m-1 degrees of freedom the 99.9% critical values are well below
        // the thresholds used here, so a systematic bias fails loudly while
        // honest randomness passes with wide margin.
        let prf = KeyedPrf::new(b"chi-square-key");
        for &m in &[3u64, 5, 6, 7, 10, 12] {
            let n = 12_000u32;
            let mut counts = vec![0u64; m as usize];
            for i in 0..n {
                counts[prf.labeled_value_mod("bucket", &i.to_be_bytes(), m) as usize] += 1;
            }
            let expected = f64::from(n) / m as f64;
            let chi2: f64 = counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
            // 99.9% critical value of chi2 with 11 dof is 31.3; use a roomy 40.
            assert!(chi2 < 40.0, "modulus {m}: chi-square {chi2:.2}, counts {counts:?}");
        }
    }

    #[test]
    fn large_moduli_are_not_truncated() {
        // Moduli above u32::MAX exercise the full wide reduction; the result
        // must stay within range and differ across moduli (a truncation to 32
        // bits would make the mod a no-op for these inputs).
        let prf = KeyedPrf::new(b"k");
        let big = 1u64 << 33;
        let mut above_u32 = 0usize;
        for i in 0..256u32 {
            let v = prf.value_mod(&i.to_be_bytes(), big);
            assert!(v < big);
            if v > u64::from(u32::MAX) {
                above_u32 += 1;
            }
        }
        // Bit 32 of the residue is a fair coin; 256 flips land far from 0.
        assert!(
            (64..192).contains(&above_u32),
            "expected ≈128 of 256 residues above u32::MAX, got {above_u32}"
        );
    }

    #[test]
    fn uniformity_across_buckets() {
        // Chi-square-ish sanity check: 8 buckets over 8000 samples should each
        // hold roughly 1000 items.
        let prf = KeyedPrf::new(b"bucket-key");
        let mut counts = [0usize; 8];
        for i in 0..8000u32 {
            counts[prf.value_mod(&i.to_le_bytes(), 8) as usize] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "bucket {b} has {c} items");
        }
    }
}

//! Property-based tests of the cryptographic primitives.

use medshield_crypto::{aes::Aes128, hex, hmac, md5, sha1, sha256, HashAlgorithm, KeyedPrf};
use proptest::prelude::*;

proptest! {
    /// Hex encoding round-trips for arbitrary byte strings.
    #[test]
    fn hex_roundtrip(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let encoded = hex::encode(&data);
        prop_assert_eq!(hex::decode(&encoded).unwrap(), data);
    }

    /// AES-128 block encryption is invertible for every key/block pair.
    #[test]
    fn aes_block_roundtrip(key in prop::collection::vec(any::<u8>(), 16..=16),
                           block in prop::collection::vec(any::<u8>(), 16..=16)) {
        let cipher = Aes128::new(&key).unwrap();
        let mut b = [0u8; 16];
        b.copy_from_slice(&block);
        let original = b;
        cipher.encrypt_block(&mut b);
        // Encryption is (overwhelmingly) not the identity.
        cipher.decrypt_block(&mut b);
        prop_assert_eq!(b, original);
    }

    /// The deterministic value encryption used for identifiers round-trips
    /// and never produces the same ciphertext for different plaintexts.
    #[test]
    fn aes_value_roundtrip(secret in prop::collection::vec(any::<u8>(), 1..32),
                           a in prop::collection::vec(any::<u8>(), 0..64),
                           b in prop::collection::vec(any::<u8>(), 0..64)) {
        let cipher = Aes128::from_secret(&secret);
        let ca = cipher.encrypt_value(&a);
        prop_assert_eq!(cipher.decrypt_value(&ca).unwrap(), a.clone());
        let cb = cipher.encrypt_value(&b);
        if a != b {
            prop_assert_ne!(ca, cb);
        } else {
            prop_assert_eq!(ca, cb);
        }
    }

    /// CTR mode is an involution for arbitrary lengths.
    #[test]
    fn aes_ctr_involution(secret in prop::collection::vec(any::<u8>(), 1..32),
                          nonce in prop::collection::vec(any::<u8>(), 16..=16),
                          data in prop::collection::vec(any::<u8>(), 0..200)) {
        let cipher = Aes128::from_secret(&secret);
        let mut n = [0u8; 16];
        n.copy_from_slice(&nonce);
        let ct = cipher.ctr_crypt(&n, &data);
        prop_assert_eq!(cipher.ctr_crypt(&n, &ct), data);
    }

    /// Streaming hashing equals one-shot hashing regardless of chunking.
    #[test]
    fn streaming_equals_one_shot(data in prop::collection::vec(any::<u8>(), 0..500),
                                 chunk in 1usize..97) {
        let mut m = md5::Md5::new();
        let mut s1 = sha1::Sha1::new();
        let mut s256 = sha256::Sha256::new();
        for c in data.chunks(chunk) {
            m.update(c);
            s1.update(c);
            s256.update(c);
        }
        prop_assert_eq!(m.finalize(), md5::md5(&data));
        prop_assert_eq!(s1.finalize(), sha1::sha1(&data));
        prop_assert_eq!(s256.finalize(), sha256::sha256(&data));
    }

    /// HMAC differs between keys and between messages (no trivial collisions
    /// on random inputs).
    #[test]
    fn hmac_separates_keys_and_messages(k1 in prop::collection::vec(any::<u8>(), 1..40),
                                        k2 in prop::collection::vec(any::<u8>(), 1..40),
                                        msg in prop::collection::vec(any::<u8>(), 0..100)) {
        if k1 != k2 {
            prop_assert_ne!(hmac::hmac_sha256(&k1, &msg), hmac::hmac_sha256(&k2, &msg));
        }
    }

    /// The keyed PRF stays within the requested modulus and is deterministic.
    #[test]
    fn prf_is_bounded_and_deterministic(key in prop::collection::vec(any::<u8>(), 1..32),
                                        data in prop::collection::vec(any::<u8>(), 0..64),
                                        modulus in 1u64..10_000) {
        let prf = KeyedPrf::new(&key);
        let v = prf.value_mod(&data, modulus);
        prop_assert!(v < modulus);
        prop_assert_eq!(v, prf.value_mod(&data, modulus));
    }

    /// All three hash algorithms produce digests of their declared length.
    #[test]
    fn digest_lengths(data in prop::collection::vec(any::<u8>(), 0..128)) {
        for alg in [HashAlgorithm::Md5, HashAlgorithm::Sha1, HashAlgorithm::Sha256] {
            prop_assert_eq!(alg.digest(&data).len(), alg.digest_len());
            prop_assert_eq!(alg.keyed_digest(b"k", &data).len(), alg.digest_len());
        }
    }
}

//! Subset Deletion (§7.2, Fig. 12c): the attacker deletes tuples hoping to
//! remove the watermarked ones. The paper's experiment issues SQL range
//! deletes over the identifier column
//! (`DELETE FROM R WHERE SSN > lval AND SSN < uval`); a purely random
//! deletion variant is provided as well.

use crate::Attack;
use medshield_relation::{Predicate, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How the victims are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeletionStyle {
    /// Uniformly random tuples.
    Random,
    /// Contiguous ranges of the identifier column, mimicking the paper's SQL
    /// statement.
    IdentifierRanges,
}

/// The Subset Deletion attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetDeletion {
    /// Fraction of the tuples to delete, in `[0, 1]`.
    pub fraction: f64,
    /// PRNG seed for reproducible experiments.
    pub seed: u64,
    /// Victim-selection style.
    pub style: DeletionStyle,
    /// Identifier column used by [`DeletionStyle::IdentifierRanges`].
    pub identifier_column: String,
}

impl SubsetDeletion {
    /// Randomly delete `fraction` of the tuples.
    pub fn random(fraction: f64, seed: u64) -> Self {
        SubsetDeletion {
            fraction: fraction.clamp(0.0, 1.0),
            seed,
            style: DeletionStyle::Random,
            identifier_column: "ssn".to_string(),
        }
    }

    /// Delete `fraction` of the tuples through range deletes over
    /// `identifier_column`.
    pub fn ranges(fraction: f64, seed: u64, identifier_column: impl Into<String>) -> Self {
        SubsetDeletion {
            fraction: fraction.clamp(0.0, 1.0),
            seed,
            style: DeletionStyle::IdentifierRanges,
            identifier_column: identifier_column.into(),
        }
    }
}

impl Attack for SubsetDeletion {
    fn apply(&self, table: &Table) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut attacked = table.snapshot();
        let victims = ((table.len() as f64) * self.fraction).round() as usize;
        if victims == 0 {
            return attacked;
        }
        match self.style {
            DeletionStyle::Random => {
                let mut ids = attacked.ids();
                ids.shuffle(&mut rng);
                let chosen: Vec<_> = ids.into_iter().take(victims).collect();
                attacked.delete_ids(&chosen);
            }
            DeletionStyle::IdentifierRanges => {
                // Sort the identifier values and delete contiguous runs until
                // the requested number of tuples is gone.
                let mut idents: Vec<_> = match attacked.column_values(&self.identifier_column) {
                    Ok(vs) => vs.into_iter().collect(),
                    Err(_) => return attacked,
                };
                idents.sort();
                idents.dedup();
                let mut remaining = victims;
                let mut guard = 0;
                while remaining > 0 && !attacked.is_empty() && guard < 1000 {
                    guard += 1;
                    if idents.len() < 2 {
                        break;
                    }
                    let run = rng.gen_range(1..=remaining.max(1)).min(idents.len() - 1);
                    let start = rng.gen_range(0..idents.len().saturating_sub(run));
                    let lo = idents[start].clone();
                    let hi = idents[(start + run).min(idents.len() - 1)].clone();
                    let pred = Predicate::between_exclusive(&self.identifier_column, lo, hi);
                    let deleted = attacked.delete_where(&pred).unwrap_or(0);
                    remaining = remaining.saturating_sub(deleted);
                }
            }
        }
        attacked
    }

    fn describe(&self) -> String {
        let style = match self.style {
            DeletionStyle::Random => "random",
            DeletionStyle::IdentifierRanges => "identifier-range",
        };
        format!("subset deletion ({style}) of {:.0}% of the tuples", self.fraction * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_datagen::{DatasetConfig, MedicalDataset};

    fn table() -> Table {
        MedicalDataset::generate(&DatasetConfig::small(500)).table
    }

    #[test]
    fn random_deletion_removes_the_requested_fraction() {
        let t = table();
        let attacked = SubsetDeletion::random(0.3, 11).apply(&t);
        assert_eq!(attacked.len(), t.len() - (t.len() as f64 * 0.3).round() as usize);
    }

    #[test]
    fn zero_fraction_deletes_nothing() {
        let t = table();
        assert_eq!(SubsetDeletion::random(0.0, 1).apply(&t).len(), t.len());
        assert_eq!(SubsetDeletion::ranges(0.0, 1, "ssn").apply(&t).len(), t.len());
    }

    #[test]
    fn full_fraction_deletes_everything_randomly() {
        let t = table();
        assert!(SubsetDeletion::random(1.0, 1).apply(&t).is_empty());
    }

    #[test]
    fn range_deletion_removes_roughly_the_requested_fraction() {
        let t = table();
        let attacked = SubsetDeletion::ranges(0.4, 17, "ssn").apply(&t);
        let removed = t.len() - attacked.len();
        let target = (t.len() as f64 * 0.4).round() as usize;
        assert!(removed > 0);
        // Range deletes are granular, so allow slack around the target.
        assert!(removed <= target + target / 2 + 5, "removed {removed}, target {target}");
    }

    #[test]
    fn range_deletion_on_missing_column_is_a_no_op() {
        let t = table();
        let attacked = SubsetDeletion::ranges(0.5, 3, "not-a-column").apply(&t);
        assert_eq!(attacked.len(), t.len());
    }

    #[test]
    fn surviving_tuples_are_unmodified() {
        let t = table();
        let attacked = SubsetDeletion::random(0.5, 23).apply(&t);
        for tuple in attacked.iter() {
            let original = t.get(tuple.id).expect("survivor must come from the original");
            assert_eq!(original.values, tuple.values);
        }
    }

    #[test]
    fn describe_mentions_style_and_fraction() {
        assert!(SubsetDeletion::random(0.2, 0).describe().contains("random"));
        assert!(SubsetDeletion::ranges(0.2, 0, "ssn").describe().contains("identifier-range"));
    }
}

//! # medshield-attacks
//!
//! Attack models against the protected (binned + watermarked) table, used by
//! the robustness experiments of the paper (§7.2) and by the security
//! analyses of §5.2 and §5.4. All attackers are assumed **not** to know the
//! secret watermarking key; they manipulate the data hoping to destroy the
//! embedded mark while keeping the data useful.
//!
//! * [`alteration`] — *Subset Alteration* (Fig. 12a): pick a random fraction
//!   of the tuples and arbitrarily modify their quasi-identifying values.
//! * [`addition`] — *Subset Addition* (Fig. 12b): append new bogus tuples,
//!   misleading the keyed selection into reading unwatermarked rows.
//! * [`deletion`] — *Subset Deletion* (Fig. 12c): delete tuples, either at
//!   random or through SQL-style range deletes over the identifier, exactly
//!   as the paper's `DELETE FROM R WHERE SSN > lval AND SSN < uval`.
//! * [`generalization`] — the *generalization attack* of §5.2, specific to
//!   binned data: re-generalize every value one or more levels up the domain
//!   hierarchy tree. It defeats single-level watermarking but not the
//!   hierarchical scheme.
//! * [`collusion`] — recipients of the same release majority-mix their
//!   per-recipient fingerprinted copies cell-wise, trying to erase every
//!   individual fingerprint; traitor tracing must still name a colluder.
//! * [`mixed`] — compositions of the above for stress testing.
//!
//! ```
//! use medshield_attacks::{Attack, SubsetDeletion};
//! use medshield_datagen::{DatasetConfig, MedicalDataset};
//!
//! let table = MedicalDataset::generate(&DatasetConfig::small(100)).table;
//! let attacked = SubsetDeletion::random(0.2, 7).apply(&table);
//! assert_eq!(attacked.len(), 80);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod addition;
pub mod alteration;
pub mod collusion;
pub mod deletion;
pub mod generalization;
pub mod mixed;

pub use addition::SubsetAddition;
pub use alteration::SubsetAlteration;
pub use collusion::CollusionAttack;
pub use deletion::SubsetDeletion;
pub use generalization::GeneralizationAttack;
pub use mixed::MixedAttack;

use medshield_relation::Table;

/// Common interface of all attack models: consume a protected table and
/// return the attacked version. Attacks never see the watermarking key.
pub trait Attack {
    /// Apply the attack to `table`, returning the attacked table.
    fn apply(&self, table: &Table) -> Table;

    /// A short human-readable description for reports.
    fn describe(&self) -> String;
}

//! Subset Alteration (§7.2, Fig. 12a): the attacker chooses a random subset
//! of the tuples and modifies their quasi-identifying values arbitrarily,
//! without touching the rest of the data.

use crate::Attack;
use medshield_relation::{Table, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The Subset Alteration attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetAlteration {
    /// Fraction of the tuples to alter, in `[0, 1]`.
    pub fraction: f64,
    /// PRNG seed (the attack itself is randomized; the seed makes experiments
    /// reproducible).
    pub seed: u64,
    /// Columns to alter; `None` means every quasi-identifying column.
    pub columns: Option<Vec<String>>,
}

impl SubsetAlteration {
    /// Alter `fraction` of the tuples across all quasi-identifying columns.
    pub fn new(fraction: f64, seed: u64) -> Self {
        SubsetAlteration { fraction: fraction.clamp(0.0, 1.0), seed, columns: None }
    }
}

impl Attack for SubsetAlteration {
    fn apply(&self, table: &Table) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut attacked = table.snapshot();
        let columns: Vec<String> = match &self.columns {
            Some(c) => c.clone(),
            None => table.schema().quasi_names().into_iter().map(String::from).collect(),
        };
        // Pool of replacement values per column: whatever already occurs in
        // the column (the attacker wants the data to stay plausible).
        let pools: Vec<Vec<Value>> = columns
            .iter()
            .map(|c| {
                let mut distinct: Vec<Value> = attacked
                    .column_values(c)
                    .map(|vs| vs.into_iter().collect::<std::collections::BTreeSet<_>>())
                    .unwrap_or_default()
                    .into_iter()
                    .collect();
                distinct.sort();
                distinct
            })
            .collect();

        let mut ids = attacked.ids();
        ids.shuffle(&mut rng);
        let victims = ((ids.len() as f64) * self.fraction).round() as usize;
        for id in ids.into_iter().take(victims) {
            for (col, pool) in columns.iter().zip(pools.iter()) {
                if pool.is_empty() {
                    continue;
                }
                let replacement = pool[rng.gen_range(0..pool.len())].clone();
                attacked
                    .set_value(id, col, replacement)
                    .expect("column and id exist in the snapshot");
            }
        }
        attacked
    }

    fn describe(&self) -> String {
        format!("subset alteration of {:.0}% of the tuples", self.fraction * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_datagen::{DatasetConfig, MedicalDataset};

    fn table() -> Table {
        MedicalDataset::generate(&DatasetConfig::small(400)).table
    }

    #[test]
    fn zero_fraction_changes_nothing() {
        let t = table();
        let attacked = SubsetAlteration::new(0.0, 1).apply(&t);
        for (a, b) in t.iter().zip(attacked.iter()) {
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn alteration_touches_roughly_the_requested_fraction() {
        let t = table();
        let attacked = SubsetAlteration::new(0.5, 7).apply(&t);
        assert_eq!(attacked.len(), t.len());
        let changed = t.iter().zip(attacked.iter()).filter(|(a, b)| a.values != b.values).count();
        // Some victims may be re-assigned their original values by chance, so
        // the changed count is at most the victim count and close to it.
        assert!(changed > t.len() / 3, "changed {changed}");
        assert!(changed <= t.len() / 2 + 1);
    }

    #[test]
    fn identifying_column_is_never_touched() {
        let t = table();
        let attacked = SubsetAlteration::new(1.0, 3).apply(&t);
        for (a, b) in t.iter().zip(attacked.iter()) {
            assert_eq!(a.values[0], b.values[0], "ssn must not be altered");
        }
    }

    #[test]
    fn restricting_columns_limits_the_damage() {
        let t = table();
        let mut attack = SubsetAlteration::new(1.0, 3);
        attack.columns = Some(vec!["doctor".to_string()]);
        let attacked = attack.apply(&t);
        let doctor_idx = t.schema().index_of("doctor").unwrap();
        for (a, b) in t.iter().zip(attacked.iter()) {
            for (i, (va, vb)) in a.values.iter().zip(b.values.iter()).enumerate() {
                if i != doctor_idx {
                    assert_eq!(va, vb);
                }
            }
        }
    }

    #[test]
    fn fraction_is_clamped_and_description_is_readable() {
        let a = SubsetAlteration::new(7.0, 1);
        assert_eq!(a.fraction, 1.0);
        assert!(a.describe().contains("100%"));
    }

    #[test]
    fn same_seed_is_deterministic() {
        let t = table();
        let a1 = SubsetAlteration::new(0.3, 99).apply(&t);
        let a2 = SubsetAlteration::new(0.3, 99).apply(&t);
        for (x, y) in a1.iter().zip(a2.iter()) {
            assert_eq!(x.values, y.values);
        }
    }
}

//! Collusion attack against per-recipient fingerprints: 2–N recipients of
//! the *same* release pool their copies and mix them cell-wise, hoping the
//! disagreements (which are exactly the fingerprint bits that differ between
//! them) cancel out and no single colluder's mark survives.
//!
//! The mix is a majority vote per (tuple, quasi column): each colluder
//! contributes their copy's value, the most common value wins, and ties are
//! broken by a seeded random draw among the tied values. This subsumes the
//! classic "averaging" attack for categorical data — a cell where all
//! colluders agree (a fingerprint position they share, or an unselected
//! tuple) passes through unchanged, which is precisely why traitor tracing
//! still works: the surviving agreed positions correlate with *every*
//! colluder's fingerprint and with no innocent recipient's.

use crate::Attack;
use medshield_relation::{Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The collusion attack. The table passed to [`Attack::apply`] is the
/// ring-leader's own fingerprinted copy; `accomplices` are the other
/// colluders' copies of the same release.
#[derive(Debug, Clone)]
pub struct CollusionAttack {
    /// The other colluders' copies of the same release, row-aligned with the
    /// attacked table. Copies whose row count disagrees are ignored (they
    /// cannot be cell-aligned and would only corrupt the mix).
    pub accomplices: Vec<Table>,
    /// PRNG seed for tie-breaking when no value wins an outright majority.
    pub seed: u64,
}

impl CollusionAttack {
    /// A collusion of the attacked copy plus `accomplices`.
    pub fn new(accomplices: Vec<Table>, seed: u64) -> Self {
        CollusionAttack { accomplices, seed }
    }

    /// Number of colluding recipients (the ring-leader plus accomplices).
    pub fn colluders(&self) -> usize {
        self.accomplices.len() + 1
    }
}

impl Attack for CollusionAttack {
    fn apply(&self, table: &Table) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut attacked = table.snapshot();
        let columns: Vec<String> =
            table.schema().quasi_names().into_iter().map(String::from).collect();
        let ids = attacked.ids();
        for col in &columns {
            // The column of every aligned copy, in row order.
            let mut votes: Vec<Vec<Value>> = Vec::new();
            match table.column_values(col) {
                Ok(v) => votes.push(v),
                Err(_) => continue,
            }
            for copy in &self.accomplices {
                if let Ok(v) = copy.column_values(col) {
                    if v.len() == ids.len() {
                        votes.push(v);
                    }
                }
            }
            if votes.len() < 2 {
                continue;
            }
            for (row, id) in ids.iter().enumerate() {
                // Majority vote across the colluders' cells for this
                // position; the tally preserves first-seen order so the
                // tie-break draw is deterministic under the seed.
                let mut tally: Vec<(&Value, usize)> = Vec::new();
                for copy_column in &votes {
                    let value = &copy_column[row];
                    match tally.iter_mut().find(|(candidate, _)| *candidate == value) {
                        Some((_, count)) => *count += 1,
                        None => tally.push((value, 1)),
                    }
                }
                let best = tally.iter().map(|(_, count)| *count).max().unwrap_or(0);
                let winners: Vec<&Value> = tally
                    .iter()
                    .filter(|(_, count)| *count == best)
                    .map(|(value, _)| *value)
                    .collect();
                let choice = winners[rng.gen_range(0..winners.len())].clone();
                attacked.set_value(*id, col, choice).expect("column and id exist in the snapshot");
            }
        }
        attacked
    }

    fn describe(&self) -> String {
        format!("collusion of {} recipients majority-mixing their copies", self.colluders())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_datagen::{DatasetConfig, MedicalDataset};

    fn table(seed_rows: usize) -> Table {
        MedicalDataset::generate(&DatasetConfig::small(seed_rows)).table
    }

    /// A copy of `t` with the doctor column rotated by `shift` rows — a stand-in
    /// for a differently-fingerprinted copy of the same release.
    fn variant(t: &Table, shift: usize) -> Table {
        let mut v = t.snapshot();
        let ids = v.ids();
        let doctors = t.column_values("doctor").expect("doctor column exists");
        for (row, id) in ids.iter().enumerate() {
            let replacement = doctors[(row + shift) % doctors.len()].clone();
            v.set_value(*id, "doctor", replacement).expect("id exists");
        }
        v
    }

    #[test]
    fn colluding_with_identical_copies_changes_nothing() {
        let t = table(200);
        let attacked = CollusionAttack::new(vec![t.snapshot(), t.snapshot()], 7).apply(&t);
        for (a, b) in t.iter().zip(attacked.iter()) {
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn majority_wins_each_cell() {
        let t = table(200);
        let outlier = variant(&t, 1);
        // Two copies agree with `t`, one disagrees: the majority value (the
        // original) must win every cell.
        let attacked = CollusionAttack::new(vec![t.snapshot(), outlier], 7).apply(&t);
        for (a, b) in t.iter().zip(attacked.iter()) {
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn every_mixed_cell_comes_from_a_colluder() {
        let t = table(200);
        let other = variant(&t, 1);
        let attacked = CollusionAttack::new(vec![other.snapshot()], 3).apply(&t);
        let doctor_idx = t.schema().index_of("doctor").expect("doctor column exists");
        for ((a, o), m) in t.iter().zip(other.iter()).zip(attacked.iter()) {
            let mixed = &m.values[doctor_idx];
            assert!(
                mixed == &a.values[doctor_idx] || mixed == &o.values[doctor_idx],
                "mixed cell {mixed:?} not drawn from the colluders"
            );
        }
    }

    #[test]
    fn identifying_column_is_never_touched() {
        let t = table(150);
        let attacked = CollusionAttack::new(vec![variant(&t, 2)], 9).apply(&t);
        for (a, b) in t.iter().zip(attacked.iter()) {
            assert_eq!(a.values[0], b.values[0], "ssn must not be mixed");
        }
    }

    #[test]
    fn misaligned_accomplices_are_ignored() {
        let t = table(120);
        let short = table(60);
        let attacked = CollusionAttack::new(vec![short], 5).apply(&t);
        for (a, b) in t.iter().zip(attacked.iter()) {
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn same_seed_is_deterministic_and_description_counts_colluders() {
        let t = table(120);
        let attack = CollusionAttack::new(vec![variant(&t, 1), variant(&t, 2)], 11);
        assert_eq!(attack.colluders(), 3);
        assert!(attack.describe().contains("3 recipients"));
        let a1 = attack.apply(&t);
        let a2 = attack.apply(&t);
        for (x, y) in a1.iter().zip(a2.iter()) {
            assert_eq!(x.values, y.values);
        }
    }
}

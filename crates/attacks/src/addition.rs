//! Subset Addition (§7.2, Fig. 12b): the attacker appends new bogus tuples to
//! the watermarked table. No existing bit is erased, but the keyed selection
//! (Eq. 5) will falsely treat some of the new tuples as watermarked,
//! injecting noise into the majority voting.

use crate::Attack;
use medshield_relation::{Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Subset Addition attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetAddition {
    /// Number of new tuples, as a fraction of the current table size.
    pub fraction: f64,
    /// PRNG seed for reproducible experiments.
    pub seed: u64,
}

impl SubsetAddition {
    /// Add `fraction · len` bogus tuples.
    pub fn new(fraction: f64, seed: u64) -> Self {
        SubsetAddition { fraction: fraction.max(0.0), seed }
    }
}

impl Attack for SubsetAddition {
    fn apply(&self, table: &Table) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut attacked = table.snapshot();
        if table.is_empty() {
            return attacked;
        }
        let to_add = ((table.len() as f64) * self.fraction).round() as usize;

        // Pools of existing values per column keep the bogus tuples plausible
        // (they must look like real binned records or they would be trivial
        // to filter out).
        let arity = table.schema().arity();
        let mut pools: Vec<Vec<Value>> = Vec::with_capacity(arity);
        for col in table.schema().columns() {
            let mut distinct: Vec<Value> = table
                .column_values(&col.name)
                .map(|vs| vs.into_iter().collect::<std::collections::BTreeSet<_>>())
                .unwrap_or_default()
                .into_iter()
                .collect();
            distinct.sort();
            pools.push(distinct);
        }
        let ident_indices: std::collections::HashSet<usize> =
            table.schema().identifying_indices().into_iter().collect();

        for n in 0..to_add {
            let mut values = Vec::with_capacity(arity);
            for (i, pool) in pools.iter().enumerate() {
                if ident_indices.contains(&i) {
                    // Fresh bogus identifiers: hex-looking strings that do not
                    // collide with existing ones.
                    values.push(Value::text(format!("bogus-{:08x}-{n}", rng.gen::<u32>())));
                } else if pool.is_empty() {
                    values.push(Value::Null);
                } else {
                    values.push(pool[rng.gen_range(0..pool.len())].clone());
                }
            }
            attacked.insert(values).expect("bogus tuple matches the schema arity");
        }
        attacked
    }

    fn describe(&self) -> String {
        format!("subset addition of {:.0}% bogus tuples", self.fraction * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_datagen::{DatasetConfig, MedicalDataset};

    fn table() -> Table {
        MedicalDataset::generate(&DatasetConfig::small(300)).table
    }

    #[test]
    fn adds_the_requested_number_of_tuples() {
        let t = table();
        let attacked = SubsetAddition::new(0.4, 5).apply(&t);
        assert_eq!(attacked.len(), t.len() + (t.len() as f64 * 0.4).round() as usize);
        // Existing tuples are untouched.
        for (a, b) in t.iter().zip(attacked.iter()) {
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn zero_fraction_adds_nothing() {
        let t = table();
        assert_eq!(SubsetAddition::new(0.0, 1).apply(&t).len(), t.len());
    }

    #[test]
    fn bogus_identifiers_do_not_collide_with_real_ones() {
        let t = table();
        let attacked = SubsetAddition::new(0.5, 9).apply(&t);
        let originals: std::collections::HashSet<_> =
            t.column_values("ssn").unwrap().into_iter().collect();
        let added = attacked.iter().skip(t.len());
        for tuple in added {
            assert!(!originals.contains(&tuple.values[0]));
        }
    }

    #[test]
    fn bogus_quasi_values_come_from_the_existing_domain() {
        let t = table();
        let attacked = SubsetAddition::new(0.3, 2).apply(&t);
        let doctor_idx = t.schema().index_of("doctor").unwrap();
        let pool: std::collections::HashSet<_> =
            t.column_values("doctor").unwrap().into_iter().collect();
        for tuple in attacked.iter().skip(t.len()) {
            assert!(pool.contains(&tuple.values[doctor_idx]));
        }
    }

    #[test]
    fn empty_table_stays_empty() {
        let t = Table::new(medshield_relation::Schema::medical_example());
        assert!(SubsetAddition::new(1.0, 1).apply(&t).is_empty());
    }

    #[test]
    fn describe_mentions_the_fraction() {
        assert!(SubsetAddition::new(0.25, 0).describe().contains("25%"));
    }
}

//! The generalization attack (§5.2) — specific to binned data.
//!
//! The attacker further generalizes every quasi-identifying value, replacing
//! it by the value of an ancestor node a few levels up the domain hierarchy
//! tree. Because the gap between the ultimate and maximal generalization
//! nodes exists precisely so the data remain usable, this attack keeps the
//! table useful while requiring no knowledge of the watermarking key. It
//! destroys any scheme that stores its bits at a single level; the
//! hierarchical scheme survives because copies of each bit live at every
//! level above the attacked one.

use crate::Attack;
use medshield_dht::DomainHierarchyTree;
use medshield_relation::Table;
use std::collections::BTreeMap;

/// The generalization attack.
#[derive(Debug, Clone)]
pub struct GeneralizationAttack {
    /// How many levels up each value is pushed (at least 1).
    pub levels: usize,
    /// The attacker's knowledge of the domain hierarchy trees (public: the
    /// trees are part of the data dictionary, not of the secret key).
    pub trees: BTreeMap<String, DomainHierarchyTree>,
    /// Do not generalize a value above this depth (the attacker still wants
    /// usable data). `None` allows climbing all the way to the root.
    pub max_depth_floor: Option<usize>,
}

impl GeneralizationAttack {
    /// Generalize every quasi value `levels` steps up its tree.
    pub fn new(levels: usize, trees: BTreeMap<String, DomainHierarchyTree>) -> Self {
        GeneralizationAttack { levels: levels.max(1), trees, max_depth_floor: None }
    }

    /// Restrict the attack so that values are never generalized to a depth
    /// shallower than `floor` (e.g. the depth of the maximal generalization
    /// nodes, which the attacker respects to keep the data usable).
    pub fn with_depth_floor(mut self, floor: usize) -> Self {
        self.max_depth_floor = Some(floor);
        self
    }
}

impl Attack for GeneralizationAttack {
    fn apply(&self, table: &Table) -> Table {
        let mut attacked = table.snapshot();
        let columns: Vec<String> =
            table.schema().quasi_names().into_iter().map(String::from).collect();
        let ids = attacked.ids();
        for id in ids {
            for column in &columns {
                let Some(tree) = self.trees.get(column) else { continue };
                let value = attacked
                    .value(id, column)
                    .expect("id and column exist in the snapshot")
                    .clone();
                if value.is_null() {
                    continue;
                }
                let Ok(mut node) = tree.node_for_value(&value) else { continue };
                for _ in 0..self.levels {
                    let depth = tree.depth(node).unwrap_or(0);
                    if let Some(floor) = self.max_depth_floor {
                        if depth <= floor {
                            break;
                        }
                    }
                    match tree.parent(node) {
                        Ok(Some(parent)) => node = parent,
                        _ => break,
                    }
                }
                let generalized = tree.node_value(node).expect("node exists");
                attacked
                    .set_value(id, column, generalized)
                    .expect("id and column exist in the snapshot");
            }
        }
        attacked
    }

    fn describe(&self) -> String {
        format!("generalization attack ({} level(s) up)", self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_datagen::{ontology, DatasetConfig, MedicalDataset};
    use medshield_relation::Value;

    fn dataset() -> MedicalDataset {
        MedicalDataset::generate(&DatasetConfig::small(200))
    }

    #[test]
    fn values_move_up_one_level() {
        let ds = dataset();
        let attack = GeneralizationAttack::new(1, ds.trees.clone());
        let attacked = attack.apply(&ds.table);
        let tree = &ds.trees["doctor"];
        let idx = ds.table.schema().index_of("doctor").unwrap();
        for (orig, att) in ds.table.iter().zip(attacked.iter()) {
            let orig_node = tree.node_for_value(&orig.values[idx]).unwrap();
            let att_node = tree.node_for_value(&att.values[idx]).unwrap();
            assert_eq!(tree.parent(orig_node).unwrap(), Some(att_node));
        }
    }

    #[test]
    fn many_levels_saturate_at_the_root() {
        let ds = dataset();
        let attack = GeneralizationAttack::new(99, ds.trees.clone());
        let attacked = attack.apply(&ds.table);
        let tree = &ds.trees["symptom"];
        for v in attacked.column_values("symptom").unwrap() {
            let node = tree.node_for_value(&v).unwrap();
            assert_eq!(node, tree.root());
        }
    }

    #[test]
    fn depth_floor_is_respected() {
        let ds = dataset();
        let attack = GeneralizationAttack::new(99, ds.trees.clone()).with_depth_floor(1);
        let attacked = attack.apply(&ds.table);
        for column in ["doctor", "symptom", "prescription"] {
            let tree = &ds.trees[column];
            for v in attacked.column_values(column).unwrap() {
                let node = tree.node_for_value(&v).unwrap();
                assert!(tree.depth(node).unwrap() >= 1, "column {column} value {v}");
            }
        }
    }

    #[test]
    fn identifier_and_non_tree_columns_are_untouched() {
        let ds = dataset();
        let mut trees = ds.trees.clone();
        trees.remove("age");
        let attack = GeneralizationAttack::new(1, trees);
        let attacked = attack.apply(&ds.table);
        let ssn_idx = ds.table.schema().index_of("ssn").unwrap();
        let age_idx = ds.table.schema().index_of("age").unwrap();
        for (orig, att) in ds.table.iter().zip(attacked.iter()) {
            assert_eq!(orig.values[ssn_idx], att.values[ssn_idx]);
            assert_eq!(orig.values[age_idx], att.values[age_idx]);
        }
    }

    #[test]
    fn already_generalized_values_keep_climbing() {
        // Apply on a table whose values are already internal-node values.
        let role = ontology::role_tree();
        let schema = medshield_relation::Schema::new(vec![medshield_relation::ColumnDef::new(
            "role",
            medshield_relation::ColumnRole::QuasiCategorical,
        )])
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::text("Paramedic")]).unwrap();
        let mut trees = BTreeMap::new();
        trees.insert("role".to_string(), role.clone());
        let attacked = GeneralizationAttack::new(1, trees).apply(&t);
        assert_eq!(attacked.column_values("role").unwrap()[0], Value::text("Medical Staff"));
    }

    #[test]
    fn describe_mentions_levels() {
        let ds = dataset();
        assert!(GeneralizationAttack::new(2, ds.trees).describe().contains("2 level"));
    }
}

//! Compositions of the basic attacks, for stress testing the detector.

use crate::Attack;
use medshield_relation::Table;

/// A sequence of attacks applied one after another.
pub struct MixedAttack {
    attacks: Vec<Box<dyn Attack>>,
}

impl MixedAttack {
    /// An empty composition (identity).
    pub fn new() -> Self {
        MixedAttack { attacks: Vec::new() }
    }

    /// Append an attack to the sequence.
    pub fn then(mut self, attack: impl Attack + 'static) -> Self {
        self.attacks.push(Box::new(attack));
        self
    }

    /// Number of attacks in the composition.
    pub fn len(&self) -> usize {
        self.attacks.len()
    }

    /// True if the composition is empty.
    pub fn is_empty(&self) -> bool {
        self.attacks.is_empty()
    }
}

impl Default for MixedAttack {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for MixedAttack {
    fn apply(&self, table: &Table) -> Table {
        let mut current = table.snapshot();
        for attack in &self.attacks {
            current = attack.apply(&current);
        }
        current
    }

    fn describe(&self) -> String {
        if self.attacks.is_empty() {
            return "no attack".to_string();
        }
        self.attacks.iter().map(|a| a.describe()).collect::<Vec<_>>().join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SubsetAddition, SubsetAlteration, SubsetDeletion};
    use medshield_datagen::{DatasetConfig, MedicalDataset};

    fn table() -> Table {
        MedicalDataset::generate(&DatasetConfig::small(200)).table
    }

    #[test]
    fn empty_composition_is_identity() {
        let t = table();
        let attacked = MixedAttack::new().apply(&t);
        assert_eq!(attacked.len(), t.len());
        assert!(MixedAttack::new().is_empty());
        assert_eq!(MixedAttack::new().describe(), "no attack");
    }

    #[test]
    fn composition_applies_in_sequence() {
        let t = table();
        let attack = MixedAttack::new()
            .then(SubsetDeletion::random(0.2, 1))
            .then(SubsetAddition::new(0.1, 2))
            .then(SubsetAlteration::new(0.1, 3));
        assert_eq!(attack.len(), 3);
        let attacked = attack.apply(&t);
        // 200 → delete 40 → 160 → add 16 → 176.
        assert_eq!(attacked.len(), 176);
        assert!(attack.describe().contains("deletion"));
        assert!(attack.describe().contains("addition"));
        assert!(attack.describe().contains("alteration"));
    }
}

//! Hard-kill recovery of `medshield serve --data-dir`, end to end through
//! the real binary: SIGKILL the serving process mid-load, restart it on the
//! same data directory, and require that
//!
//! 1. every release whose `protect` reply was acknowledged before the kill
//!    answers `detect` and `resolve-ownership` **byte-identically** to the
//!    replies recorded pre-kill, and
//! 2. release ids assigned after the restart never collide with any id the
//!    dead process acknowledged.

use medshield_datagen::{DatasetConfig, MedicalDataset};
use medshield_relation::csv;
use medshield_serve::{Client, Response};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Start `medshield serve` on an ephemeral port with a durable store in
/// `data_dir`, returning the child and the address it reported on stdout.
fn spawn_server(data_dir: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_medshield"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().unwrap(),
            // Keep everything in the WAL: the kill lands between append and
            // snapshot, the recovery path the paper's custodian fears most.
            "--snapshot-every",
            "100000",
            "--threads",
            "2",
            "--k",
            "4",
            "--eta",
            "5",
            "--duplication",
            "2",
            "--mark-from-statistic",
            "true",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn medshield serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("medshield serving on ") {
            break rest.split_whitespace().next().expect("address token").to_string();
        }
    };
    // Keep draining stdout until the child dies: dropping the pipe's read
    // end would turn the server's own logging into an EPIPE panic.
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

fn connect(addr: &str) -> Client {
    // The listener is up before the address is printed, but give a slow CI
    // host a little slack anyway.
    for _ in 0..50 {
        if let Ok(client) = Client::connect(addr) {
            return client;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("cannot connect to {addr}");
}

struct Recorded {
    id: String,
    release_csv: String,
    detect: Response,
    resolve: Response,
}

#[test]
fn sigkill_mid_load_loses_no_acknowledged_release() {
    let data_dir = std::env::temp_dir().join(format!("medshield-kill-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    let (mut child, addr) = spawn_server(&data_dir);
    let mut client = connect(&addr);

    // Store two releases and record the exact replies a client saw.
    let mut recorded = Vec::new();
    for (i, rows) in [120usize, 160].into_iter().enumerate() {
        let ds = MedicalDataset::generate(&DatasetConfig {
            num_tuples: rows,
            seed: 0x5EED + i as u64,
            zipf_exponent: 0.8,
        });
        let reply = client.protect(&csv::to_csv(&ds.table)).expect("protect reply");
        assert!(reply.is_ok(), "{}", reply.json);
        let id = reply.release_id().expect("release id");
        let release_csv = reply.body.clone().expect("release body");
        let detect = client.detect(&id, &release_csv).expect("detect reply");
        assert!(detect.is_ok(), "{}", detect.json);
        let resolve = client.resolve_ownership(&id, &release_csv).expect("resolve reply");
        assert!(resolve.is_ok(), "{}", resolve.json);
        recorded.push(Recorded { id, release_csv, detect, resolve });
    }

    // Mid-load: keep protect traffic in flight on another connection while
    // the process is killed. Acknowledged ids are collected; a request cut
    // down by the kill is allowed to fail — durability is promised per
    // *acknowledged* reply, not per attempted request.
    let stop = Arc::new(AtomicBool::new(false));
    let loader = {
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut acked = Vec::new();
            let Ok(mut c) = Client::connect(&addr) else { return acked };
            let ds = MedicalDataset::generate(&DatasetConfig {
                num_tuples: 100,
                seed: 7,
                zipf_exponent: 0.8,
            });
            let body = csv::to_csv(&ds.table);
            while !stop.load(Ordering::Relaxed) {
                match c.protect(&body) {
                    Ok(reply) if reply.is_ok() => {
                        acked.push(reply.release_id().expect("release id"));
                    }
                    _ => break,
                }
            }
            acked
        })
    };
    std::thread::sleep(Duration::from_millis(120));
    child.kill().expect("SIGKILL the server"); // Child::kill is SIGKILL on unix
    child.wait().expect("reap the killed server");
    stop.store(true, Ordering::Relaxed);
    let mut acked_ids: Vec<String> = loader.join().expect("loader thread");
    acked_ids.extend(recorded.iter().map(|r| r.id.clone()));

    // Restart on the same data directory.
    let (mut child, addr) = spawn_server(&data_dir);
    let mut client = connect(&addr);

    // 1. Byte-identical replies for every acknowledged release.
    for r in &recorded {
        let detect = client.detect(&r.id, &r.release_csv).expect("detect after restart");
        assert_eq!(detect, r.detect, "detect reply for {} changed across the kill", r.id);
        let resolve =
            client.resolve_ownership(&r.id, &r.release_csv).expect("resolve after restart");
        assert_eq!(resolve, r.resolve, "resolve reply for {} changed across the kill", r.id);
    }

    // 2. Fresh ids never collide with anything the dead process handed out.
    let ds =
        MedicalDataset::generate(&DatasetConfig { num_tuples: 90, seed: 11, zipf_exponent: 0.8 });
    let reply = client.protect(&csv::to_csv(&ds.table)).expect("protect after restart");
    assert!(reply.is_ok(), "{}", reply.json);
    let new_id = reply.release_id().expect("release id");
    assert!(
        !acked_ids.contains(&new_id),
        "restart reissued acknowledged id {new_id} (acknowledged: {acked_ids:?})"
    );

    child.kill().expect("stop the second server");
    child.wait().expect("reap the second server");
    let _ = std::fs::remove_dir_all(&data_dir);
}

//! The CLI commands: `generate`, `protect`, `protect-for`, `detect`,
//! `resolve-leaker`, `attack`, `serve`.

use crate::args::Options;
use medshield_attacks::{
    Attack, CollusionAttack, GeneralizationAttack, SubsetAddition, SubsetAlteration, SubsetDeletion,
};
use medshield_core::metrics::mark_loss;
use medshield_core::watermark::{score_recipients, FingerprintDeriver};
use medshield_core::{ProtectionConfig, ProtectionEngine};
use medshield_datagen::{ontology, DatasetConfig, MedicalDataset};
use medshield_relation::{csv, Table};
use medshield_serve::{CARRIES_MARK_THRESHOLD, MEDICAL_ROLES};

/// Usage text printed by `medshield help` and on argument errors.
pub const USAGE: &str = "\
medshield — privacy and ownership preserving outsourcing of medical data

USAGE:
  medshield generate --tuples N [--seed S] --out FILE.csv
  medshield protect  --input FILE.csv [--k K] [--eta ETA] [--duplication L]
                     [--enc-secret S1] [--wm-secret S2] [--mark-text T]
                     [--per-attribute true] [--threads N] --out RELEASE.csv
  medshield protect-for --input FILE.csv --recipient NAME --out COPY.csv
                     [same options as protect]
  medshield detect   --original FILE.csv --suspect SUSPECT.csv
                     [--k K] [--eta ETA] [--duplication L]
                     [--enc-secret S1] [--wm-secret S2] [--mark-text T]
                     [--per-attribute true] [--threads N]
  medshield resolve-leaker --original FILE.csv --suspect LEAKED.csv
                     --recipients NAME1,NAME2,... [same options as detect]
  medshield attack   --input RELEASE.csv
                     --kind alteration|addition|deletion|generalization|collusion
                     [--fraction F] [--levels N] [--seed S]
                     [--accomplices COPY1.csv,COPY2.csv] --out ATTACKED.csv
  medshield serve    [--addr HOST:PORT] [--threads N] [--queue-depth D]
                     [--engine-threads N] [--request-timeout-ms MS]
                     [--batch-max N] [--max-connections N]
                     [--per-attribute true|false]
                     [--k K] [--eta ETA] [--enc-secret S1] [--wm-secret S2]
                     [--mark-from-statistic true]
                     [--data-dir DIR] [--snapshot-every N]

The CSV files use the schema R(ssn, age, zip_code, doctor, symptom, prescription)
and the built-in domain ontologies. Detection re-derives the binning state from
the original CSV and the same parameters, so no extra state file is needed.
`protect-for` writes a per-recipient fingerprinted copy of the release: the
recipient's mark is derived from the watermark secret and the recipient name,
so `resolve-leaker` can later rank any set of recipient names against a leaked
CSV and name the copy it came from — even after deletion, alteration, or a
collusion (`attack --kind collusion --accomplices ...`) that mixes several
recipients' copies cell-wise.
--threads N shards the multi-attribute binning search AND watermark
embedding/detection over N worker threads; the output is byte-identical for
every N. `serve` runs the long-lived data-owner service: protect/embed/detect/
resolve-ownership over a length-framed TCP protocol, with --threads worker
engines answering in parallel behind a bounded queue of depth --queue-depth.
--data-dir DIR makes the release store durable (write-ahead log + snapshots
under DIR): stored releases and their ids survive restarts and even a SIGKILL,
and a protect reply is only sent once its record is fsynced. --snapshot-every N
compacts the log after every N stored releases (0 = log only).";

fn read_table(path: &str) -> Result<Table, String> {
    // The schema roles are the serving layer's: both front ends must import
    // CSV files identically.
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    csv::from_csv(&text, &MEDICAL_ROLES).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn write_table(path: &str, table: &Table) -> Result<(), String> {
    std::fs::write(path, csv::to_csv(table)).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Build the protection configuration shared by `protect`, `detect` and
/// `serve` from the command-line options.
pub(crate) fn config_from(options: &Options) -> Result<ProtectionConfig, String> {
    let k: usize = options.parse_or("k", 10)?;
    let eta: u64 = options.parse_or("eta", 50)?;
    let duplication: usize = options.parse_or("duplication", 4)?;
    Ok(ProtectionConfig::builder()
        .k(k)
        .epsilon(options.parse_or("epsilon", 2)?)
        .eta(eta)
        .duplication(duplication)
        .mark_len(options.parse_or("mark-len", 20)?)
        .mark_text(options.string_or("mark-text", "medshield-cli-owner"))
        .mark_from_statistic(options.parse_or("mark-from-statistic", false)?)
        .encryption_secret(options.string_or("enc-secret", "medshield-enc").into_bytes())
        .watermark_secret(options.string_or("wm-secret", "medshield-wm").into_bytes())
        .build())
}

fn engine_from(options: &Options) -> Result<ProtectionEngine, String> {
    let threads: usize = options.parse_or("threads", 1)?;
    let config = config_from(options)?;
    ProtectionEngine::new(config, threads)
        .map_err(|e| format!("invalid engine configuration: {e} (got --threads {threads})"))
}

fn per_attribute(options: &Options) -> Result<bool, String> {
    options.parse_or("per-attribute", true)
}

/// `medshield generate`: write a synthetic hospital table as CSV.
pub fn generate(options: &Options) -> Result<(), String> {
    let tuples: usize = options.parse_or("tuples", 20_000)?;
    let seed: u64 = options.parse_or("seed", 0x1CDE_2005)?;
    let out = options.required("out")?;
    let dataset =
        MedicalDataset::generate(&DatasetConfig { num_tuples: tuples, seed, zipf_exponent: 0.8 });
    write_table(out, &dataset.table)?;
    println!("wrote {tuples} synthetic tuples to {out}");
    Ok(())
}

/// `medshield protect`: bin + watermark an input CSV, write the release CSV.
pub fn protect(options: &Options) -> Result<(), String> {
    let input = options.required("input")?;
    let out = options.required("out")?;
    let table = read_table(input)?;
    let trees = ontology::all_trees();
    let engine = engine_from(options)?;
    let release = if per_attribute(options)? {
        engine.protect_per_attribute(&table, &trees)
    } else {
        engine.protect(&table, &trees)
    }
    .map_err(|e| format!("protection failed: {e}"))?;
    write_table(out, &release.table)?;
    println!(
        "protected {} tuples (k={}, η={}, {} thread{}): {} tuples watermarked, {} cells changed",
        release.table.len(),
        engine.config().binning.spec.k,
        engine.config().watermark.key.eta,
        engine.threads(),
        if engine.threads() == 1 { "" } else { "s" },
        release.embedding.selected_tuples,
        release.embedding.changed_cells,
    );
    println!("embedded mark: {}", release.mark);
    for warning in &release.binning.warnings {
        println!("note: {warning}");
    }
    println!("release written to {out}");
    Ok(())
}

/// `medshield protect-for`: protect an input CSV and write a per-recipient
/// fingerprinted copy. The release itself (owner's mark) is identical to what
/// `protect` would produce; the copy re-embeds the recipient's derived mark
/// over the same keyed selection, so the owner's detection still works on it.
pub fn protect_for(options: &Options) -> Result<(), String> {
    let input = options.required("input")?;
    let out = options.required("out")?;
    let recipient = options.required("recipient")?;
    if recipient.is_empty() {
        return Err("--recipient must not be empty".to_string());
    }
    let table = read_table(input)?;
    let trees = ontology::all_trees();
    let engine = engine_from(options)?;
    let release = if per_attribute(options)? {
        engine.protect_per_attribute(&table, &trees)
    } else {
        engine.protect(&table, &trees)
    }
    .map_err(|e| format!("protection failed: {e}"))?;
    let fingerprint =
        FingerprintDeriver::new(&engine.config().watermark.key, engine.config().mark_len)
            .derive(recipient);
    let (copy, report) = engine
        .embed(&release.table, &release.binning.columns, &trees, &fingerprint)
        .map_err(|e| format!("fingerprint embedding failed: {e}"))?;
    write_table(out, &copy)?;
    println!(
        "protected {} tuples and fingerprinted the copy for `{recipient}`: \
         {} tuples watermarked, {} cells changed",
        copy.len(),
        report.selected_tuples,
        report.changed_cells,
    );
    println!("recipient fingerprint: {fingerprint}");
    for warning in &release.binning.warnings {
        println!("note: {warning}");
    }
    println!("recipient copy written to {out}");
    Ok(())
}

/// `medshield resolve-leaker`: re-derive the binning state from the original
/// CSV, extract the mark carried by the leaked CSV, and rank the named
/// recipients by fingerprint agreement. Traitor tracing: the top rank names
/// the leaker, or a member of the colluding set.
pub fn resolve_leaker(options: &Options) -> Result<(), String> {
    let original = read_table(options.required("original")?)?;
    let suspect = read_table(options.required("suspect")?)?;
    let recipients = options.required("recipients")?;
    let names: Vec<&str> = recipients.split(',').filter(|s| !s.is_empty()).collect();
    if names.is_empty() {
        return Err("--recipients must name at least one recipient".to_string());
    }
    let trees = ontology::all_trees();
    let engine = engine_from(options)?;
    let release = if per_attribute(options)? {
        engine.protect_per_attribute(&original, &trees)
    } else {
        engine.protect(&original, &trees)
    }
    .map_err(|e| format!("re-deriving the binning state failed: {e}"))?;
    let detection = engine
        .detect(&suspect, &release.binning.columns, &trees)
        .map_err(|e| format!("detection failed: {e}"))?;
    let deriver = FingerprintDeriver::new(&engine.config().watermark.key, engine.config().mark_len);
    let marks: Vec<(String, medshield_core::watermark::Mark)> =
        names.iter().map(|n| (n.to_string(), deriver.derive(n))).collect();
    let ranking = score_recipients(&detection.mark, marks.iter().map(|(n, m)| (n.as_str(), m)));
    println!(
        "extracted {} mark bits from {} tuples ({} selected)",
        detection.mark.len(),
        suspect.len(),
        detection.selected_tuples,
    );
    for score in &ranking {
        println!(
            "  {:<24} {:>5.1}% agreement ({}/{} bits)",
            score.name,
            score.score * 100.0,
            score.matching_bits,
            score.compared_bits,
        );
    }
    match ranking.first() {
        Some(top) => println!("verdict: the leaked copy traces to `{}`", top.name),
        None => println!("verdict: no recipient could be scored"),
    }
    Ok(())
}

/// `medshield detect`: re-derive the binning state from the original CSV and
/// check whether the suspect CSV carries the owner's mark.
pub fn detect(options: &Options) -> Result<(), String> {
    let original = read_table(options.required("original")?)?;
    let suspect = read_table(options.required("suspect")?)?;
    let trees = ontology::all_trees();
    let engine = engine_from(options)?;
    let release = if per_attribute(options)? {
        engine.protect_per_attribute(&original, &trees)
    } else {
        engine.protect(&original, &trees)
    }
    .map_err(|e| format!("re-deriving the binning state failed: {e}"))?;
    let detection = engine
        .detect(&suspect, &release.binning.columns, &trees)
        .map_err(|e| format!("detection failed: {e}"))?;
    let loss = mark_loss(release.mark.bits(), &detection.mark);
    println!("expected mark : {}", release.mark);
    println!(
        "recovered mark: {}",
        medshield_core::watermark::Mark::from_bits(detection.mark.clone())
    );
    println!(
        "mark loss: {:.1}% ({} of {} extended-mark positions carried votes)",
        loss * 100.0,
        detection.covered_positions,
        detection.wmd_len
    );
    if loss <= CARRIES_MARK_THRESHOLD {
        println!("verdict: the suspect data carry the owner's watermark");
    } else {
        println!("verdict: the owner's watermark was NOT found");
    }
    Ok(())
}

/// `medshield attack`: apply one of the paper's attack models to a release.
pub fn attack(options: &Options) -> Result<(), String> {
    let input = options.required("input")?;
    let out = options.required("out")?;
    let kind = options.required("kind")?;
    let fraction: f64 = options.parse_or("fraction", 0.3)?;
    let seed: u64 = options.parse_or("seed", 1)?;
    let table = read_table(input)?;
    let attack: Box<dyn Attack> = match kind {
        "alteration" => Box::new(SubsetAlteration::new(fraction, seed)),
        "addition" => Box::new(SubsetAddition::new(fraction, seed)),
        "deletion" => Box::new(SubsetDeletion::ranges(fraction, seed, "ssn")),
        "generalization" => Box::new(GeneralizationAttack::new(
            options.parse_or("levels", 1)?,
            ontology::all_trees(),
        )),
        "collusion" => {
            let accomplices = options.required("accomplices")?;
            let copies: Vec<Table> = accomplices
                .split(',')
                .filter(|s| !s.is_empty())
                .map(read_table)
                .collect::<Result<_, _>>()?;
            if copies.is_empty() {
                return Err("--accomplices must name at least one other recipient copy".to_string());
            }
            Box::new(CollusionAttack::new(copies, seed))
        }
        other => return Err(format!("unknown attack kind: {other}")),
    };
    let attacked = attack.apply(&table);
    write_table(out, &attacked)?;
    println!(
        "{} → {} tuples after `{}`; written to {out}",
        table.len(),
        attacked.len(),
        attack.describe()
    );
    Ok(())
}

/// Build the serving-layer configuration from the command-line options.
/// Split from [`serve`] so tests can exercise the parsing without binding a
/// socket.
pub(crate) fn serve_config_from(
    options: &Options,
) -> Result<(medshield_serve::ServeConfig, String), String> {
    let addr = options.string_or("addr", "127.0.0.1:7878");
    let defaults = medshield_serve::ServeConfig::default();
    let config = medshield_serve::ServeConfig {
        engine: config_from(options)?,
        engine_threads: options.parse_or("engine-threads", 1)?,
        workers: options.parse_or("threads", 4)?,
        queue_depth: options.parse_or("queue-depth", 64)?,
        request_timeout: std::time::Duration::from_millis(
            options.parse_or("request-timeout-ms", 30_000u64)?,
        ),
        batch_max: options.parse_or("batch-max", 8)?,
        max_connections: options.parse_or("max-connections", defaults.max_connections)?,
        per_attribute_default: options.parse_or("per-attribute", true)?,
        data_dir: options.get("data-dir").map(std::path::PathBuf::from),
        snapshot_every: options.parse_or("snapshot-every", defaults.snapshot_every)?,
        ..defaults
    };
    Ok((config, addr))
}

/// `medshield serve`: run the long-lived data-owner service until killed.
pub fn serve(options: &Options) -> Result<(), String> {
    use std::io::Write as _;
    let (config, addr) = serve_config_from(options)?;
    let workers = config.workers;
    let queue_depth = config.queue_depth;
    let handle =
        medshield_serve::serve(config, addr.as_str()).map_err(|e| format!("cannot serve: {e}"))?;
    println!(
        "medshield serving on {} ({} worker{}, queue depth {}) — \
         protect / embed / detect / resolve-ownership over length-framed TCP",
        handle.addr(),
        workers,
        if workers == 1 { "" } else { "s" },
        queue_depth,
    );
    if handle.is_durable() {
        println!(
            "durable release store: {} release{} recovered, ids continue from the log",
            handle.releases(),
            if handle.releases() == 1 { "" } else { "s" },
        );
    }
    // The bound address (port 0 resolves here) must reach a piped parent
    // (supervisors, the kill-recovery integration test) before the process
    // parks: piped stdout is block-buffered, so flush explicitly.
    let _ = std::io::stdout().flush();
    handle.wait();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Options;

    fn opts(pairs: &[(&str, &str)]) -> Options {
        let argv: Vec<String> =
            pairs.iter().flat_map(|(k, v)| [format!("--{k}"), v.to_string()]).collect();
        Options::parse(&argv).unwrap()
    }

    #[test]
    fn generate_protect_detect_attack_roundtrip() {
        let dir = std::env::temp_dir().join("medshield-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let release = dir.join("release.csv");
        let attacked = dir.join("attacked.csv");

        generate(&opts(&[("tuples", "400"), ("seed", "9"), ("out", data.to_str().unwrap())]))
            .unwrap();
        protect(&opts(&[
            ("input", data.to_str().unwrap()),
            ("out", release.to_str().unwrap()),
            ("k", "5"),
            ("eta", "5"),
        ]))
        .unwrap();
        detect(&opts(&[
            ("original", data.to_str().unwrap()),
            ("suspect", release.to_str().unwrap()),
            ("k", "5"),
            ("eta", "5"),
        ]))
        .unwrap();
        attack(&opts(&[
            ("input", release.to_str().unwrap()),
            ("out", attacked.to_str().unwrap()),
            ("kind", "deletion"),
            ("fraction", "0.2"),
        ]))
        .unwrap();
        detect(&opts(&[
            ("original", data.to_str().unwrap()),
            ("suspect", attacked.to_str().unwrap()),
            ("k", "5"),
            ("eta", "5"),
        ]))
        .unwrap();
    }

    #[test]
    fn protect_for_collusion_resolve_leaker_roundtrip() {
        let dir = std::env::temp_dir().join("medshield-cli-traitor");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let copy_a = dir.join("copy-a.csv");
        let copy_b = dir.join("copy-b.csv");
        let mixed = dir.join("mixed.csv");
        generate(&opts(&[("tuples", "400"), ("seed", "13"), ("out", data.to_str().unwrap())]))
            .unwrap();
        for (recipient, out) in [("clinic-a", &copy_a), ("clinic-b", &copy_b)] {
            protect_for(&opts(&[
                ("input", data.to_str().unwrap()),
                ("out", out.to_str().unwrap()),
                ("recipient", recipient),
                ("k", "5"),
                ("eta", "5"),
            ]))
            .unwrap();
        }
        // Distinct recipients must get distinct copies.
        assert_ne!(
            std::fs::read_to_string(&copy_a).unwrap(),
            std::fs::read_to_string(&copy_b).unwrap(),
        );
        attack(&opts(&[
            ("input", copy_a.to_str().unwrap()),
            ("out", mixed.to_str().unwrap()),
            ("kind", "collusion"),
            ("accomplices", copy_b.to_str().unwrap()),
        ]))
        .unwrap();
        resolve_leaker(&opts(&[
            ("original", data.to_str().unwrap()),
            ("suspect", mixed.to_str().unwrap()),
            ("recipients", "clinic-a,clinic-b,clinic-c"),
            ("k", "5"),
            ("eta", "5"),
        ]))
        .unwrap();
        // Argument errors stay clean errors.
        assert!(protect_for(&opts(&[
            ("input", data.to_str().unwrap()),
            ("out", copy_a.to_str().unwrap()),
            ("recipient", ""),
        ]))
        .is_err());
        assert!(resolve_leaker(&opts(&[
            ("original", data.to_str().unwrap()),
            ("suspect", mixed.to_str().unwrap()),
            ("recipients", ","),
        ]))
        .is_err());
        assert!(attack(&opts(&[
            ("input", copy_a.to_str().unwrap()),
            ("out", mixed.to_str().unwrap()),
            ("kind", "collusion"),
            ("accomplices", ""),
        ]))
        .is_err());
    }

    #[test]
    fn threads_flag_produces_identical_release_bytes() {
        let dir = std::env::temp_dir().join("medshield-cli-threads");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let seq = dir.join("release-1t.csv");
        let par = dir.join("release-4t.csv");
        generate(&opts(&[("tuples", "300"), ("seed", "11"), ("out", data.to_str().unwrap())]))
            .unwrap();
        // Exercise both pipelines: per-attribute (mono only) and the full
        // multi-attribute binning search, which --threads also shards now.
        for per_attribute in ["true", "false"] {
            let base = [
                ("input", data.to_str().unwrap()),
                ("k", "4"),
                ("eta", "5"),
                ("per-attribute", per_attribute),
            ];
            let mut one = base.to_vec();
            one.push(("out", seq.to_str().unwrap()));
            protect(&opts(&one)).unwrap();
            let mut four = base.to_vec();
            four.push(("out", par.to_str().unwrap()));
            four.push(("threads", "4"));
            protect(&opts(&four)).unwrap();
            assert_eq!(
                std::fs::read_to_string(&seq).unwrap(),
                std::fs::read_to_string(&par).unwrap(),
                "--threads must not change the release bytes (per-attribute {per_attribute})"
            );
            // And multi-threaded detection accepts the release of the same
            // pipeline variant.
            detect(&opts(&[
                ("original", data.to_str().unwrap()),
                ("suspect", par.to_str().unwrap()),
                ("k", "4"),
                ("eta", "5"),
                ("threads", "4"),
                ("per-attribute", per_attribute),
            ]))
            .unwrap();
        }
    }

    #[test]
    fn serve_options_parse_and_drive_a_live_server() {
        let (config, addr) = serve_config_from(&opts(&[
            ("threads", "2"),
            ("queue-depth", "8"),
            ("k", "4"),
            ("eta", "5"),
            ("duplication", "2"),
        ]))
        .unwrap();
        assert_eq!(addr, "127.0.0.1:7878");
        assert_eq!(config.workers, 2);
        assert_eq!(config.queue_depth, 8);
        assert_eq!(config.engine.binning.spec.k, 4);
        // The connection limit rides the same parser, with the library default.
        assert_eq!(config.max_connections, medshield_serve::ServeConfig::default().max_connections);
        let (config, _) = serve_config_from(&opts(&[("max-connections", "3")])).unwrap();
        assert_eq!(config.max_connections, 3);
        // Drive the parsed configuration on an ephemeral port: a protect
        // round-trip must serve the exact bytes the CLI's own protect logic
        // would produce.
        let handle = medshield_serve::serve(config, "127.0.0.1:0").unwrap();
        let ds = medshield_datagen::MedicalDataset::generate(
            &medshield_datagen::DatasetConfig::small(120),
        );
        let mut client = medshield_serve::Client::connect(handle.addr()).unwrap();
        let reply = client.protect(&csv::to_csv(&ds.table)).unwrap();
        assert!(reply.is_ok(), "{}", reply.json);
        assert_eq!(reply.u64_field("rows"), Some(120));
        handle.shutdown();
    }

    #[test]
    fn serve_options_parse_the_durable_store_flags() {
        // Default: in-memory store.
        let (config, _) = serve_config_from(&opts(&[])).unwrap();
        assert_eq!(config.data_dir, None);
        let (config, _) = serve_config_from(&opts(&[
            ("data-dir", "/tmp/medshield-releases"),
            ("snapshot-every", "17"),
        ]))
        .unwrap();
        assert_eq!(
            config.data_dir.as_deref(),
            Some(std::path::Path::new("/tmp/medshield-releases"))
        );
        assert_eq!(config.snapshot_every, 17);
        assert!(serve_config_from(&opts(&[("snapshot-every", "lots")])).is_err());
    }

    #[test]
    fn serve_rejects_zero_worker_and_engine_threads_cleanly() {
        let (config, _) = serve_config_from(&opts(&[("threads", "0")])).unwrap();
        assert!(medshield_serve::serve(config, "127.0.0.1:0").is_err());
        let (config, _) = serve_config_from(&opts(&[("engine-threads", "0")])).unwrap();
        match medshield_serve::serve(config, "127.0.0.1:0") {
            Err(e) => assert!(e.to_string().contains("at least 1"), "{e}"),
            Ok(_) => panic!("engine-threads 0 must be rejected"),
        }
    }

    #[test]
    fn zero_threads_is_a_clean_cli_error() {
        let dir = std::env::temp_dir().join("medshield-cli-zero-threads");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.csv");
        generate(&opts(&[("tuples", "50"), ("out", data.to_str().unwrap())])).unwrap();
        let err = protect(&opts(&[
            ("input", data.to_str().unwrap()),
            ("out", dir.join("r.csv").to_str().unwrap()),
            ("threads", "0"),
        ]))
        .unwrap_err();
        assert!(err.contains("thread count must be at least 1"), "{err}");
    }

    #[test]
    fn missing_files_and_unknown_attack_are_errors() {
        assert!(protect(&opts(&[("input", "/nonexistent.csv"), ("out", "/tmp/x.csv")])).is_err());
        assert!(read_table("/nonexistent.csv").is_err());
        let dir = std::env::temp_dir().join("medshield-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.csv");
        generate(&opts(&[("tuples", "50"), ("out", data.to_str().unwrap())])).unwrap();
        assert!(attack(&opts(&[
            ("input", data.to_str().unwrap()),
            ("out", dir.join("a.csv").to_str().unwrap()),
            ("kind", "nuke"),
        ]))
        .is_err());
    }
}

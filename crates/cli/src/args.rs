//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command-line options: a map from flag name (without the leading
/// dashes) to value.
#[derive(Debug, Default, Clone)]
pub struct Options {
    values: BTreeMap<String, String>,
}

impl Options {
    /// Parse `--name value` pairs. A flag without a value is an error, as is
    /// a bare value without a flag.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut values = BTreeMap::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("expected a --flag, found {arg}"));
            };
            let Some(value) = iter.next() else {
                return Err(format!("flag --{name} needs a value"));
            };
            values.insert(name.to_string(), value.clone());
        }
        Ok(Options { values })
    }

    /// A required string option.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string option with a default.
    pub fn string_or(&self, name: &str, default: &str) -> String {
        self.values.get(name).cloned().unwrap_or_else(|| default.to_string())
    }

    /// An optional string option with no default (`None` when the flag was
    /// not given).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An optional parsed option with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("flag --{name} has an invalid value: {v}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn parses_flag_value_pairs() {
        let o = Options::parse(&argv(&["--k", "10", "--out", "a.csv"])).unwrap();
        assert_eq!(o.required("k").unwrap(), "10");
        assert_eq!(o.string_or("out", "x"), "a.csv");
        assert_eq!(o.parse_or("k", 0usize).unwrap(), 10);
        assert_eq!(o.parse_or("eta", 77u64).unwrap(), 77);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Options::parse(&argv(&["k", "10"])).is_err());
        assert!(Options::parse(&argv(&["--k"])).is_err());
        let o = Options::parse(&argv(&["--k", "ten"])).unwrap();
        assert!(o.parse_or("k", 0usize).is_err());
        assert!(o.required("missing").is_err());
    }
}

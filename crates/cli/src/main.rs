//! `medshield` — a command-line front end for the MedShield framework.
//!
//! The tool works on CSV files with the paper's medical schema
//! `R(ssn, age, zip_code, doctor, symptom, prescription)` and the built-in
//! domain ontologies. It deliberately avoids any state file: the binning
//! state needed for detection is re-derived deterministically from the
//! original CSV and the same parameters, so the data holder only needs to
//! keep the original data and the secrets.
//!
//! ```text
//! medshield generate --tuples 20000 --seed 7 --out hospital.csv
//! medshield protect  --input hospital.csv --k 10 --eta 50 \
//!                    --enc-secret S1 --wm-secret S2 --out release.csv
//! medshield detect   --original hospital.csv --suspect leaked.csv \
//!                    --k 10 --eta 50 --enc-secret S1 --wm-secret S2
//! medshield attack   --input release.csv --kind alteration --fraction 0.3 --out attacked.csv
//! medshield serve    --addr 127.0.0.1:7878 --threads 4 --queue-depth 64
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let options = match args::Options::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => commands::generate(&options),
        "protect" => commands::protect(&options),
        "protect-for" => commands::protect_for(&options),
        "detect" => commands::detect(&options),
        "resolve-leaker" => commands::resolve_leaker(&options),
        "attack" => commands::attack(&options),
        "serve" => commands::serve(&options),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

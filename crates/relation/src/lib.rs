//! # medshield-relation
//!
//! A small, dependency-free, in-memory relational substrate used by the
//! MedShield framework (Bertino et al., ICDE 2005).
//!
//! The paper operates on a single relational table of medical records,
//! `R(ssn, age, zip_code, doctor, symptom, prescription)`, whose columns are
//! classified into *identifying*, *quasi-identifying* (categorical or
//! numeric), and *non-identifying* columns (§2). The binning agent rewrites
//! quasi-identifying values, the watermarking agent permutes a keyed subset of
//! them, and the attack models insert, alter and delete tuples (including the
//! paper's SQL range delete, §7.2).
//!
//! This crate provides exactly that substrate:
//!
//! * [`Value`] — a typed cell value (integer, text, half-open interval, null).
//! * [`ColumnRole`] / [`ColumnDef`] / [`Schema`] — schema with privacy roles.
//! * [`Table`] / [`Tuple`] / [`TupleId`] — a columnar store with stable tuple
//!   ids, insertion, per-column access, predicate-based deletion, and a
//!   row-materializing compatibility view.
//! * [`Column`] / [`ColumnData`] — the typed column vectors behind the table:
//!   native `i64` vectors for integers, dictionary-encoded code vectors for
//!   categorical/generalized data; the batch kernels of the binning and
//!   watermarking crates read these directly.
//! * [`Predicate`] — a tiny predicate language sufficient for the attack
//!   models (`DELETE FROM R WHERE ssn > lo AND ssn < hi`).
//! * [`stats`] — per-column statistics (value counts, one-pass min/max/
//!   distinct, bin sizes, group-by over quasi-identifier combinations) used
//!   by the metrics crate.
//! * [`csv`] — plain-text import/export for inspection of generated data.
//!
//! ```
//! use medshield_relation::{ColumnDef, ColumnRole, Schema, Table, Value};
//!
//! let schema = Schema::new(vec![
//!     ColumnDef::new("ssn", ColumnRole::Identifying),
//!     ColumnDef::new("age", ColumnRole::QuasiNumeric),
//! ])
//! .unwrap();
//! let mut table = Table::new(schema);
//! table.insert(vec![Value::text("123-45-6789"), Value::int(42)]).unwrap();
//! assert_eq!(table.len(), 1);
//! assert_eq!(table.column_values("age").unwrap(), vec![Value::int(42)]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod column;
pub mod csv;
pub mod error;
pub mod predicate;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use column::{Column, ColumnData, DictColumn};
pub use error::RelationError;
pub use predicate::Predicate;
pub use schema::{ColumnDef, ColumnRole, Schema};
pub use table::{Table, Tuple, TupleId};
pub use value::Value;

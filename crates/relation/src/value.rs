//! Typed cell values.
//!
//! Binning replaces a specific value by a more general one: a categorical
//! leaf becomes an ancestor label, a numeric value becomes a half-open
//! interval. Both generalized forms are first-class [`Value`] variants so the
//! binned table remains a normal relational table.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Absent / suppressed value.
    Null,
    /// 64-bit signed integer (ages, zip codes stored numerically, ...).
    Int(i64),
    /// Free text or categorical label.
    Text(String),
    /// Half-open interval `[lo, hi)` produced by generalizing a numeric value.
    Interval {
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
}

impl Value {
    /// Build a text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Build an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Build an interval value `[lo, hi)`.
    pub fn interval(lo: i64, hi: i64) -> Self {
        Value::Interval { lo, hi }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The text content, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The interval bounds, if this is an `Interval`.
    pub fn as_interval(&self) -> Option<(i64, i64)> {
        match self {
            Value::Interval { lo, hi } => Some((*lo, *hi)),
            _ => None,
        }
    }

    /// True if an integer value (or degenerate interval) falls inside this
    /// value interpreted as a numeric range. An `Int` behaves as the
    /// degenerate interval `[v, v+1)`.
    pub fn numeric_contains(&self, point: i64) -> bool {
        match self {
            Value::Int(v) => *v == point,
            Value::Interval { lo, hi } => point >= *lo && point < *hi,
            _ => false,
        }
    }

    /// A short name of the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Text(_) => "text",
            Value::Interval { .. } => "interval",
        }
    }

    /// Canonical byte encoding used as the input of keyed hashes. The
    /// encoding is prefix-free across variants so distinct values never
    /// collide structurally.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match self {
            Value::Null => vec![0x00],
            Value::Int(v) => {
                let mut out = Vec::with_capacity(9);
                out.push(0x01);
                out.extend_from_slice(&v.to_be_bytes());
                out
            }
            Value::Text(s) => {
                let mut out = Vec::with_capacity(1 + 8 + s.len());
                out.push(0x02);
                out.extend_from_slice(&(s.len() as u64).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
                out
            }
            Value::Interval { lo, hi } => {
                let mut out = Vec::with_capacity(17);
                out.push(0x03);
                out.extend_from_slice(&lo.to_be_bytes());
                out.extend_from_slice(&hi.to_be_bytes());
                out
            }
        }
    }

    /// Parse a value from its display form. `""` parses to `Null`,
    /// `"[a,b)"` to an interval, a decimal integer to `Int`, anything else
    /// to `Text`.
    pub fn parse(s: &str) -> Value {
        let trimmed = s.trim();
        if trimmed.is_empty() || trimmed == "∅" {
            return Value::Null;
        }
        if let Some(body) = trimmed.strip_prefix('[').and_then(|t| t.strip_suffix(')')) {
            let parts: Vec<&str> = body.splitn(2, ',').collect();
            if parts.len() == 2 {
                if let (Ok(lo), Ok(hi)) = (parts[0].trim().parse(), parts[1].trim().parse()) {
                    return Value::Interval { lo, hi };
                }
            }
        }
        if let Ok(v) = trimmed.parse::<i64>() {
            return Value::Int(v);
        }
        Value::Text(trimmed.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Interval { lo, hi } => write!(f, "[{lo},{hi})"),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used for sorted sibling sets and deterministic reports:
    /// Null < Int < Interval < Text; ints by value, intervals by (lo, hi),
    /// text lexicographically.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) => 1,
                Interval { .. } => 2,
                Text(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Interval { lo: a1, hi: a2 }, Interval { lo: b1, hi: b2 }) => {
                a1.cmp(b1).then(a2.cmp(b2))
            }
            (Text(a), Text(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Value::int(42).as_int(), Some(42));
        assert_eq!(Value::text("doctor").as_text(), Some("doctor"));
        assert_eq!(Value::interval(25, 50).as_interval(), Some((25, 50)));
        assert!(Value::Null.is_null());
        assert!(!Value::int(1).is_null());
        assert_eq!(Value::int(1).as_text(), None);
        assert_eq!(Value::text("x").as_int(), None);
    }

    #[test]
    fn display_roundtrip_via_parse() {
        for v in [
            Value::Null,
            Value::int(37),
            Value::int(-5),
            Value::text("Pharmacist"),
            Value::interval(0, 150),
        ] {
            assert_eq!(Value::parse(&v.to_string()), v, "value {v:?}");
        }
    }

    #[test]
    fn parse_prefers_int_then_text() {
        assert_eq!(Value::parse("123"), Value::Int(123));
        assert_eq!(Value::parse("12a"), Value::text("12a"));
        assert_eq!(Value::parse("  hi  "), Value::text("hi"));
        assert_eq!(Value::parse(""), Value::Null);
        assert_eq!(Value::parse("[25, 50)"), Value::interval(25, 50));
        // Malformed interval falls back to text.
        assert_eq!(Value::parse("[25;50)"), Value::text("[25;50)"));
    }

    #[test]
    fn numeric_contains() {
        assert!(Value::int(30).numeric_contains(30));
        assert!(!Value::int(30).numeric_contains(31));
        let iv = Value::interval(25, 50);
        assert!(iv.numeric_contains(25));
        assert!(iv.numeric_contains(49));
        assert!(!iv.numeric_contains(50));
        assert!(!Value::text("x").numeric_contains(1));
        assert!(!Value::Null.numeric_contains(0));
    }

    #[test]
    fn ordering_is_total_and_by_rank() {
        let mut values = vec![
            Value::text("b"),
            Value::int(2),
            Value::Null,
            Value::interval(0, 10),
            Value::text("a"),
            Value::int(1),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::Null,
                Value::int(1),
                Value::int(2),
                Value::interval(0, 10),
                Value::text("a"),
                Value::text("b"),
            ]
        );
    }

    #[test]
    fn canonical_bytes_are_distinct() {
        let values = [
            Value::Null,
            Value::int(0),
            Value::int(1),
            Value::text(""),
            Value::text("0"),
            Value::interval(0, 1),
            Value::interval(0, 2),
        ];
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                if i != j {
                    assert_ne!(a.canonical_bytes(), b.canonical_bytes(), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn canonical_bytes_text_prefix_free() {
        // "ab" + "c" must differ from "a" + "bc" structurally.
        let a = Value::text("ab").canonical_bytes();
        let b = Value::text("a").canonical_bytes();
        assert_ne!(a, b);
        assert!(a.len() > b.len());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(String::from("y")), Value::text("y"));
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Null.kind(), "null");
        assert_eq!(Value::int(1).kind(), "int");
        assert_eq!(Value::text("a").kind(), "text");
        assert_eq!(Value::interval(1, 2).kind(), "interval");
    }
}

//! Per-column and per-bin statistics.
//!
//! The k-anonymity view of a binned table is "records containing the same
//! value constitute a bin, and the size of every bin is at least k" (§2).
//! These helpers compute value frequencies per column and bin sizes over the
//! full quasi-identifier combination, which the metrics crate turns into
//! information-loss figures, k-anonymity checks and the Fig. 14 statistics.

use crate::error::RelationError;
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeMap;

/// Frequency of each distinct value in one column.
///
/// Returned as a `BTreeMap` so iteration order is deterministic, which keeps
/// reports and tests stable.
pub fn value_counts(table: &Table, column: &str) -> Result<BTreeMap<Value, usize>, RelationError> {
    let mut counts = BTreeMap::new();
    for v in table.column_values(column)? {
        *counts.entry(v.clone()).or_insert(0) += 1;
    }
    Ok(counts)
}

/// Number of distinct values in one column.
pub fn distinct_count(table: &Table, column: &str) -> Result<usize, RelationError> {
    Ok(value_counts(table, column)?.len())
}

/// Bin sizes over a combination of columns: every distinct tuple of values in
/// `columns` is one bin; the map value is the number of records in the bin.
pub fn bin_sizes(
    table: &Table,
    columns: &[&str],
) -> Result<BTreeMap<Vec<Value>, usize>, RelationError> {
    let indices: Vec<usize> =
        columns.iter().map(|c| table.schema().index_of(c)).collect::<Result<_, _>>()?;
    let mut bins = BTreeMap::new();
    for tuple in table.iter() {
        let key: Vec<Value> = indices.iter().map(|&i| tuple.values[i].clone()).collect();
        *bins.entry(key).or_insert(0) += 1;
    }
    Ok(bins)
}

/// Bin sizes over all quasi-identifying columns of the table's schema.
pub fn quasi_bin_sizes(table: &Table) -> Result<BTreeMap<Vec<Value>, usize>, RelationError> {
    let names = table.schema().quasi_names();
    bin_sizes(table, &names)
}

/// The size of the smallest bin over `columns`, or `None` for an empty table.
pub fn min_bin_size(table: &Table, columns: &[&str]) -> Result<Option<usize>, RelationError> {
    Ok(bin_sizes(table, columns)?.values().copied().min())
}

/// Mean of the integer values in a column, ignoring non-integers.
/// Used by the rightful-ownership protocol, which derives the owner's mark
/// from a statistic of the clear-text identifying column (§5.4).
pub fn numeric_mean(table: &Table, column: &str) -> Result<Option<f64>, RelationError> {
    let values = table.column_values(column)?;
    let ints: Vec<i64> = values.iter().filter_map(|v| v.as_int()).collect();
    if ints.is_empty() {
        return Ok(None);
    }
    Ok(Some(ints.iter().map(|&v| v as f64).sum::<f64>() / ints.len() as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnRole, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnRole::Identifying),
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
            ColumnDef::new("doctor", ColumnRole::QuasiCategorical),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        let rows = [
            (1, 30, "Surgeon"),
            (2, 30, "Surgeon"),
            (3, 30, "Nurse"),
            (4, 40, "Nurse"),
            (5, 40, "Nurse"),
        ];
        for (id, age, doc) in rows {
            t.insert(vec![Value::int(id), Value::int(age), Value::text(doc)]).unwrap();
        }
        t
    }

    #[test]
    fn value_counts_per_column() {
        let t = table();
        let counts = value_counts(&t, "doctor").unwrap();
        assert_eq!(counts[&Value::text("Surgeon")], 2);
        assert_eq!(counts[&Value::text("Nurse")], 3);
        assert_eq!(distinct_count(&t, "age").unwrap(), 2);
        assert!(value_counts(&t, "missing").is_err());
    }

    #[test]
    fn bin_sizes_over_combination() {
        let t = table();
        let bins = bin_sizes(&t, &["age", "doctor"]).unwrap();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[&vec![Value::int(30), Value::text("Surgeon")]], 2);
        assert_eq!(bins[&vec![Value::int(30), Value::text("Nurse")]], 1);
        assert_eq!(bins[&vec![Value::int(40), Value::text("Nurse")]], 2);
        assert_eq!(min_bin_size(&t, &["age", "doctor"]).unwrap(), Some(1));
    }

    #[test]
    fn quasi_bin_sizes_uses_schema_roles() {
        let t = table();
        let bins = quasi_bin_sizes(&t).unwrap();
        // quasi columns are age and doctor → same as the explicit call.
        assert_eq!(bins, bin_sizes(&t, &["age", "doctor"]).unwrap());
    }

    #[test]
    fn min_bin_size_empty_table() {
        let t = Table::new(Schema::medical_example());
        assert_eq!(min_bin_size(&t, &["age"]).unwrap(), None);
    }

    #[test]
    fn numeric_mean_ignores_text() {
        let t = table();
        assert_eq!(numeric_mean(&t, "id").unwrap(), Some(3.0));
        assert_eq!(numeric_mean(&t, "doctor").unwrap(), None);
    }
}

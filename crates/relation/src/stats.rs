//! Per-column and per-bin statistics, computed in one pass over the typed
//! columns.
//!
//! The k-anonymity view of a binned table is "records containing the same
//! value constitute a bin, and the size of every bin is at least k" (§2).
//! These helpers compute value frequencies per column and bin sizes over the
//! full quasi-identifier combination, which the metrics crate turns into
//! information-loss figures, k-anonymity checks and the Fig. 14 statistics.
//!
//! With the columnar table core, frequency and distinct counts read the
//! typed storage directly: integer columns are scanned as native `i64`s and
//! dictionary columns count *codes* (one `u32` compare per row), touching the
//! actual [`Value`]s only once per distinct entry. In particular
//! distinct-counting is a single pass — the previous implementation built the
//! full frequency map and then took its length, scanning the column's values
//! twice.

use crate::column::ColumnData;
use crate::error::RelationError;
use crate::table::Table;
use crate::value::Value;
use std::collections::{BTreeMap, HashSet};

/// Frequency of each distinct value in one column.
///
/// Returned as a `BTreeMap` so iteration order is deterministic, which keeps
/// reports and tests stable. Dictionary columns are counted by code — one
/// integer increment per row — and each distinct value is cloned exactly
/// once.
pub fn value_counts(table: &Table, column: &str) -> Result<BTreeMap<Value, usize>, RelationError> {
    let idx = table.schema().index_of(column)?;
    let mut counts = BTreeMap::new();
    match table.columns()[idx].data() {
        ColumnData::Int(values) => {
            for &v in values {
                *counts.entry(Value::Int(v)).or_insert(0) += 1;
            }
        }
        ColumnData::Dict { dict, codes } => {
            let mut per_code = vec![0usize; dict.len()];
            for &code in codes {
                per_code[code as usize] += 1;
            }
            for (code, &count) in per_code.iter().enumerate() {
                if count > 0 {
                    counts.insert(dict[code].clone(), count);
                }
            }
        }
    }
    Ok(counts)
}

/// Number of distinct values in one column, in a single pass over the rows.
///
/// Stale dictionary entries (left behind by overwrites or deletions) are not
/// counted: only codes actually present in the rows contribute.
pub fn distinct_count(table: &Table, column: &str) -> Result<usize, RelationError> {
    Ok(column_stats(table, column)?.distinct)
}

/// Min, max and distinct count of one column, computed in one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest value under the total [`Value`] order, `None` when empty.
    pub min: Option<Value>,
    /// Largest value under the total [`Value`] order, `None` when empty.
    pub max: Option<Value>,
    /// Number of distinct values among the rows.
    pub distinct: usize,
}

/// Compute [`ColumnStats`] for one column in a single pass over the rows.
///
/// Integer columns scan the native `i64` vector; dictionary columns mark a
/// per-code presence bitmap (one index per row) and then reduce over the
/// distinct entries only.
pub fn column_stats(table: &Table, column: &str) -> Result<ColumnStats, RelationError> {
    let idx = table.schema().index_of(column)?;
    match table.columns()[idx].data() {
        ColumnData::Int(values) => {
            let mut seen = HashSet::with_capacity(values.len());
            let mut min = None;
            let mut max = None;
            for &v in values {
                seen.insert(v);
                min = Some(min.map_or(v, |m: i64| m.min(v)));
                max = Some(max.map_or(v, |m: i64| m.max(v)));
            }
            Ok(ColumnStats {
                min: min.map(Value::Int),
                max: max.map(Value::Int),
                distinct: seen.len(),
            })
        }
        ColumnData::Dict { dict, codes } => {
            let mut present = vec![false; dict.len()];
            for &code in codes {
                present[code as usize] = true;
            }
            let mut distinct = 0;
            let mut min: Option<&Value> = None;
            let mut max: Option<&Value> = None;
            for (code, &p) in present.iter().enumerate() {
                if !p {
                    continue;
                }
                distinct += 1;
                let v = &dict[code];
                min = Some(min.map_or(v, |m| m.min(v)));
                max = Some(max.map_or(v, |m| m.max(v)));
            }
            Ok(ColumnStats { min: min.cloned(), max: max.cloned(), distinct })
        }
    }
}

/// Bin sizes over a combination of columns: every distinct tuple of values in
/// `columns` is one bin; the map value is the number of records in the bin.
pub fn bin_sizes(
    table: &Table,
    columns: &[&str],
) -> Result<BTreeMap<Vec<Value>, usize>, RelationError> {
    let indices: Vec<usize> =
        columns.iter().map(|c| table.schema().index_of(c)).collect::<Result<_, _>>()?;
    let mut bins = BTreeMap::new();
    for row in 0..table.len() {
        let key: Vec<Value> = indices.iter().map(|&i| table.columns()[i].value(row)).collect();
        *bins.entry(key).or_insert(0) += 1;
    }
    Ok(bins)
}

/// Bin sizes over all quasi-identifying columns of the table's schema.
pub fn quasi_bin_sizes(table: &Table) -> Result<BTreeMap<Vec<Value>, usize>, RelationError> {
    let names = table.schema().quasi_names();
    bin_sizes(table, &names)
}

/// The size of the smallest bin over `columns`, or `None` for an empty table.
pub fn min_bin_size(table: &Table, columns: &[&str]) -> Result<Option<usize>, RelationError> {
    Ok(bin_sizes(table, columns)?.values().copied().min())
}

/// Mean of the integer values in a column, ignoring non-integers.
/// Used by the rightful-ownership protocol, which derives the owner's mark
/// from a statistic of the clear-text identifying column (§5.4).
pub fn numeric_mean(table: &Table, column: &str) -> Result<Option<f64>, RelationError> {
    let idx = table.schema().index_of(column)?;
    let (sum, count) = match table.columns()[idx].data() {
        ColumnData::Int(values) => (values.iter().map(|&v| v as f64).sum::<f64>(), values.len()),
        ColumnData::Dict { dict, codes } => {
            // Resolve each distinct entry once; per-row work is a lookup.
            let per_code: Vec<Option<i64>> = dict.iter().map(Value::as_int).collect();
            let mut sum = 0.0;
            let mut count = 0usize;
            for &code in codes {
                if let Some(v) = per_code[code as usize] {
                    sum += v as f64;
                    count += 1;
                }
            }
            (sum, count)
        }
    };
    if count == 0 {
        return Ok(None);
    }
    Ok(Some(sum / count as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnRole, Schema};
    use crate::table::TupleId;

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnRole::Identifying),
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
            ColumnDef::new("doctor", ColumnRole::QuasiCategorical),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        let rows = [
            (1, 30, "Surgeon"),
            (2, 30, "Surgeon"),
            (3, 30, "Nurse"),
            (4, 40, "Nurse"),
            (5, 40, "Nurse"),
        ];
        for (id, age, doc) in rows {
            t.insert(vec![Value::int(id), Value::int(age), Value::text(doc)]).unwrap();
        }
        t
    }

    #[test]
    fn value_counts_per_column() {
        let t = table();
        let counts = value_counts(&t, "doctor").unwrap();
        assert_eq!(counts[&Value::text("Surgeon")], 2);
        assert_eq!(counts[&Value::text("Nurse")], 3);
        assert_eq!(distinct_count(&t, "age").unwrap(), 2);
        assert!(value_counts(&t, "missing").is_err());
    }

    #[test]
    fn column_stats_single_pass() {
        let t = table();
        assert_eq!(
            column_stats(&t, "age").unwrap(),
            ColumnStats { min: Some(Value::int(30)), max: Some(Value::int(40)), distinct: 2 }
        );
        assert_eq!(
            column_stats(&t, "doctor").unwrap(),
            ColumnStats {
                min: Some(Value::text("Nurse")),
                max: Some(Value::text("Surgeon")),
                distinct: 2
            }
        );
        let empty = Table::new(Schema::medical_example());
        assert_eq!(
            column_stats(&empty, "age").unwrap(),
            ColumnStats { min: None, max: None, distinct: 0 }
        );
        assert!(column_stats(&t, "missing").is_err());
    }

    #[test]
    fn distinct_count_ignores_stale_dictionary_entries() {
        // Overwriting the only "Surgeon" rows leaves the entry interned but
        // unreferenced; the live distinct count must not include it.
        let mut t = table();
        t.set_value(TupleId(0), "doctor", Value::text("Nurse")).unwrap();
        t.set_value(TupleId(1), "doctor", Value::text("Nurse")).unwrap();
        assert_eq!(distinct_count(&t, "doctor").unwrap(), 1);
        let counts = value_counts(&t, "doctor").unwrap();
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&Value::text("Nurse")], 5);
    }

    #[test]
    fn bin_sizes_over_combination() {
        let t = table();
        let bins = bin_sizes(&t, &["age", "doctor"]).unwrap();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[&vec![Value::int(30), Value::text("Surgeon")]], 2);
        assert_eq!(bins[&vec![Value::int(30), Value::text("Nurse")]], 1);
        assert_eq!(bins[&vec![Value::int(40), Value::text("Nurse")]], 2);
        assert_eq!(min_bin_size(&t, &["age", "doctor"]).unwrap(), Some(1));
    }

    #[test]
    fn quasi_bin_sizes_uses_schema_roles() {
        let t = table();
        let bins = quasi_bin_sizes(&t).unwrap();
        // quasi columns are age and doctor → same as the explicit call.
        assert_eq!(bins, bin_sizes(&t, &["age", "doctor"]).unwrap());
    }

    #[test]
    fn min_bin_size_empty_table() {
        let t = Table::new(Schema::medical_example());
        assert_eq!(min_bin_size(&t, &["age"]).unwrap(), None);
    }

    #[test]
    fn numeric_mean_ignores_text() {
        let t = table();
        assert_eq!(numeric_mean(&t, "id").unwrap(), Some(3.0));
        assert_eq!(numeric_mean(&t, "doctor").unwrap(), None);
    }

    #[test]
    fn numeric_mean_over_mixed_dictionary_column() {
        // A promoted column mixing ints and intervals averages the ints only.
        let mut t = table();
        t.set_value(TupleId(0), "age", Value::interval(30, 40)).unwrap();
        assert_eq!(numeric_mean(&t, "age").unwrap(), Some((30 + 30 + 40 + 40) as f64 / 4.0));
    }
}

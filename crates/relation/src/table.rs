//! The columnar table.
//!
//! A [`Table`] is an append-oriented store with stable [`TupleId`]s. The id
//! survives deletions of other tuples, which matters for the attack models
//! (the attacker deletes or alters tuples, the detector must still find the
//! watermarked survivors) and for the interference analysis (§6), which tracks
//! how individual bins gain or lose members.
//!
//! Storage is column-major: one typed [`Column`] per schema column (native
//! `i64` vectors for integer data, dictionary-encoded code vectors for
//! everything else — see the [`column`](crate::column) module), plus one id
//! vector. The row-major [`Tuple`] remains as a materialized view for callers
//! that want whole rows ([`Table::get`], [`Table::iter`], [`Table::tuples`]);
//! the hot paths read [`Table::columns`] directly.

use crate::column::Column;
use crate::error::RelationError;
use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A stable identifier for a tuple within one table instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleId(pub u64);

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A single materialized row: a tuple id plus one value per schema column.
///
/// With the columnar core this is a *view*, produced on demand; mutating a
/// `Tuple` does not write back to the table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Stable id of this tuple.
    pub id: TupleId,
    /// Values, one per column, in schema order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// The value at column `index`, if in range.
    pub fn value(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }
}

/// An in-memory relational table with columnar storage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    ids: Vec<TupleId>,
    columns: Vec<Column>,
    next_id: u64,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|_| Column::new()).collect();
        Table { schema, ids: Vec::new(), columns, next_id: 0 }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples currently stored.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the table holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The typed column vectors, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// One typed column by schema index.
    pub fn column(&self, index: usize) -> Option<&Column> {
        self.columns.get(index)
    }

    /// Mutable access to one typed column by schema index, for batch kernels
    /// that intern dictionary values or apply code edits. Callers must not
    /// change the column's row count.
    pub fn column_mut(&mut self, index: usize) -> Option<&mut Column> {
        self.columns.get_mut(index)
    }

    /// Insert a tuple, returning its assigned id.
    ///
    /// Fails with [`RelationError::ArityMismatch`] if the number of values
    /// does not match the schema.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<TupleId, RelationError> {
        if values.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                actual: values.len(),
            });
        }
        let id = TupleId(self.next_id);
        self.next_id += 1;
        self.ids.push(id);
        for (column, value) in self.columns.iter_mut().zip(&values) {
            column.push(value);
        }
        Ok(id)
    }

    /// Insert many tuples at once. Stops at the first arity error.
    pub fn insert_all(
        &mut self,
        tuples: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Vec<TupleId>, RelationError> {
        let mut ids = Vec::new();
        for values in tuples {
            ids.push(self.insert(values)?);
        }
        Ok(ids)
    }

    /// Materialize the row at position `row` (not id) as a [`Tuple`].
    pub fn row(&self, row: usize) -> Option<Tuple> {
        let id = *self.ids.get(row)?;
        let values = self.columns.iter().map(|c| c.value(row)).collect();
        Some(Tuple { id, values })
    }

    /// The position of tuple `id`, if present.
    pub fn row_of(&self, id: TupleId) -> Option<usize> {
        self.ids.iter().position(|&t| t == id)
    }

    /// The value at (`row` position, `column` index), materialized.
    pub fn value_at(&self, row: usize, column: usize) -> Option<Value> {
        let c = self.columns.get(column)?;
        if row < c.len() {
            Some(c.value(row))
        } else {
            None
        }
    }

    /// Iterate over all tuples in insertion order, materializing each row.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.len()).map(|row| {
            let values = self.columns.iter().map(|c| c.value(row)).collect();
            Tuple { id: self.ids[row], values }
        })
    }

    /// All tuples materialized as rows, in insertion order.
    ///
    /// This is the row-major compatibility view; it clones every cell. Hot
    /// paths (binning, watermark kernels, the engine) read
    /// [`Table::columns`] instead — medlint's `no-tuple-materialization`
    /// rule enforces that in the migrated modules.
    pub fn tuples(&self) -> Vec<Tuple> {
        self.iter().collect()
    }

    /// Fetch a tuple by id, materialized.
    pub fn get(&self, id: TupleId) -> Option<Tuple> {
        self.row(self.row_of(id)?)
    }

    /// Read the value of column `column` in tuple `id`, materialized.
    pub fn value(&self, id: TupleId, column: &str) -> Result<Value, RelationError> {
        let idx = self.schema.index_of(column)?;
        let row = self.row_of(id).ok_or(RelationError::UnknownTuple(id.0))?;
        Ok(self.columns[idx].value(row))
    }

    /// Overwrite the value of column `column` in tuple `id`.
    pub fn set_value(
        &mut self,
        id: TupleId,
        column: &str,
        value: Value,
    ) -> Result<(), RelationError> {
        let idx = self.schema.index_of(column)?;
        let row = self.row_of(id).ok_or(RelationError::UnknownTuple(id.0))?;
        self.columns[idx].set(row, &value);
        Ok(())
    }

    /// All values of one column, materialized in row order.
    pub fn column_values(&self, column: &str) -> Result<Vec<Value>, RelationError> {
        let idx = self.schema.index_of(column)?;
        let c = &self.columns[idx];
        Ok((0..c.len()).map(|row| c.value(row)).collect())
    }

    /// Ids of tuples satisfying `predicate`.
    pub fn select(&self, predicate: &Predicate) -> Result<Vec<TupleId>, RelationError> {
        let mut out = Vec::new();
        for tuple in self.iter() {
            if predicate.matches(&self.schema, &tuple)? {
                out.push(tuple.id);
            }
        }
        Ok(out)
    }

    /// Delete tuples satisfying `predicate`; returns the number removed.
    /// This is the `DELETE FROM R WHERE ...` used by the subset-deletion
    /// attack of §7.2.
    pub fn delete_where(&mut self, predicate: &Predicate) -> Result<usize, RelationError> {
        let victims = self.select(predicate)?;
        Ok(self.delete_ids(&victims))
    }

    /// Delete specific tuples by id; returns the number removed.
    pub fn delete_ids(&mut self, ids: &[TupleId]) -> usize {
        let victim_set: std::collections::HashSet<TupleId> = ids.iter().copied().collect();
        let keep: Vec<bool> = self.ids.iter().map(|id| !victim_set.contains(id)).collect();
        let removed = keep.iter().filter(|&&k| !k).count();
        if removed == 0 {
            return 0;
        }
        for column in &mut self.columns {
            column.retain_rows(&keep);
        }
        let mut row = 0;
        self.ids.retain(|_| {
            let k = keep[row];
            row += 1;
            k
        });
        removed
    }

    /// All tuple ids in row order.
    pub fn ids(&self) -> Vec<TupleId> {
        self.ids.clone()
    }

    /// A deep copy of the table with the same ids (used to snapshot the
    /// pre-watermarking state for interference measurements).
    pub fn snapshot(&self) -> Table {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnData;
    use crate::schema::{ColumnDef, ColumnRole};

    fn small_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("ssn", ColumnRole::Identifying),
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
            ColumnDef::new("doctor", ColumnRole::QuasiCategorical),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::text("s1"), Value::int(34), Value::text("Surgeon")]).unwrap();
        t.insert(vec![Value::text("s2"), Value::int(61), Value::text("Pharmacist")]).unwrap();
        t.insert(vec![Value::text("s3"), Value::int(29), Value::text("Surgeon")]).unwrap();
        t
    }

    #[test]
    fn insert_assigns_monotone_ids() {
        let t = small_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.ids(), vec![TupleId(0), TupleId(1), TupleId(2)]);
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut t = small_table();
        let err = t.insert(vec![Value::int(1)]).unwrap_err();
        assert_eq!(err, RelationError::ArityMismatch { expected: 3, actual: 1 });
    }

    #[test]
    fn insert_all_propagates_errors() {
        let mut t = small_table();
        let res = t.insert_all(vec![
            vec![Value::text("s4"), Value::int(40), Value::text("Nurse")],
            vec![Value::int(1)],
        ]);
        assert!(res.is_err());
        // The valid tuple before the error was inserted.
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn value_access_and_update() {
        let mut t = small_table();
        assert_eq!(t.value(TupleId(1), "age").unwrap(), Value::int(61));
        t.set_value(TupleId(1), "age", Value::interval(60, 70)).unwrap();
        assert_eq!(t.value(TupleId(1), "age").unwrap(), Value::interval(60, 70));
        assert!(t.value(TupleId(1), "nope").is_err());
        assert!(t.value(TupleId(99), "age").is_err());
        assert!(t.set_value(TupleId(99), "age", Value::Null).is_err());
    }

    #[test]
    fn column_values_in_row_order() {
        let t = small_table();
        let ages: Vec<i64> =
            t.column_values("age").unwrap().iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(ages, vec![34, 61, 29]);
    }

    #[test]
    fn columnar_layout_is_typed() {
        let t = small_table();
        // Integer data stays native; categorical data is dictionary-coded.
        assert!(matches!(t.column(1).unwrap().data(), ColumnData::Int([34, 61, 29])));
        let ColumnData::Dict { dict, codes } = t.column(2).unwrap().data() else {
            panic!("categorical column should be dictionary-encoded");
        };
        assert_eq!(dict.len(), 2, "two distinct doctors interned once");
        assert_eq!(codes, &[0, 1, 0]);
    }

    #[test]
    fn delete_ids_keeps_remaining_ids_stable() {
        let mut t = small_table();
        assert_eq!(t.delete_ids(&[TupleId(1)]), 1);
        assert_eq!(t.ids(), vec![TupleId(0), TupleId(2)]);
        assert!(t.get(TupleId(1)).is_none());
        assert!(t.get(TupleId(2)).is_some());
        // Deleting again is a no-op.
        assert_eq!(t.delete_ids(&[TupleId(1)]), 0);
    }

    #[test]
    fn new_inserts_after_delete_get_fresh_ids() {
        let mut t = small_table();
        t.delete_ids(&[TupleId(2)]);
        let id = t.insert(vec![Value::text("s4"), Value::int(50), Value::text("Nurse")]).unwrap();
        assert_eq!(id, TupleId(3), "ids are never reused");
    }

    #[test]
    fn select_and_delete_where() {
        let mut t = small_table();
        let pred = Predicate::eq("doctor", Value::text("Surgeon"));
        let hits = t.select(&pred).unwrap();
        assert_eq!(hits, vec![TupleId(0), TupleId(2)]);
        assert_eq!(t.delete_where(&pred).unwrap(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().next().unwrap().id, TupleId(1));
    }

    #[test]
    fn snapshot_is_independent() {
        let mut t = small_table();
        let snap = t.snapshot();
        t.set_value(TupleId(0), "age", Value::int(99)).unwrap();
        assert_eq!(snap.value(TupleId(0), "age").unwrap(), Value::int(34));
        assert_eq!(t.value(TupleId(0), "age").unwrap(), Value::int(99));
    }

    #[test]
    fn materialized_views_expose_rows_in_order() {
        let t = small_table();
        let ids: Vec<TupleId> = t.tuples().iter().map(|tp| tp.id).collect();
        assert_eq!(ids, t.ids());
        for (row, tuple) in t.iter().enumerate() {
            assert_eq!(t.row(row).unwrap(), tuple);
            for (col, value) in tuple.values.iter().enumerate() {
                assert_eq!(t.value_at(row, col).as_ref(), Some(value));
            }
        }
        assert!(t.row(3).is_none());
        assert!(t.value_at(0, 9).is_none());
        assert!(t.value_at(9, 0).is_none());
    }

    #[test]
    fn code_edits_write_through_to_values() {
        // The embed kernel's write path: intern a replacement value, then
        // overwrite rows by dictionary code.
        let mut t = small_table();
        let dict = t.column_mut(2).unwrap().promote();
        let nurse = dict.intern(&Value::text("Nurse"));
        dict.set_code(0, nurse);
        assert_eq!(t.value(TupleId(0), "doctor").unwrap(), Value::text("Nurse"));
        assert_eq!(t.value(TupleId(1), "doctor").unwrap(), Value::text("Pharmacist"));
    }

    #[test]
    fn is_empty_reflects_contents() {
        let schema = Schema::medical_example();
        let t = Table::new(schema);
        assert!(t.is_empty());
        assert!(!small_table().is_empty());
    }
}

//! The row-store table.
//!
//! A [`Table`] is an append-oriented row store with stable [`TupleId`]s. The
//! id survives deletions of other tuples, which matters for the attack models
//! (the attacker deletes or alters tuples, the detector must still find the
//! watermarked survivors) and for the interference analysis (§6), which tracks
//! how individual bins gain or lose members.

use crate::error::RelationError;
use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A stable identifier for a tuple within one table instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleId(pub u64);

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A single row: a tuple id plus one value per schema column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Stable id of this tuple.
    pub id: TupleId,
    /// Values, one per column, in schema order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// The value at column `index`, if in range.
    pub fn value(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }
}

/// An in-memory relational table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    rows: Vec<Tuple>,
    next_id: u64,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table { schema, rows: Vec::new(), next_id: 0 }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples currently stored.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple, returning its assigned id.
    ///
    /// Fails with [`RelationError::ArityMismatch`] if the number of values
    /// does not match the schema.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<TupleId, RelationError> {
        if values.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                actual: values.len(),
            });
        }
        let id = TupleId(self.next_id);
        self.next_id += 1;
        self.rows.push(Tuple { id, values });
        Ok(id)
    }

    /// Insert many tuples at once. Stops at the first arity error.
    pub fn insert_all(
        &mut self,
        tuples: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Vec<TupleId>, RelationError> {
        let mut ids = Vec::new();
        for values in tuples {
            ids.push(self.insert(values)?);
        }
        Ok(ids)
    }

    /// Iterate over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// All tuples as a slice, in insertion order. Row chunks handed to
    /// parallel workers are sub-slices of this.
    pub fn tuples(&self) -> &[Tuple] {
        &self.rows
    }

    /// All tuples as a mutable slice, in insertion order. The chunk-parallel
    /// protection engine splits this with `chunks_mut` so each worker edits a
    /// disjoint row range in place. Callers must preserve each tuple's arity
    /// (as with [`Table::iter_mut`]).
    pub fn tuples_mut(&mut self) -> &mut [Tuple] {
        &mut self.rows
    }

    /// Iterate mutably over all tuples.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Tuple> {
        self.rows.iter_mut()
    }

    /// Fetch a tuple by id.
    pub fn get(&self, id: TupleId) -> Option<&Tuple> {
        self.rows.iter().find(|t| t.id == id)
    }

    /// Fetch a tuple mutably by id.
    pub fn get_mut(&mut self, id: TupleId) -> Option<&mut Tuple> {
        self.rows.iter_mut().find(|t| t.id == id)
    }

    /// Read the value of column `column` in tuple `id`.
    pub fn value(&self, id: TupleId, column: &str) -> Result<&Value, RelationError> {
        let idx = self.schema.index_of(column)?;
        let tuple = self.get(id).ok_or(RelationError::UnknownTuple(id.0))?;
        Ok(&tuple.values[idx])
    }

    /// Overwrite the value of column `column` in tuple `id`.
    pub fn set_value(
        &mut self,
        id: TupleId,
        column: &str,
        value: Value,
    ) -> Result<(), RelationError> {
        let idx = self.schema.index_of(column)?;
        let tuple = self.get_mut(id).ok_or(RelationError::UnknownTuple(id.0))?;
        tuple.values[idx] = value;
        Ok(())
    }

    /// All values of one column, in row order.
    pub fn column_values(&self, column: &str) -> Result<Vec<&Value>, RelationError> {
        let idx = self.schema.index_of(column)?;
        Ok(self.rows.iter().map(|t| &t.values[idx]).collect())
    }

    /// Ids of tuples satisfying `predicate`.
    pub fn select(&self, predicate: &Predicate) -> Result<Vec<TupleId>, RelationError> {
        let mut out = Vec::new();
        for tuple in &self.rows {
            if predicate.matches(&self.schema, tuple)? {
                out.push(tuple.id);
            }
        }
        Ok(out)
    }

    /// Delete tuples satisfying `predicate`; returns the number removed.
    /// This is the `DELETE FROM R WHERE ...` used by the subset-deletion
    /// attack of §7.2.
    pub fn delete_where(&mut self, predicate: &Predicate) -> Result<usize, RelationError> {
        let victims = self.select(predicate)?;
        let victim_set: std::collections::HashSet<TupleId> = victims.iter().copied().collect();
        let before = self.rows.len();
        self.rows.retain(|t| !victim_set.contains(&t.id));
        Ok(before - self.rows.len())
    }

    /// Delete specific tuples by id; returns the number removed.
    pub fn delete_ids(&mut self, ids: &[TupleId]) -> usize {
        let victim_set: std::collections::HashSet<TupleId> = ids.iter().copied().collect();
        let before = self.rows.len();
        self.rows.retain(|t| !victim_set.contains(&t.id));
        before - self.rows.len()
    }

    /// All tuple ids in row order.
    pub fn ids(&self) -> Vec<TupleId> {
        self.rows.iter().map(|t| t.id).collect()
    }

    /// A deep copy of the table with the same ids (used to snapshot the
    /// pre-watermarking state for interference measurements).
    pub fn snapshot(&self) -> Table {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnRole};

    fn small_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("ssn", ColumnRole::Identifying),
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
            ColumnDef::new("doctor", ColumnRole::QuasiCategorical),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::text("s1"), Value::int(34), Value::text("Surgeon")]).unwrap();
        t.insert(vec![Value::text("s2"), Value::int(61), Value::text("Pharmacist")]).unwrap();
        t.insert(vec![Value::text("s3"), Value::int(29), Value::text("Surgeon")]).unwrap();
        t
    }

    #[test]
    fn insert_assigns_monotone_ids() {
        let t = small_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.ids(), vec![TupleId(0), TupleId(1), TupleId(2)]);
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut t = small_table();
        let err = t.insert(vec![Value::int(1)]).unwrap_err();
        assert_eq!(err, RelationError::ArityMismatch { expected: 3, actual: 1 });
    }

    #[test]
    fn insert_all_propagates_errors() {
        let mut t = small_table();
        let res = t.insert_all(vec![
            vec![Value::text("s4"), Value::int(40), Value::text("Nurse")],
            vec![Value::int(1)],
        ]);
        assert!(res.is_err());
        // The valid tuple before the error was inserted.
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn value_access_and_update() {
        let mut t = small_table();
        assert_eq!(t.value(TupleId(1), "age").unwrap(), &Value::int(61));
        t.set_value(TupleId(1), "age", Value::interval(60, 70)).unwrap();
        assert_eq!(t.value(TupleId(1), "age").unwrap(), &Value::interval(60, 70));
        assert!(t.value(TupleId(1), "nope").is_err());
        assert!(t.value(TupleId(99), "age").is_err());
        assert!(t.set_value(TupleId(99), "age", Value::Null).is_err());
    }

    #[test]
    fn column_values_in_row_order() {
        let t = small_table();
        let ages: Vec<i64> =
            t.column_values("age").unwrap().iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(ages, vec![34, 61, 29]);
    }

    #[test]
    fn delete_ids_keeps_remaining_ids_stable() {
        let mut t = small_table();
        assert_eq!(t.delete_ids(&[TupleId(1)]), 1);
        assert_eq!(t.ids(), vec![TupleId(0), TupleId(2)]);
        assert!(t.get(TupleId(1)).is_none());
        assert!(t.get(TupleId(2)).is_some());
        // Deleting again is a no-op.
        assert_eq!(t.delete_ids(&[TupleId(1)]), 0);
    }

    #[test]
    fn new_inserts_after_delete_get_fresh_ids() {
        let mut t = small_table();
        t.delete_ids(&[TupleId(2)]);
        let id = t.insert(vec![Value::text("s4"), Value::int(50), Value::text("Nurse")]).unwrap();
        assert_eq!(id, TupleId(3), "ids are never reused");
    }

    #[test]
    fn select_and_delete_where() {
        let mut t = small_table();
        let pred = Predicate::eq("doctor", Value::text("Surgeon"));
        let hits = t.select(&pred).unwrap();
        assert_eq!(hits, vec![TupleId(0), TupleId(2)]);
        assert_eq!(t.delete_where(&pred).unwrap(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().next().unwrap().id, TupleId(1));
    }

    #[test]
    fn snapshot_is_independent() {
        let mut t = small_table();
        let snap = t.snapshot();
        t.set_value(TupleId(0), "age", Value::int(99)).unwrap();
        assert_eq!(snap.value(TupleId(0), "age").unwrap(), &Value::int(34));
        assert_eq!(t.value(TupleId(0), "age").unwrap(), &Value::int(99));
    }

    #[test]
    fn tuple_slices_expose_rows_in_order() {
        let mut t = small_table();
        let ids: Vec<TupleId> = t.tuples().iter().map(|tp| tp.id).collect();
        assert_eq!(ids, t.ids());
        // Mutating through a chunk of the slice edits the table in place.
        let mid = t.len() / 2;
        let (_, back) = t.tuples_mut().split_at_mut(mid);
        for tuple in back {
            tuple.values[1] = Value::int(0);
        }
        assert_eq!(t.value(TupleId(2), "age").unwrap(), &Value::int(0));
        assert_eq!(t.value(TupleId(0), "age").unwrap(), &Value::int(34));
    }

    #[test]
    fn is_empty_reflects_contents() {
        let schema = Schema::medical_example();
        let t = Table::new(schema);
        assert!(t.is_empty());
        assert!(!small_table().is_empty());
    }
}

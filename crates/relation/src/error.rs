//! Error type for the relational substrate.

/// Errors raised by schema and table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// A tuple had the wrong number of values for the schema.
    ArityMismatch {
        /// Number of columns the schema defines.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// Two columns in a schema share a name.
    DuplicateColumn(String),
    /// A tuple id was not found in the table.
    UnknownTuple(u64),
    /// A value had an unexpected type for the operation.
    TypeMismatch {
        /// Human-readable description of what was expected.
        expected: &'static str,
        /// Display form of the offending value.
        found: String,
    },
    /// A CSV line could not be parsed.
    CsvParse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
}

impl std::fmt::Display for RelationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelationError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            RelationError::ArityMismatch { expected, actual } => {
                write!(f, "arity mismatch: schema has {expected} columns, tuple has {actual}")
            }
            RelationError::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
            RelationError::UnknownTuple(id) => write!(f, "unknown tuple id: {id}"),
            RelationError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            RelationError::CsvParse { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_details() {
        assert!(RelationError::UnknownColumn("age".into()).to_string().contains("age"));
        assert!(RelationError::ArityMismatch { expected: 6, actual: 5 }.to_string().contains('6'));
        assert!(RelationError::UnknownTuple(42).to_string().contains("42"));
        assert!(RelationError::CsvParse { line: 3, message: "bad int".into() }
            .to_string()
            .contains("line 3"));
    }
}

//! Plain-text (CSV-like) import and export.
//!
//! Deliberately minimal: comma-separated with double-quote escaping only for
//! values that themselves contain a comma (generalized numeric intervals such
//! as `[30,40)`), header row carries the column names. Useful for eyeballing
//! generated data sets and for shipping the protected table to an
//! "outsourcee" in the examples.

use crate::error::RelationError;
use crate::schema::{ColumnDef, ColumnRole, Schema};
use crate::table::Table;
use crate::value::Value;

/// Serialize a table to CSV text: a header of column names followed by one
/// line per tuple, values in display form.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<&str> = table.schema().columns().iter().map(|c| c.name.as_str()).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for tuple in table.iter() {
        let line: Vec<String> = tuple.values.iter().map(|v| escape_field(&v.to_string())).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// Quote a field if it contains a comma or a double quote.
fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Split a CSV line honouring double-quoted fields.
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut current));
            }
            other => current.push(other),
        }
    }
    fields.push(current);
    fields
}

/// Parse CSV text produced by [`to_csv`] back into a table.
///
/// `roles` assigns a [`ColumnRole`] to each header column by name; columns not
/// listed default to [`ColumnRole::NonIdentifying`].
pub fn from_csv(text: &str, roles: &[(&str, ColumnRole)]) -> Result<Table, RelationError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or(RelationError::CsvParse { line: 1, message: "missing header".into() })?;
    let columns: Vec<ColumnDef> = header
        .split(',')
        .map(|name| {
            let role = roles
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, r)| *r)
                .unwrap_or(ColumnRole::NonIdentifying);
            ColumnDef::new(name.trim(), role)
        })
        .collect();
    let schema = Schema::new(columns)?;
    let arity = schema.arity();
    let mut table = Table::new(schema);
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let values: Vec<Value> = split_line(line).iter().map(|f| Value::parse(f)).collect();
        if values.len() != arity {
            return Err(RelationError::CsvParse {
                line: i + 1,
                message: format!("expected {arity} fields, found {}", values.len()),
            });
        }
        table.insert(values)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(Schema::medical_example());
        t.insert(vec![
            Value::text("111-22-3333"),
            Value::int(34),
            Value::int(53001),
            Value::text("Surgeon"),
            Value::text("428.0"),
            Value::text("Lisinopril"),
        ])
        .unwrap();
        t.insert(vec![
            Value::text("222-33-4444"),
            Value::interval(30, 40),
            Value::int(53002),
            Value::text("Nurse"),
            Value::text("401.9"),
            Value::Null,
        ])
        .unwrap();
        t
    }

    #[test]
    fn to_csv_has_header_and_rows() {
        let csv = to_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "ssn,age,zip_code,doctor,symptom,prescription");
        assert_eq!(lines.count(), 2);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let original = sample();
        let csv = to_csv(&original);
        let roles = [
            ("ssn", ColumnRole::Identifying),
            ("age", ColumnRole::QuasiNumeric),
            ("zip_code", ColumnRole::QuasiNumeric),
            ("doctor", ColumnRole::QuasiCategorical),
            ("symptom", ColumnRole::QuasiCategorical),
            ("prescription", ColumnRole::QuasiCategorical),
        ];
        let parsed = from_csv(&csv, &roles).unwrap();
        assert_eq!(parsed.len(), original.len());
        assert_eq!(parsed.value(crate::TupleId(1), "age").unwrap(), &Value::interval(30, 40));
        assert_eq!(parsed.value(crate::TupleId(1), "prescription").unwrap(), &Value::Null);
        assert_eq!(parsed.schema().column_by_name("ssn").unwrap().role, ColumnRole::Identifying);
    }

    #[test]
    fn symptom_codes_stay_text() {
        // ICD-9-like codes such as "428.0" must not be mangled into numbers.
        let csv = to_csv(&sample());
        let parsed = from_csv(&csv, &[]).unwrap();
        assert_eq!(parsed.value(crate::TupleId(0), "symptom").unwrap(), &Value::text("428.0"));
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(from_csv("", &[]).is_err());
    }

    #[test]
    fn arity_mismatch_reports_line() {
        let text = "a,b\n1,2\n3\n";
        let err = from_csv(text, &[]).unwrap_err();
        match err {
            RelationError::CsvParse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "a,b\n1,2\n\n3,4\n";
        let t = from_csv(text, &[]).unwrap();
        assert_eq!(t.len(), 2);
    }
}

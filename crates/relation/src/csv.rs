//! Plain-text (CSV-like) import and export.
//!
//! Deliberately minimal: comma-separated with double-quote escaping only for
//! values that themselves contain a comma (generalized numeric intervals such
//! as `[30,40)`), header row carries the column names. Useful for eyeballing
//! generated data sets and for shipping the protected table to an
//! "outsourcee" in the examples.

use crate::error::RelationError;
use crate::schema::{ColumnDef, ColumnRole, Schema};
use crate::table::Table;
use crate::value::Value;

/// Serialize a table to CSV text: a header of column names followed by one
/// line per tuple, values in display form.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<&str> = table.schema().columns().iter().map(|c| c.name.as_str()).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for tuple in table.iter() {
        let line: Vec<String> = tuple.values.iter().map(|v| escape_field(&v.to_string())).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// Quote a field if it contains a comma, a double quote, or a line break
/// (all three would otherwise corrupt the record structure on re-parse).
fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// One parsed record: the 1-based physical line on which it starts, its
/// fields, and whether any field was explicitly quoted (a lone `""` record
/// is a deliberate empty value, not a blank line).
struct Record {
    line: usize,
    fields: Vec<String>,
    quoted: bool,
}

/// Split CSV text into records, honouring double-quoted fields. Inside
/// quotes, commas, escaped quotes (`""`) and line breaks are field content;
/// outside quotes, `\n` and `\r\n` both terminate a record. An unterminated
/// quote at end of input is an error.
fn parse_records(text: &str) -> Result<Vec<Record>, RelationError> {
    let mut records = Vec::new();
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut quoted = false;
    let mut line = 1usize;
    let mut record_line = 1usize;
    // True once the current record has any content (a character, a quote or
    // a comma), so a trailing newline does not emit a phantom empty record.
    let mut pending = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => {
                in_quotes = true;
                quoted = true;
                pending = true;
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut current));
                pending = true;
            }
            '\r' | '\n' if !in_quotes => {
                // CRLF (or a stray CR) terminates the record exactly like LF.
                if c == '\r' && chars.peek() == Some(&'\n') {
                    chars.next();
                }
                line += 1;
                if pending {
                    fields.push(std::mem::take(&mut current));
                    records.push(Record {
                        line: record_line,
                        fields: std::mem::take(&mut fields),
                        quoted,
                    });
                    pending = false;
                    quoted = false;
                }
                record_line = line;
            }
            other => {
                if other == '\n' {
                    line += 1;
                }
                current.push(other);
                pending = true;
            }
        }
    }
    if in_quotes {
        return Err(RelationError::CsvParse {
            line: record_line,
            message: "unterminated quoted field".into(),
        });
    }
    if pending {
        fields.push(current);
        records.push(Record { line: record_line, fields, quoted });
    }
    Ok(records)
}

/// Parse CSV text produced by [`to_csv`] back into a table.
///
/// `roles` assigns a [`ColumnRole`] to each header column by name; columns not
/// listed default to [`ColumnRole::NonIdentifying`]. Quoted fields may carry
/// embedded commas, escaped quotes and line breaks; records may be separated
/// by `\n` or `\r\n`.
pub fn from_csv(text: &str, roles: &[(&str, ColumnRole)]) -> Result<Table, RelationError> {
    let records = parse_records(text)?;
    let mut iter = records.into_iter();
    let header =
        iter.next().ok_or(RelationError::CsvParse { line: 1, message: "missing header".into() })?;
    let columns: Vec<ColumnDef> = header
        .fields
        .iter()
        .map(|name| {
            let name = name.trim();
            let role = roles
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, r)| *r)
                .unwrap_or(ColumnRole::NonIdentifying);
            ColumnDef::new(name, role)
        })
        .collect();
    let schema = Schema::new(columns)?;
    let arity = schema.arity();
    let mut table = Table::new(schema);
    for record in iter {
        if record.fields.len() == 1 && !record.quoted && record.fields[0].trim().is_empty() {
            // A blank (or whitespace-only) line is not a tuple; an explicitly
            // quoted empty field (`""`) is.
            continue;
        }
        let values: Vec<Value> = record.fields.iter().map(|f| Value::parse(f)).collect();
        if values.len() != arity {
            return Err(RelationError::CsvParse {
                line: record.line,
                message: format!("expected {arity} fields, found {}", values.len()),
            });
        }
        table.insert(values)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(Schema::medical_example());
        t.insert(vec![
            Value::text("111-22-3333"),
            Value::int(34),
            Value::int(53001),
            Value::text("Surgeon"),
            Value::text("428.0"),
            Value::text("Lisinopril"),
        ])
        .unwrap();
        t.insert(vec![
            Value::text("222-33-4444"),
            Value::interval(30, 40),
            Value::int(53002),
            Value::text("Nurse"),
            Value::text("401.9"),
            Value::Null,
        ])
        .unwrap();
        t
    }

    #[test]
    fn to_csv_has_header_and_rows() {
        let csv = to_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "ssn,age,zip_code,doctor,symptom,prescription");
        assert_eq!(lines.count(), 2);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let original = sample();
        let csv = to_csv(&original);
        let roles = [
            ("ssn", ColumnRole::Identifying),
            ("age", ColumnRole::QuasiNumeric),
            ("zip_code", ColumnRole::QuasiNumeric),
            ("doctor", ColumnRole::QuasiCategorical),
            ("symptom", ColumnRole::QuasiCategorical),
            ("prescription", ColumnRole::QuasiCategorical),
        ];
        let parsed = from_csv(&csv, &roles).unwrap();
        assert_eq!(parsed.len(), original.len());
        assert_eq!(parsed.value(crate::TupleId(1), "age").unwrap(), Value::interval(30, 40));
        assert_eq!(parsed.value(crate::TupleId(1), "prescription").unwrap(), Value::Null);
        assert_eq!(parsed.schema().column_by_name("ssn").unwrap().role, ColumnRole::Identifying);
    }

    #[test]
    fn symptom_codes_stay_text() {
        // ICD-9-like codes such as "428.0" must not be mangled into numbers.
        let csv = to_csv(&sample());
        let parsed = from_csv(&csv, &[]).unwrap();
        assert_eq!(parsed.value(crate::TupleId(0), "symptom").unwrap(), Value::text("428.0"));
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(from_csv("", &[]).is_err());
    }

    #[test]
    fn arity_mismatch_reports_line() {
        let text = "a,b\n1,2\n3\n";
        let err = from_csv(text, &[]).unwrap_err();
        match err {
            RelationError::CsvParse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "a,b\n1,2\n\n3,4\n";
        let t = from_csv(text, &[]).unwrap();
        assert_eq!(t.len(), 2);
    }

    /// Adversarial field contents must survive parse → write → parse
    /// losslessly: embedded commas, embedded double quotes, embedded line
    /// breaks (LF and CRLF), and combinations.
    #[test]
    fn quoted_fields_roundtrip_losslessly() {
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnRole::Identifying),
            ColumnDef::new("note", ColumnRole::NonIdentifying),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for note in [
            "plain",
            "with,comma",
            "with \"quotes\"",
            "\"leading and trailing\"",
            "comma, \"and\" quote",
            "line\nbreak",
            "crlf\r\nbreak",
            "trailing,",
            ",leading",
            "a,\"b\",c",
        ] {
            t.insert(vec![Value::text("x"), Value::text(note)]).unwrap();
        }
        let once = to_csv(&t);
        let parsed = from_csv(&once, &[("id", ColumnRole::Identifying)]).unwrap();
        assert_eq!(parsed.len(), t.len());
        for (a, b) in t.iter().zip(parsed.iter()) {
            assert_eq!(a.values[1], b.values[1]);
        }
        // Idempotent: a second round-trip reproduces the same text.
        let twice = to_csv(&parsed);
        assert_eq!(once, twice);
    }

    #[test]
    fn quoted_empty_field_is_a_row_not_a_blank_line() {
        // `""` on its own line is a deliberate empty value in a one-column
        // table; only genuinely blank lines are skipped.
        let text = "note\n\"\"\nx\n";
        let t = from_csv(text, &[]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(crate::TupleId(0), "note").unwrap(), Value::Null);
        assert_eq!(t.value(crate::TupleId(1), "note").unwrap(), Value::text("x"));
    }

    #[test]
    fn crlf_record_separators_parse_like_lf() {
        let lf = "a,b\n1,x\n2,y\n";
        let crlf = "a,b\r\n1,x\r\n2,y\r\n";
        let t_lf = from_csv(lf, &[]).unwrap();
        let t_crlf = from_csv(crlf, &[]).unwrap();
        assert_eq!(t_lf.len(), t_crlf.len());
        for (a, b) in t_lf.iter().zip(t_crlf.iter()) {
            assert_eq!(a.values, b.values);
        }
        // Mixed separators in one file also work.
        let mixed = "a,b\r\n1,x\n2,y\r\n";
        assert_eq!(from_csv(mixed, &[]).unwrap().len(), 2);
    }

    #[test]
    fn quoted_header_names_get_their_roles() {
        // A header field that needs quoting (or carries padding) must still
        // match its role entry after unquoting and trimming.
        let text = "\"ssn\", age \n123-45-6789,30\n";
        let t =
            from_csv(text, &[("ssn", ColumnRole::Identifying), ("age", ColumnRole::QuasiNumeric)])
                .unwrap();
        assert_eq!(t.schema().column_by_name("ssn").unwrap().role, ColumnRole::Identifying);
        assert_eq!(t.schema().column_by_name("age").unwrap().role, ColumnRole::QuasiNumeric);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let text = "a,b\n1,\"unclosed\n";
        let err = from_csv(text, &[]).unwrap_err();
        match err {
            RelationError::CsvParse { message, .. } => {
                assert!(message.contains("unterminated"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn arity_error_line_number_survives_multiline_fields() {
        // The record on physical line 2 spans three lines; the bad record
        // starts on physical line 5.
        let text = "a,b\n1,\"x\ny\nz\"\n3\n";
        let err = from_csv(text, &[]).unwrap_err();
        match err {
            RelationError::CsvParse { line, .. } => assert_eq!(line, 5),
            other => panic!("unexpected error {other:?}"),
        }
    }
}

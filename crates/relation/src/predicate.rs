//! A small predicate language over tuples.
//!
//! Only the constructs the framework and the attack models need: equality,
//! numeric comparisons, conjunction, disjunction and negation. The paper's
//! subset-deletion attack issues
//! `DELETE FROM R WHERE SSN > lval AND SSN < uval` (§7.2); that maps to
//! [`Predicate::and`] of two [`Predicate::gt`]/[`Predicate::lt`] leaves.

use crate::error::RelationError;
use crate::schema::Schema;
use crate::table::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A boolean predicate over a single tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true.
    True,
    /// Column equals the value.
    Eq {
        /// Column name.
        column: String,
        /// Value to compare against.
        value: Value,
    },
    /// Column is strictly greater than the value (numeric or lexicographic
    /// for text).
    Gt {
        /// Column name.
        column: String,
        /// Value to compare against.
        value: Value,
    },
    /// Column is strictly less than the value.
    Lt {
        /// Column name.
        column: String,
        /// Value to compare against.
        value: Value,
    },
    /// Both operands hold.
    And(Box<Predicate>, Box<Predicate>),
    /// At least one operand holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The operand does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = value`
    pub fn eq(column: impl Into<String>, value: Value) -> Self {
        Predicate::Eq { column: column.into(), value }
    }

    /// `column > value`
    pub fn gt(column: impl Into<String>, value: Value) -> Self {
        Predicate::Gt { column: column.into(), value }
    }

    /// `column < value`
    pub fn lt(column: impl Into<String>, value: Value) -> Self {
        Predicate::Lt { column: column.into(), value }
    }

    /// `self AND other`
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// The paper's range-delete condition: `lo < column AND column < hi`.
    pub fn between_exclusive(column: &str, lo: Value, hi: Value) -> Self {
        Predicate::gt(column, lo).and(Predicate::lt(column, hi))
    }

    /// Evaluate against a tuple under a schema.
    pub fn matches(&self, schema: &Schema, tuple: &Tuple) -> Result<bool, RelationError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Eq { column, value } => {
                let idx = schema.index_of(column)?;
                Ok(&tuple.values[idx] == value)
            }
            Predicate::Gt { column, value } => {
                let idx = schema.index_of(column)?;
                Ok(compare(&tuple.values[idx], value) == std::cmp::Ordering::Greater)
            }
            Predicate::Lt { column, value } => {
                let idx = schema.index_of(column)?;
                Ok(compare(&tuple.values[idx], value) == std::cmp::Ordering::Less)
            }
            Predicate::And(a, b) => Ok(a.matches(schema, tuple)? && b.matches(schema, tuple)?),
            Predicate::Or(a, b) => Ok(a.matches(schema, tuple)? || b.matches(schema, tuple)?),
            Predicate::Not(a) => Ok(!a.matches(schema, tuple)?),
        }
    }
}

/// Comparison used by `Gt`/`Lt`: falls back to the total [`Ord`] on values,
/// which orders ints numerically and text lexicographically — exactly what
/// the range-delete attack over SSN strings needs.
fn compare(a: &Value, b: &Value) -> std::cmp::Ordering {
    a.cmp(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnRole};
    use crate::table::Table;

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("ssn", ColumnRole::Identifying),
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for (ssn, age) in [("a100", 30), ("a200", 40), ("a300", 50), ("a400", 60)] {
            t.insert(vec![Value::text(ssn), Value::int(age)]).unwrap();
        }
        t
    }

    #[test]
    fn eq_matches_exact_value() {
        let t = table();
        let hits = t.select(&Predicate::eq("age", Value::int(40))).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn gt_lt_on_numbers() {
        let t = table();
        assert_eq!(t.select(&Predicate::gt("age", Value::int(40))).unwrap().len(), 2);
        assert_eq!(t.select(&Predicate::lt("age", Value::int(40))).unwrap().len(), 1);
    }

    #[test]
    fn range_delete_like_the_paper() {
        let mut t = table();
        // DELETE FROM R WHERE ssn > "a100" AND ssn < "a400"
        let pred = Predicate::between_exclusive("ssn", Value::text("a100"), Value::text("a400"));
        assert_eq!(t.delete_where(&pred).unwrap(), 2);
        let remaining: Vec<String> = t
            .column_values("ssn")
            .unwrap()
            .iter()
            .map(|v| v.as_text().unwrap().to_string())
            .collect();
        assert_eq!(remaining, vec!["a100", "a400"]);
    }

    #[test]
    fn boolean_combinators() {
        let t = table();
        let p = Predicate::eq("age", Value::int(30)).or(Predicate::eq("age", Value::int(60)));
        assert_eq!(t.select(&p).unwrap().len(), 2);
        let p = Predicate::gt("age", Value::int(30)).and(Predicate::lt("age", Value::int(60)));
        assert_eq!(t.select(&p).unwrap().len(), 2);
        let p = Predicate::eq("age", Value::int(30)).not();
        assert_eq!(t.select(&p).unwrap().len(), 3);
        assert_eq!(t.select(&Predicate::True).unwrap().len(), 4);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let t = table();
        assert!(t.select(&Predicate::eq("nope", Value::Null)).is_err());
    }
}

//! Typed column storage for the columnar [`Table`](crate::table::Table) core.
//!
//! A column starts life as a dense vector of native `i64`s and is promoted to
//! a dictionary-encoded representation the first time a non-integer value is
//! written into it (a `Null`, a text label, or a generalization interval —
//! exactly what binning and watermarking produce). A dictionary column keeps
//! every distinct [`Value`] once and a dense `u32` code per row, so the hot
//! loops (binning leaf resolution, watermark embed/detect kernels, column
//! statistics) can do per-distinct-value work once and per-row work on plain
//! integer vectors.
//!
//! Deleting rows never rewrites a dictionary: stale entries may linger after
//! deletions or overwrites, so consumers that need the *live* distinct set
//! must count codes present in the rows (see `relation::stats`), not
//! dictionary length.

use crate::value::Value;
use std::collections::HashMap;

/// A dictionary-encoded column: the distinct values interned once, plus one
/// dense code per row.
#[derive(Debug, Clone, Default)]
pub struct DictColumn {
    dict: Vec<Value>,
    codes: Vec<u32>,
    index: HashMap<Value, u32>,
}

impl DictColumn {
    /// The number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The interned dictionary, indexed by code. May contain entries no row
    /// currently references.
    pub fn dict(&self) -> &[Value] {
        &self.dict
    }

    /// The dense per-row codes, in row order.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The value of `row` (a reference into the dictionary).
    pub fn value(&self, row: usize) -> &Value {
        let code = self.codes[row];
        // medlint::allow(checked-framing, u32→usize widens losslessly on every supported target and the code was produced by intern() on this column)
        &self.dict[code as usize]
    }

    /// Intern `value`, returning its code without appending a row. A
    /// dictionary of 2^32 distinct values would need hundreds of gigabytes,
    /// so the code-width saturation below is unreachable in practice.
    pub fn intern(&mut self, value: &Value) -> u32 {
        if let Some(&code) = self.index.get(value) {
            return code;
        }
        let code = u32::try_from(self.dict.len()).unwrap_or(u32::MAX);
        self.dict.push(value.clone());
        self.index.insert(value.clone(), code);
        code
    }

    /// Append a row holding `value`.
    pub fn push(&mut self, value: &Value) {
        let code = self.intern(value);
        self.codes.push(code);
    }

    /// Overwrite `row` with `value`, interning it if new.
    pub fn set(&mut self, row: usize, value: &Value) {
        let code = self.intern(value);
        self.codes[row] = code;
    }

    /// Overwrite `row` with an already-interned `code`. The caller must have
    /// obtained the code from [`DictColumn::intern`] on this column.
    pub fn set_code(&mut self, row: usize, code: u32) {
        self.codes[row] = code;
    }
}

/// One table column: a typed vector of cell values.
#[derive(Debug, Clone)]
pub enum Column {
    /// A column that has only ever held `Value::Int` cells: native `i64`s.
    Int(Vec<i64>),
    /// A dictionary-encoded column (categorical labels, intervals, nulls, or
    /// a formerly-integer column that received a non-integer write).
    Dict(DictColumn),
}

/// A borrowed, typed view of one column's storage, for batch kernels.
#[derive(Debug, Clone, Copy)]
pub enum ColumnData<'a> {
    /// Native integers, one per row.
    Int(&'a [i64]),
    /// Dictionary entries plus dense per-row codes.
    Dict {
        /// The interned distinct values, indexed by code.
        dict: &'a [Value],
        /// One code per row, in row order.
        codes: &'a [u32],
    },
}

impl Column {
    /// A new, empty column. Starts integer-typed and promotes itself on the
    /// first non-integer write.
    pub fn new() -> Self {
        Column::Int(Vec::new())
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Dict(d) => d.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The typed storage view for batch kernels.
    pub fn data(&self) -> ColumnData<'_> {
        match self {
            Column::Int(v) => ColumnData::Int(v),
            Column::Dict(d) => ColumnData::Dict { dict: d.dict(), codes: d.codes() },
        }
    }

    /// The value of `row`, materialized.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Dict(d) => d.value(row).clone(),
        }
    }

    /// Append a row holding `value`, promoting to dictionary encoding when
    /// the value is not an integer.
    pub fn push(&mut self, value: &Value) {
        match (&mut *self, value) {
            (Column::Int(v), Value::Int(i)) => v.push(*i),
            (Column::Int(_), _) => {
                self.promote().push(value);
            }
            (Column::Dict(d), _) => d.push(value),
        }
    }

    /// Overwrite `row` with `value`, promoting to dictionary encoding when
    /// the value is not an integer.
    pub fn set(&mut self, row: usize, value: &Value) {
        match (&mut *self, value) {
            (Column::Int(v), Value::Int(i)) => v[row] = *i,
            (Column::Int(_), _) => {
                self.promote().set(row, value);
            }
            (Column::Dict(d), _) => d.set(row, value),
        }
    }

    /// Force dictionary encoding and return the dictionary column. Integer
    /// columns are promoted by interning each distinct `i64` once; an
    /// already-promoted column is returned as is.
    pub fn promote(&mut self) -> &mut DictColumn {
        if let Column::Int(v) = self {
            let mut d = DictColumn::default();
            for &i in v.iter() {
                d.push(&Value::Int(i));
            }
            *self = Column::Dict(d);
        }
        match self {
            Column::Dict(d) => d,
            // The branch above replaced any Int variant.
            Column::Int(_) => unreachable!("promote() always installs Column::Dict"),
        }
    }

    /// The dictionary column, if this column is dictionary-encoded.
    pub fn as_dict(&self) -> Option<&DictColumn> {
        match self {
            Column::Dict(d) => Some(d),
            Column::Int(_) => None,
        }
    }

    /// Keep only the rows whose `keep` flag is true. `keep` must have one
    /// entry per row. Dictionary entries are never garbage-collected.
    pub fn retain_rows(&mut self, keep: &[bool]) {
        match self {
            Column::Int(v) => {
                let mut row = 0;
                v.retain(|_| {
                    let k = keep[row];
                    row += 1;
                    k
                });
            }
            Column::Dict(d) => {
                let mut row = 0;
                d.codes.retain(|_| {
                    let k = keep[row];
                    row += 1;
                    k
                });
            }
        }
    }
}

impl Default for Column {
    fn default() -> Self {
        Column::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_stays_native_until_non_int_write() {
        let mut c = Column::new();
        c.push(&Value::int(3));
        c.push(&Value::int(7));
        assert!(matches!(c.data(), ColumnData::Int([3, 7])));
        c.push(&Value::interval(0, 10));
        let ColumnData::Dict { dict, codes } = c.data() else {
            panic!("expected promotion to dictionary encoding");
        };
        assert_eq!(codes.len(), 3);
        assert_eq!(dict[codes[0] as usize], Value::int(3));
        assert_eq!(dict[codes[2] as usize], Value::interval(0, 10));
    }

    #[test]
    fn dictionary_interns_each_distinct_value_once() {
        let mut c = Column::new();
        for v in ["a", "b", "a", "a", "b"] {
            c.push(&Value::text(v));
        }
        let ColumnData::Dict { dict, codes } = c.data() else { panic!("dict expected") };
        assert_eq!(dict.len(), 2);
        assert_eq!(codes, &[0, 1, 0, 0, 1]);
    }

    #[test]
    fn set_promotes_and_preserves_other_rows() {
        let mut c = Column::new();
        c.push(&Value::int(34));
        c.push(&Value::int(61));
        c.set(1, &Value::interval(60, 70));
        assert_eq!(c.value(0), Value::int(34));
        assert_eq!(c.value(1), Value::interval(60, 70));
    }

    #[test]
    fn retain_rows_keeps_flagged_rows_in_order() {
        let mut c = Column::new();
        for i in 0..5 {
            c.push(&Value::int(i));
        }
        c.retain_rows(&[true, false, true, false, true]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(1), Value::int(2));
        let mut d = Column::new();
        for v in ["x", "y", "z"] {
            d.push(&Value::text(v));
        }
        d.retain_rows(&[false, true, true]);
        assert_eq!(d.value(0), Value::text("y"));
        assert_eq!(d.value(1), Value::text("z"));
    }

    #[test]
    fn intern_does_not_append_rows() {
        let mut c = Column::new();
        c.push(&Value::text("a"));
        let d = c.promote();
        let code = d.intern(&Value::text("b"));
        assert_eq!(d.len(), 1);
        d.set_code(0, code);
        assert_eq!(c.value(0), Value::text("b"));
    }
}

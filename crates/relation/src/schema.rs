//! Schemas with privacy roles.
//!
//! The paper classifies columns into identifying, quasi-identifying and
//! other columns (§2); the quasi-identifying columns further split into
//! categorical ones (generalized along a domain hierarchy tree) and numeric
//! ones (generalized along a binary interval tree). The schema records that
//! classification so the binning and watermarking agents can find their
//! targets without extra configuration.

use crate::error::RelationError;
use serde::{Deserialize, Serialize};

/// Privacy classification of a column (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnRole {
    /// Explicitly identifies an individual (e.g. SSN, name). Encrypted by the
    /// binning algorithm (Fig. 8) rather than suppressed, to keep records
    /// traceable to the data holder.
    Identifying,
    /// Quasi-identifying categorical column generalized along a categorical
    /// domain hierarchy tree (e.g. doctor, symptom, prescription).
    QuasiCategorical,
    /// Quasi-identifying numeric column generalized along a binary interval
    /// tree (e.g. age, zip code).
    QuasiNumeric,
    /// Carries no identifying information; left untouched.
    NonIdentifying,
}

impl ColumnRole {
    /// True for either quasi-identifying role.
    pub fn is_quasi(&self) -> bool {
        matches!(self, ColumnRole::QuasiCategorical | ColumnRole::QuasiNumeric)
    }

    /// True for the identifying role.
    pub fn is_identifying(&self) -> bool {
        matches!(self, ColumnRole::Identifying)
    }
}

/// A named, role-annotated column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within a schema).
    pub name: String,
    /// Privacy role.
    pub role: ColumnRole,
}

impl ColumnDef {
    /// Create a column definition.
    pub fn new(name: impl Into<String>, role: ColumnRole) -> Self {
        ColumnDef { name: name.into(), role }
    }
}

/// An ordered list of columns with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self, RelationError> {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(RelationError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// The schema of the paper's running example:
    /// `R(ssn, age, zip_code, doctor, symptom, prescription)` with `ssn`
    /// identifying, `age`/`zip_code` numeric quasi-identifiers and the rest
    /// categorical quasi-identifiers.
    pub fn medical_example() -> Self {
        Schema::new(vec![
            ColumnDef::new("ssn", ColumnRole::Identifying),
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
            ColumnDef::new("zip_code", ColumnRole::QuasiNumeric),
            ColumnDef::new("doctor", ColumnRole::QuasiCategorical),
            ColumnDef::new("symptom", ColumnRole::QuasiCategorical),
            ColumnDef::new("prescription", ColumnRole::QuasiCategorical),
        ])
        .expect("example schema has unique column names")
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, RelationError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| RelationError::UnknownColumn(name.to_string()))
    }

    /// The column definition at `index`, if any.
    pub fn column(&self, index: usize) -> Option<&ColumnDef> {
        self.columns.get(index)
    }

    /// The column definition named `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&ColumnDef, RelationError> {
        let idx = self.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// Indices of all identifying columns.
    pub fn identifying_indices(&self) -> Vec<usize> {
        self.indices_with(ColumnRole::is_identifying)
    }

    /// Indices of all quasi-identifying columns (categorical and numeric).
    pub fn quasi_indices(&self) -> Vec<usize> {
        self.indices_with(ColumnRole::is_quasi)
    }

    /// Names of all quasi-identifying columns, in schema order.
    pub fn quasi_names(&self) -> Vec<&str> {
        self.columns.iter().filter(|c| c.role.is_quasi()).map(|c| c.name.as_str()).collect()
    }

    /// Indices of columns matching a role predicate.
    fn indices_with(&self, pred: impl Fn(&ColumnRole) -> bool) -> Vec<usize> {
        self.columns.iter().enumerate().filter(|(_, c)| pred(&c.role)).map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medical_example_shape() {
        let s = Schema::medical_example();
        assert_eq!(s.arity(), 6);
        assert_eq!(s.identifying_indices(), vec![0]);
        assert_eq!(s.quasi_indices(), vec![1, 2, 3, 4, 5]);
        assert_eq!(s.quasi_names(), vec!["age", "zip_code", "doctor", "symptom", "prescription"]);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            ColumnDef::new("a", ColumnRole::NonIdentifying),
            ColumnDef::new("a", ColumnRole::Identifying),
        ])
        .unwrap_err();
        assert_eq!(err, RelationError::DuplicateColumn("a".into()));
    }

    #[test]
    fn index_lookup() {
        let s = Schema::medical_example();
        assert_eq!(s.index_of("age").unwrap(), 1);
        assert_eq!(s.index_of("prescription").unwrap(), 5);
        assert!(matches!(s.index_of("missing"), Err(RelationError::UnknownColumn(_))));
        assert_eq!(s.column(3).unwrap().name, "doctor");
        assert!(s.column(99).is_none());
        assert_eq!(s.column_by_name("ssn").unwrap().role, ColumnRole::Identifying);
    }

    #[test]
    fn role_predicates() {
        assert!(ColumnRole::QuasiNumeric.is_quasi());
        assert!(ColumnRole::QuasiCategorical.is_quasi());
        assert!(!ColumnRole::Identifying.is_quasi());
        assert!(ColumnRole::Identifying.is_identifying());
        assert!(!ColumnRole::NonIdentifying.is_identifying());
    }
}

//! Property-based tests of the relational substrate.

use medshield_relation::{csv, ColumnDef, ColumnRole, Predicate, Schema, Table, Value};
use proptest::prelude::*;

/// Arbitrary cell values, including the generalized interval form.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(|v| Value::Int(v as i64)),
        "[A-Za-z0-9 .:-]{0,12}".prop_map(Value::Text),
        (any::<i16>(), 1i64..500).prop_map(|(lo, w)| Value::interval(lo as i64, lo as i64 + w)),
    ]
}

fn arb_table() -> impl Strategy<Value = Table> {
    prop::collection::vec((arb_value(), arb_value(), arb_value()), 0..40).prop_map(|rows| {
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnRole::Identifying),
            ColumnDef::new("a", ColumnRole::QuasiNumeric),
            ColumnDef::new("b", ColumnRole::QuasiCategorical),
        ])
        .unwrap();
        let mut table = Table::new(schema);
        for (x, y, z) in rows {
            table.insert(vec![x, y, z]).unwrap();
        }
        table
    })
}

proptest! {
    /// Value display/parse round-trips for everything except free text that
    /// happens to look like another variant.
    #[test]
    fn value_parse_is_stable_on_reparse(v in arb_value()) {
        // parse(display(v)) may normalize (e.g. text "42" becomes Int 42), but
        // a second round trip must be a fixed point.
        let once = Value::parse(&v.to_string());
        let twice = Value::parse(&once.to_string());
        prop_assert_eq!(once, twice);
    }

    /// CSV export/import preserves the number of rows and re-parses every
    /// cell to the same normalized value.
    #[test]
    fn csv_roundtrip(table in arb_table()) {
        let text = csv::to_csv(&table);
        let roles = [
            ("id", ColumnRole::Identifying),
            ("a", ColumnRole::QuasiNumeric),
            ("b", ColumnRole::QuasiCategorical),
        ];
        let parsed = csv::from_csv(&text, &roles).unwrap();
        prop_assert_eq!(parsed.len(), table.len());
        for (orig, new) in table.iter().zip(parsed.iter()) {
            for (o, n) in orig.values.iter().zip(new.values.iter()) {
                // Normalization: whitespace-only text collapses to Null and
                // numeric-looking text becomes Int; both are idempotent.
                prop_assert_eq!(n, &Value::parse(&o.to_string()));
            }
        }
        prop_assert_eq!(parsed.schema().quasi_names(), table.schema().quasi_names());
    }

    /// delete_where(p) removes exactly the tuples selected by p and keeps
    /// everything else untouched.
    #[test]
    fn delete_where_is_exact(table in arb_table(), threshold in any::<i32>()) {
        let predicate = Predicate::gt("a", Value::Int(threshold as i64));
        let selected = table.select(&predicate).unwrap();
        let mut working = table.snapshot();
        let removed = working.delete_where(&predicate).unwrap();
        prop_assert_eq!(removed, selected.len());
        prop_assert_eq!(working.len(), table.len() - removed);
        for tuple in working.iter() {
            prop_assert!(!selected.contains(&tuple.id));
            prop_assert_eq!(&table.get(tuple.id).unwrap().values, &tuple.values);
        }
    }

    /// Bin sizes over the quasi columns always sum to the table size.
    #[test]
    fn bin_sizes_partition_the_table(table in arb_table()) {
        let bins = medshield_relation::stats::quasi_bin_sizes(&table).unwrap();
        let total: usize = bins.values().sum();
        prop_assert_eq!(total, table.len());
    }

    /// The columnar core is invisible at the API: after arbitrary edits
    /// (including ones that force Int→Dict column promotion and grow the
    /// dictionaries), the materialized `tuples()` view, the per-cell
    /// accessors, and a row-by-row rebuild of the table all describe the same
    /// relation — and the CSV bytes of the columnar table and the row-wise
    /// rebuild are identical.
    #[test]
    fn columnar_views_roundtrip_through_rows(
        table in arb_table(),
        edits in prop::collection::vec((any::<u16>(), 0usize..3, arb_value()), 0..25),
    ) {
        let mut table = table;
        let ids = table.ids();
        if !ids.is_empty() {
            for (pick, col, v) in edits {
                let id = ids[pick as usize % ids.len()];
                let name = ["id", "a", "b"][col];
                table.set_value(id, name, v).unwrap();
            }
        }
        // Row-wise rebuild from the materialized tuple view.
        let mut rebuilt = Table::new(table.schema().clone());
        for tuple in table.tuples() {
            rebuilt.insert(tuple.values).unwrap();
        }
        prop_assert_eq!(rebuilt.len(), table.len());
        // Every cell agrees across the iterator view, the positional
        // accessor, and the rebuilt row store.
        for (row, (orig, new)) in table.iter().zip(rebuilt.iter()).enumerate() {
            for (c, (o, n)) in orig.values.iter().zip(new.values.iter()).enumerate() {
                prop_assert_eq!(o, n);
                prop_assert_eq!(&table.value_at(row, c).unwrap(), o);
            }
        }
        prop_assert_eq!(csv::to_csv(&rebuilt), csv::to_csv(&table));
    }
}

//! The acceptance contract of the binary: exit 0 on a clean tree, exit 1
//! with `file:line:` diagnostics on a violating tree, and a JSON report
//! written where `--out` points. Runs `medlint::run` in-process against a
//! throwaway workspace on disk.

use std::fs;
use std::path::{Path, PathBuf};

fn scratch_workspace(name: &str, server_rs: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("medlint-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/serve/src")).expect("mkdir");
    fs::create_dir_all(root.join("docs")).expect("mkdir docs");
    fs::write(root.join("crates/serve/src/server.rs"), server_rs).expect("write server.rs");
    // A consistent protocol/docs triple so only the injected file can fire.
    fs::write(
        root.join("crates/serve/src/protocol.rs"),
        "pub enum ErrorCode {\n Timeout,\n}\nimpl ErrorCode {\n pub fn as_str(self) -> &'static str {\n  match self {\n   ErrorCode::Timeout => \"timeout\",\n  }\n }\n}\n",
    )
    .expect("write protocol.rs");
    let table =
        "<!-- medlint:error-codes:begin -->\n| `timeout` | slow |\n<!-- medlint:error-codes:end -->\n";
    fs::write(root.join("docs/ARCHITECTURE.md"), table).expect("write docs");
    fs::write(root.join("docs/PROTOCOL.md"), table).expect("write wire spec");
    root
}

fn run(root: &Path, extra: &[&str]) -> (i32, String) {
    let mut argv: Vec<String> = vec!["--check".into(), "--root".into(), root.display().to_string()];
    argv.extend(extra.iter().map(std::string::ToString::to_string));
    let opts = medlint::parse_args(&argv).expect("args parse");
    let mut out = Vec::new();
    let code = medlint::run(&opts, &mut out);
    (code, String::from_utf8_lossy(&out).into_owned())
}

#[test]
fn violating_tree_exits_nonzero_with_file_line_diagnostics() {
    let root = scratch_workspace("dirty", "fn f(x: Option<u8>) {\n x.unwrap();\n}\n");
    let (code, out) = run(&root, &[]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("crates/serve/src/server.rs:2: [no-panic]"), "{out}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn clean_tree_exits_zero() {
    let root = scratch_workspace("clean", "fn f(x: Option<u8>) -> Option<u8> { x }\n");
    let (code, out) = run(&root, &[]);
    assert_eq!(code, 0, "{out}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn json_out_file_is_written_for_ci() {
    let root = scratch_workspace("json", "fn f(x: Option<u8>) {\n x.unwrap();\n}\n");
    let report_path = root.join("medlint.json");
    let (code, out) =
        run(&root, &["--format", "json", "--out", &report_path.display().to_string()]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("\"rule\":\"no-panic\""), "stdout json: {out}");
    let written = fs::read_to_string(&report_path).expect("report written");
    assert!(written.contains("\"total\":1"), "{written}");
    let _ = fs::remove_dir_all(&root);
}

//! Property tests for the lexer: it must be *total* — never panic, always
//! terminate, and produce an in-bounds, non-overlapping, monotone token
//! stream — on arbitrary byte soup, because medlint reads whatever is on
//! disk, including files mid-edit.

use medlint::lexer::{lex, TokenKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0usize..512)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&text);
        let mut prev_end = 0usize;
        for t in &tokens {
            prop_assert!(t.start < t.end, "empty token at {}", t.start);
            prop_assert!(t.end <= text.len(), "token past the end");
            prop_assert!(t.start >= prev_end, "tokens overlap or go backwards");
            prop_assert!(t.line >= 1);
            // The accessor is total too: no char-boundary panics.
            let _ = t.text(&text);
            prev_end = t.end;
        }
    }

    #[test]
    fn lexer_round_trips_ascii_identifier_soup(
        words in prop::collection::vec(prop::collection::vec(97u8..=122, 1usize..8), 0usize..20)
    ) {
        // Identifiers separated by spaces: every word must come back as an
        // Ident token with exactly its text.
        let text = words
            .iter()
            .map(|w| String::from_utf8_lossy(w).into_owned())
            .collect::<Vec<_>>()
            .join(" ");
        let tokens = lex(&text);
        let idents: Vec<&str> =
            tokens.iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text(&text)).collect();
        let expected: Vec<String> =
            words.iter().map(|w| String::from_utf8_lossy(w).into_owned()).collect();
        prop_assert_eq!(idents.len(), expected.len());
        for (got, want) in idents.iter().zip(&expected) {
            prop_assert_eq!(*got, want.as_str());
        }
    }

    #[test]
    fn comments_and_strings_never_leak_tokens(payload in prop::collection::vec(32u8..=126, 0usize..40)) {
        // Arbitrary printable payload inside a line comment: the lexer must
        // produce exactly one comment token for that line.
        let body: String = String::from_utf8_lossy(&payload)
            .chars()
            .filter(|&c| c != '\n' && c != '\r')
            .collect();
        let text = format!("// {body}\nfn f() {{}}\n");
        let tokens = lex(&text);
        let comments: Vec<_> =
            tokens.iter().filter(|t| t.kind == TokenKind::LineComment).collect();
        prop_assert_eq!(comments.len(), 1);
        prop_assert!(comments[0].line == 1);
    }
}

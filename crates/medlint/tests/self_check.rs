//! The workspace must stay medlint-clean: this test runs the same lint CI
//! runs, from the real source tree, and fails listing any finding. It is
//! the in-process twin of `cargo run -p medlint -- --check`.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = medlint::Workspace::load(&root).expect("workspace loads");
    assert!(ws.files.len() > 50, "walker found only {} files", ws.files.len());
    let report = medlint::lint(&ws);
    let findings: Vec<String> = report.diagnostics.iter().map(medlint::Diagnostic::human).collect();
    assert!(findings.is_empty(), "medlint findings:\n{}", findings.join("\n"));
}

#[test]
fn suppressions_in_tree_all_carry_reasons() {
    // `lint()` already reports reasonless allows as findings; this pins the
    // stronger property that the tree's *accepted* suppressions stay few
    // and intentional — a budget, so they cannot quietly multiply.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = medlint::Workspace::load(&root).expect("workspace loads");
    let report = medlint::lint(&ws);
    assert!(
        report.suppressed <= 12,
        "suppression budget exceeded: {} findings are suppressed; \
         fix the code or raise the budget deliberately in this test",
        report.suppressed
    );
}

//! Fixture tests: every rule is proven by a failing (positive), passing
//! (negative) and suppressed in-memory workspace, end to end through the
//! same `lint()` entry point CI uses.

use medlint::rules::lint;
use medlint::Workspace;

fn rules_fired(ws: &Workspace) -> Vec<String> {
    lint(ws).diagnostics.into_iter().map(|d| d.rule).collect()
}

const CLEAN_PROTO: &str = "pub enum ErrorCode {\n Timeout,\n}\nimpl ErrorCode {\n pub fn as_str(self) -> &'static str {\n  match self {\n   ErrorCode::Timeout => \"timeout\",\n  }\n }\n}\n";
const CLEAN_DOCS: &str =
    "<!-- medlint:error-codes:begin -->\n| `timeout` | slow |\n<!-- medlint:error-codes:end -->\n";

/// A workspace with a consistent protocol/docs triple plus the given file.
fn ws_with(path: &str, text: &str) -> Workspace {
    Workspace::from_memory(
        vec![
            ("crates/serve/src/protocol.rs".to_string(), CLEAN_PROTO.to_string()),
            (path.to_string(), text.to_string()),
        ],
        Some(CLEAN_DOCS.to_string()),
        Some(CLEAN_DOCS.to_string()),
    )
}

// ---- no-panic ----------------------------------------------------------

#[test]
fn no_panic_positive() {
    let w = ws_with("crates/serve/src/server.rs", "fn f(x: Option<u8>) { x.unwrap(); }\n");
    let fired = rules_fired(&w);
    assert_eq!(fired, vec!["no-panic"], "{fired:?}");
}

#[test]
fn no_panic_negative() {
    let src = "fn f(x: Option<u8>) -> Option<u8> { x.map(|v| v.saturating_add(1)) }\n";
    let w = ws_with("crates/serve/src/server.rs", src);
    assert!(rules_fired(&w).is_empty());
}

#[test]
fn no_panic_suppressed() {
    let src = "fn f(x: Option<u8>) {\n // medlint::allow(no-panic, fixture exercises the suppression path)\n x.unwrap();\n}\n";
    let w = ws_with("crates/serve/src/server.rs", src);
    let report = lint(&w);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
}

#[test]
fn no_panic_reasonless_suppression_is_reported() {
    let src = "fn f(x: Option<u8>) {\n // medlint::allow(no-panic)\n x.unwrap();\n}\n";
    let w = ws_with("crates/serve/src/server.rs", src);
    let fired = rules_fired(&w);
    assert!(fired.contains(&"no-panic".to_string()), "{fired:?}");
    assert!(fired.contains(&"suppression".to_string()), "{fired:?}");
}

// ---- lock-discipline ---------------------------------------------------

#[test]
fn lock_discipline_positive() {
    let w = ws_with("crates/serve/src/server.rs", "fn f(m: &Mutex<u8>) { let _ = m.lock(); }\n");
    assert_eq!(rules_fired(&w), vec!["lock-discipline"]);
}

#[test]
fn lock_discipline_negative() {
    let src = "fn f(m: &Mutex<u8>) { let _ = lock_unpoisoned(m); }\n";
    let w = ws_with("crates/serve/src/server.rs", src);
    assert!(rules_fired(&w).is_empty());
}

#[test]
fn lock_discipline_suppressed() {
    let src = "fn f(m: &Mutex<u8>) {\n // medlint::allow(lock-discipline, this fixture is the sanctioned helper)\n let _ = m.lock();\n}\n";
    let w = ws_with("crates/serve/src/server.rs", src);
    let report = lint(&w);
    assert!(report.diagnostics.is_empty());
    assert_eq!(report.suppressed, 1);
}

// ---- checked-framing ---------------------------------------------------

#[test]
fn checked_framing_positive() {
    let w = ws_with("crates/core/src/codec.rs", "fn f(v: &[u8]) -> u32 { v.len() as u32 }\n");
    assert_eq!(rules_fired(&w), vec!["checked-framing"]);
}

#[test]
fn checked_framing_negative() {
    let src = "fn f(v: &[u8]) -> Option<u32> { u32::try_from(v.len()).ok() }\n";
    let w = ws_with("crates/core/src/codec.rs", src);
    assert!(rules_fired(&w).is_empty());
}

#[test]
fn checked_framing_suppressed() {
    let src = "// medlint::allow(checked-framing, fixture: the cast is proven lossless)\nfn f(n: u8) -> u32 { n as u32 }\n";
    let w = ws_with("crates/core/src/codec.rs", src);
    let report = lint(&w);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
}

// ---- forbid-unsafe -----------------------------------------------------

#[test]
fn forbid_unsafe_positive_missing_attribute() {
    let w = ws_with("crates/x/src/lib.rs", "pub fn f() {}\n");
    assert_eq!(rules_fired(&w), vec!["forbid-unsafe"]);
}

#[test]
fn forbid_unsafe_positive_unsafe_token() {
    let src = "#![forbid(unsafe_code)]\npub fn f() { let _ = \"x\"; }\nfn g() { unsafe {} }\n";
    let w = ws_with("crates/x/src/lib.rs", src);
    assert_eq!(rules_fired(&w), vec!["forbid-unsafe"]);
}

#[test]
fn forbid_unsafe_negative() {
    let w = ws_with("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n");
    assert!(rules_fired(&w).is_empty());
}

// ---- error-code-sync ---------------------------------------------------

#[test]
fn error_code_sync_positive_enum_drift() {
    let proto = "pub enum ErrorCode {\n Timeout,\n QueueFull,\n}\nimpl ErrorCode {\n pub fn as_str(self) -> &'static str {\n  match self {\n   ErrorCode::Timeout => \"timeout\",\n  }\n }\n}\n";
    let w = Workspace::from_memory(
        vec![("crates/serve/src/protocol.rs".to_string(), proto.to_string())],
        Some(CLEAN_DOCS.to_string()),
        Some(CLEAN_DOCS.to_string()),
    );
    assert_eq!(rules_fired(&w), vec!["error-code-sync"]);
}

#[test]
fn error_code_sync_positive_docs_drift() {
    let docs = "<!-- medlint:error-codes:begin -->\n| `timeout` | slow |\n| `phantom` | not real |\n<!-- medlint:error-codes:end -->\n";
    let w = Workspace::from_memory(
        vec![("crates/serve/src/protocol.rs".to_string(), CLEAN_PROTO.to_string())],
        Some(docs.to_string()),
        Some(CLEAN_DOCS.to_string()),
    );
    assert_eq!(rules_fired(&w), vec!["error-code-sync"]);
}

#[test]
fn error_code_sync_negative() {
    let w = Workspace::from_memory(
        vec![("crates/serve/src/protocol.rs".to_string(), CLEAN_PROTO.to_string())],
        Some(CLEAN_DOCS.to_string()),
        Some(CLEAN_DOCS.to_string()),
    );
    assert!(rules_fired(&w).is_empty());
}

// ---- reporting ---------------------------------------------------------

#[test]
fn diagnostics_carry_file_and_line_and_sort_stably() {
    let w = Workspace::from_memory(
        vec![
            (
                "crates/serve/src/server.rs".to_string(),
                "fn f(x: Option<u8>) { x.unwrap(); }\n".to_string(),
            ),
            ("crates/serve/src/protocol.rs".to_string(), CLEAN_PROTO.to_string()),
            (
                "crates/cli/src/main.rs".to_string(),
                "#![forbid(unsafe_code)]\nfn main() { Some(1).unwrap(); }\n".to_string(),
            ),
        ],
        Some(CLEAN_DOCS.to_string()),
        Some(CLEAN_DOCS.to_string()),
    );
    let report = lint(&w);
    let rendered: Vec<String> = report.diagnostics.iter().map(medlint::Diagnostic::human).collect();
    assert_eq!(rendered.len(), 2, "{rendered:?}");
    assert!(rendered[0].starts_with("crates/cli/src/main.rs:2: [no-panic]"), "{rendered:?}");
    assert!(rendered[1].starts_with("crates/serve/src/server.rs:1: [no-panic]"), "{rendered:?}");
}

#[test]
fn json_report_shape() {
    let w = ws_with("crates/serve/src/server.rs", "fn f(x: Option<u8>) { x.unwrap(); }\n");
    let report = lint(&w);
    let json = medlint::render_json(&report.diagnostics, report.suppressed);
    assert!(json.starts_with("{\"diagnostics\":["));
    assert!(json.contains("\"rule\":\"no-panic\""));
    assert!(json.contains("\"total\":1"));
}

//! Per-file analysis state: the token stream, which tokens are test-only
//! code, and the `// medlint::allow(rule, reason)` suppressions.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{HashMap, HashSet};

/// Lines each rule is allowed on, plus malformed `medlint::allow` comments
/// as `(line, message)` pairs.
type AllowIndex = (HashMap<String, HashSet<usize>>, Vec<(usize, String)>);

/// One source file prepared for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (e.g.
    /// `crates/serve/src/server.rs`).
    pub rel_path: String,
    /// The file's text.
    pub text: String,
    /// The lexed token stream (covers comments).
    pub tokens: Vec<Token>,
    /// True when this file is the root of a compilation unit
    /// (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`).
    pub is_crate_root: bool,
    /// `tokens[i]` is inside a `#[cfg(test)]` / `#[test]` item, or the
    /// whole file is test code (an integration-test or fixture file).
    test_token: Vec<bool>,
    /// Lines on which a `medlint::allow(rule, …)` applies, per rule name.
    allows: HashMap<String, HashSet<usize>>,
    /// Malformed suppression comments: (line, problem).
    pub bad_allows: Vec<(usize, String)>,
}

impl SourceFile {
    /// Prepare a file for linting. `rel_path` must use `/` separators.
    pub fn new(rel_path: &str, text: String) -> SourceFile {
        let tokens = lex(&text);
        let is_crate_root = {
            let tail = rel_path.rsplit('/').next().unwrap_or(rel_path);
            rel_path.ends_with("src/lib.rs")
                || rel_path.ends_with("src/main.rs")
                || (rel_path.contains("src/bin/") && tail.ends_with(".rs"))
        };
        // Integration tests, benches and examples are their own crates and
        // are test/dev-only code for the panic rules.
        let whole_file_test = rel_path.starts_with("tests/")
            || rel_path.contains("/tests/")
            || rel_path.starts_with("benches/")
            || rel_path.contains("/benches/");
        let test_token = mark_test_tokens(&text, &tokens, whole_file_test);
        let (allows, bad_allows) = collect_allows(&text, &tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            text,
            tokens,
            is_crate_root,
            test_token,
            allows,
            bad_allows,
        }
    }

    /// Is token `idx` inside test-only code?
    pub fn is_test_token(&self, idx: usize) -> bool {
        self.test_token.get(idx).copied().unwrap_or(false)
    }

    /// Is `rule` suppressed on `line`?
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.get(rule).is_some_and(|lines| lines.contains(&line))
    }

    /// The text of token `idx` (empty when out of range).
    pub fn tok_text(&self, idx: usize) -> &str {
        self.tokens.get(idx).map(|t| t.text(&self.text)).unwrap_or("")
    }

    /// The index of the previous non-comment token before `idx`.
    pub fn prev_code(&self, idx: usize) -> Option<usize> {
        let mut j = idx;
        while j > 0 {
            j -= 1;
            match self.tokens.get(j)?.kind {
                TokenKind::LineComment | TokenKind::BlockComment => continue,
                _ => return Some(j),
            }
        }
        None
    }

    /// The index of the next non-comment token after `idx`.
    pub fn next_code(&self, idx: usize) -> Option<usize> {
        let mut j = idx + 1;
        while let Some(t) = self.tokens.get(j) {
            match t.kind {
                TokenKind::LineComment | TokenKind::BlockComment => j += 1,
                _ => return Some(j),
            }
        }
        None
    }
}

/// Mark every token belonging to a `#[cfg(test)]` or `#[test]` item.
///
/// The recognizer is lexical: after such an attribute (and any further
/// attributes or doc comments), the next item extends to the matching `}`
/// of its first `{` — or to the first `;` if no brace opens before one
/// (e.g. `#[cfg(test)] use foo;`).
fn mark_test_tokens(text: &str, tokens: &[Token], whole_file: bool) -> Vec<bool> {
    let mut marks = vec![whole_file; tokens.len()];
    if whole_file {
        return marks;
    }
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_hash_bracket(text, tokens, i) {
            i += 1;
            continue;
        }
        // Scan the attribute `#[ … ]` for the test markers.
        let (attr_end, is_test_attr) = scan_attribute(text, tokens, i);
        if !is_test_attr {
            i = attr_end;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = attr_end;
        while is_hash_bracket(text, tokens, j) {
            j = scan_attribute(text, tokens, j).0;
        }
        // The item body: up to the matching `}` of the first `{`, or the
        // first top-level `;`.
        let mut depth = 0usize;
        let mut saw_brace = false;
        while let Some(t) = tokens.get(j) {
            let tx = t.text(text);
            match (t.kind, tx) {
                (TokenKind::Punct, "{") => {
                    depth += 1;
                    saw_brace = true;
                }
                (TokenKind::Punct, "}") => {
                    depth = depth.saturating_sub(1);
                    if saw_brace && depth == 0 {
                        j += 1;
                        break;
                    }
                }
                (TokenKind::Punct, ";") if !saw_brace => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for mark in marks.iter_mut().take(j.min(tokens.len())).skip(i) {
            *mark = true;
        }
        i = j.max(i + 1);
    }
    marks
}

/// Does `#` `[` start at token `i`?
fn is_hash_bracket(text: &str, tokens: &[Token], i: usize) -> bool {
    let hash = tokens.get(i).map(|t| t.text(text)) == Some("#");
    let bracket = tokens.get(i + 1).map(|t| t.text(text)) == Some("[");
    hash && bracket
}

/// Scan an attribute starting at its `#`; return (index one past the
/// closing `]`, does it mark test code).
fn scan_attribute(text: &str, tokens: &[Token], i: usize) -> (usize, bool) {
    let mut j = i + 2; // past `#` `[`
    let mut depth = 1usize;
    let mut idents: Vec<&str> = Vec::new();
    while let Some(t) = tokens.get(j) {
        let tx = t.text(text);
        match (t.kind, tx) {
            (TokenKind::Punct, "[" | "(") => depth += 1,
            (TokenKind::Punct, "]" | ")") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            (TokenKind::Ident, _) => idents.push(tx),
            _ => {}
        }
        j += 1;
    }
    // `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` all mark test
    // code; `#[cfg(not(test))]` explicitly does not.
    let is_test = match idents.first().copied() {
        Some("test") => idents.len() == 1,
        Some("cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    };
    (j.max(i + 2), is_test)
}

/// Extract `medlint::allow(rule, reason)` suppressions from line
/// comments. A suppression applies to the comment's own line and the
/// following line, so both trailing and preceding-line styles work:
///
/// ```text
/// foo.lock().unwrap(); // medlint::allow(lock-discipline, audited here)
/// // medlint::allow(no-panic, the invariant is checked two lines up)
/// let x = xs[i];
/// ```
fn collect_allows(text: &str, tokens: &[Token]) -> AllowIndex {
    let mut allows: HashMap<String, HashSet<usize>> = HashMap::new();
    let mut bad = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        // A suppression must be the comment's entire content — prose that
        // merely *mentions* medlint::allow (docs, this file) is ignored.
        let body = t.text(text);
        let rest = body.trim_start_matches('/').trim_start_matches('!').trim_start();
        if !rest.starts_with("medlint::allow") {
            continue;
        }
        let Some(open) = rest.find('(') else {
            bad.push((t.line, "missing `(rule, reason)` after medlint::allow".to_string()));
            continue;
        };
        let Some(close) = rest.rfind(')') else {
            bad.push((t.line, "unclosed medlint::allow(…)".to_string()));
            continue;
        };
        let inner = rest.get(open + 1..close).unwrap_or("");
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') {
            bad.push((t.line, format!("medlint::allow names no rule: `{inner}`")));
            continue;
        }
        if reason.is_empty() {
            bad.push((t.line, format!("medlint::allow({rule}, …) requires a non-empty reason")));
            continue;
        }
        let lines = allows.entry(rule.to_string()).or_default();
        lines.insert(t.line);
        lines.insert(t.line + 1);
    }
    (allows, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs", src.to_string())
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let f = file(src);
        let unwraps: Vec<(usize, bool)> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text(src) == "unwrap")
            .map(|(i, _)| (i, f.is_test_token(i)))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].1, "live unwrap must not be test-marked");
        assert!(unwraps[1].1, "test unwrap must be test-marked");
        // Code after the module is live again.
        let live2 = f.tokens.iter().position(|t| t.text(src) == "live2").unwrap();
        assert!(!f.is_test_token(live2));
    }

    #[test]
    fn test_fns_and_cfg_not_test() {
        let src = "#[test]\nfn t() { a.unwrap(); }\n#[cfg(not(test))]\nfn live() { b.unwrap(); }\n";
        let f = file(src);
        let marks: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text(src) == "unwrap")
            .map(|(i, _)| f.is_test_token(i))
            .collect();
        assert_eq!(marks, vec![true, false]);
    }

    #[test]
    fn allows_cover_own_and_next_line() {
        let src = "// medlint::allow(no-panic, invariant checked above)\nlet x = xs[0];\nlet y = ys[1]; // medlint::allow(no-panic, fixed-size array)\n";
        let f = file(src);
        assert!(f.is_allowed("no-panic", 1));
        assert!(f.is_allowed("no-panic", 2));
        assert!(f.is_allowed("no-panic", 3));
        assert!(!f.is_allowed("no-panic", 5));
        assert!(!f.is_allowed("lock-discipline", 2));
        assert!(f.bad_allows.is_empty());
    }

    #[test]
    fn reasonless_allows_are_rejected() {
        let src = "let x = xs[0]; // medlint::allow(no-panic)\nlet y = ys[0]; // medlint::allow(no-panic, )\n";
        let f = file(src);
        assert_eq!(f.bad_allows.len(), 2);
        assert!(!f.is_allowed("no-panic", 1));
    }

    #[test]
    fn crate_roots_are_recognized() {
        assert!(SourceFile::new("crates/serve/src/lib.rs", String::new()).is_crate_root);
        assert!(SourceFile::new("crates/cli/src/main.rs", String::new()).is_crate_root);
        assert!(SourceFile::new("crates/bench/src/bin/fig11.rs", String::new()).is_crate_root);
        assert!(SourceFile::new("src/lib.rs", String::new()).is_crate_root);
        assert!(!SourceFile::new("crates/serve/src/server.rs", String::new()).is_crate_root);
        assert!(!SourceFile::new("tests/end_to_end.rs", String::new()).is_crate_root);
    }
}

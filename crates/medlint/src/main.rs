//! The `medlint` binary: thin argv/exit-code shell over [`medlint::run`].

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match medlint::parse_args(&argv) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("medlint: {message}");
            eprintln!("usage: medlint --check [--format human|json] [--out FILE] [--root DIR]");
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout();
    let code = medlint::run(&opts, &mut stdout);
    ExitCode::from(u8::try_from(code).unwrap_or(2))
}

//! A comment- and string-aware lexer for Rust source text.
//!
//! The rules in this crate reason about *token streams*, never raw text:
//! an `unwrap()` inside a string literal or a comment is data, not code,
//! and must not trip the panic-freedom gate. The lexer is deliberately
//! much smaller than a real Rust front end — it has no grammar, only
//! enough lexical structure to classify every byte of a file into one of
//! the [`TokenKind`]s — but it is **total**: any byte sequence, valid
//! Rust or garbage, lexes to a token list without panicking, and every
//! loop iteration consumes at least one byte, so lexing always
//! terminates (a property test pins both claims).
//!
//! Covered lexical shapes: line comments (`//`, `///`, `//!`), nested
//! block comments (`/* /* */ */`), string literals with escapes, raw
//! strings with any `#` depth (`r#"…"#`, also `b`/`c` prefixed), byte
//! and char literals, lifetimes (disambiguated from char literals),
//! identifiers, numbers and single-byte punctuation. Anything else —
//! stray non-UTF-8 bytes included — becomes a [`TokenKind::Unknown`]
//! token and lexing continues.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `unsafe`, …).
    Ident,
    /// A numeric literal.
    Number,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A lifetime: `'a`, `'static`.
    Lifetime,
    /// A `//` comment, including the delimiter, up to (not including) the
    /// newline.
    LineComment,
    /// A `/* … */` comment (nesting-aware), possibly spanning lines.
    BlockComment,
    /// One byte of punctuation (`.`, `(`, `[`, `+`, …).
    Punct,
    /// A byte the lexer cannot classify (e.g. invalid UTF-8). Kept so the
    /// stream still covers the whole file.
    Unknown,
}

/// One token: its kind, byte span in the source, and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text. Returns an empty string if the span is somehow
    /// out of bounds or not valid UTF-8 on its boundaries (cannot happen
    /// for tokens this lexer produced over the same source, but the
    /// accessor stays total anyway).
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `source` into a token list covering every byte. Never panics,
/// always terminates: each outer-loop iteration consumes at least one
/// byte.
pub fn lex(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while let Some(&b) = bytes.get(i) {
        let start = i;
        let start_line = line;
        let kind = match b {
            b' ' | b'\t' | b'\r' => {
                i += 1;
                continue;
            }
            b'\n' => {
                i += 1;
                line += 1;
                continue;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                i += 2;
                while bytes.get(i).is_some_and(|&c| c != b'\n') {
                    i += 1;
                }
                TokenKind::LineComment
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while depth > 0 {
                    match (bytes.get(i), bytes.get(i + 1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            i += 2;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        (Some(b'\n'), _) => {
                            line += 1;
                            i += 1;
                        }
                        (Some(_), _) => i += 1,
                        (None, _) => break, // unterminated: consume to EOF
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                i = consume_string(bytes, i, &mut line);
                TokenKind::Str
            }
            b'r' | b'b' | b'c' if starts_raw_or_bytes(bytes, i) => {
                i = consume_prefixed_literal(bytes, i, &mut line);
                TokenKind::Str
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                i = consume_char(bytes, i + 1, &mut line);
                TokenKind::Char
            }
            b'\'' => {
                // Lifetime (`'a` not followed by a closing quote) or char
                // literal. `'a'` is a char; `'a` is a lifetime.
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                if next.is_some_and(is_ident_start) && after != Some(b'\'') {
                    i += 2;
                    while bytes.get(i).copied().is_some_and(is_ident_continue) {
                        i += 1;
                    }
                    TokenKind::Lifetime
                } else {
                    i = consume_char(bytes, i, &mut line);
                    TokenKind::Char
                }
            }
            b if is_ident_start(b) => {
                i += 1;
                while bytes.get(i).copied().is_some_and(is_ident_continue) {
                    i += 1;
                }
                TokenKind::Ident
            }
            b if b.is_ascii_digit() => {
                i += 1;
                // Digits, hex/bin/underscore digits, type suffixes.
                while bytes.get(i).copied().is_some_and(is_ident_continue) {
                    i += 1;
                }
                // A fraction part — but never eat the `..` of a range.
                if bytes.get(i) == Some(&b'.') && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                    while bytes.get(i).copied().is_some_and(is_ident_continue) {
                        i += 1;
                    }
                }
                TokenKind::Number
            }
            b if b.is_ascii_punctuation() => {
                i += 1;
                TokenKind::Punct
            }
            _ => {
                // Non-ASCII or control byte outside any literal: keep a
                // placeholder token and move on.
                i += 1;
                TokenKind::Unknown
            }
        };
        tokens.push(Token { kind, start, end: i, line: start_line });
    }
    tokens
}

/// Is `r…`, `br…`, `cr…`, `b"` or `c"` at `i` the start of a raw/byte/C
/// string literal (as opposed to a plain identifier)?
fn starts_raw_or_bytes(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    // Optional `b`/`c` prefix before `r` or `"`.
    if matches!(bytes.get(j), Some(b'b') | Some(b'c')) {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    bytes.get(j) == Some(&b'"')
}

/// Consume a string literal starting at the `b`/`c`/`r`/`#`/`"` prefix;
/// returns the index one past its end (or EOF if unterminated).
fn consume_prefixed_literal(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    if matches!(bytes.get(i), Some(b'b') | Some(b'c')) {
        i += 1;
    }
    let mut hashes = 0usize;
    if bytes.get(i) == Some(&b'r') {
        i += 1;
        while bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        // Raw string: no escapes; closed by `"` + `hashes` hash marks.
        if bytes.get(i) == Some(&b'"') {
            i += 1;
            loop {
                match bytes.get(i) {
                    None => return i,
                    Some(b'\n') => {
                        *line += 1;
                        i += 1;
                    }
                    Some(b'"') => {
                        let mut k = 0usize;
                        while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                            k += 1;
                        }
                        i += 1 + k;
                        if k == hashes {
                            return i;
                        }
                    }
                    Some(_) => i += 1,
                }
            }
        }
        return i;
    }
    consume_string(bytes, i, line)
}

/// Consume a `"…"` string with escapes, starting at the opening quote.
fn consume_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while let Some(&c) = bytes.get(i) {
        match c {
            b'"' => return i + 1,
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consume a char/byte literal starting at the opening `'`.
fn consume_char(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
            // A char literal is short; scan to the closing quote with escape
            // handling, giving up (at a bounded distance) on malformed input so a
            // stray `'` cannot swallow the rest of the file.
    let limit = i + 16;
    while let Some(&c) = bytes.get(i) {
        match c {
            b'\'' => return i + 1,
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                return i; // malformed: stop at the line end
            }
            _ => i += 1,
        }
        if i > limit {
            break;
        }
    }
    i.min(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn strings_and_comments_shield_their_contents() {
        let src = r#"let x = "unwrap()"; // unwrap()
        /* .lock() */ y.unwrap();"#;
        let toks = kinds(src);
        let idents: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).map(|(_, t)| t.as_str()).collect();
        // The only code-level `unwrap` is the final call.
        assert_eq!(idents, vec!["let", "x", "y", "unwrap"]);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::LineComment && t.contains("unwrap")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::BlockComment && t.contains("lock")));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r##"let s = r#"has "quotes" and unwrap()"#; s.len()"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap") && t.contains("quotes")));
        let idents: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, vec!["let", "s", "s", "len"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "'x'"));
    }

    #[test]
    fn escaped_quote_chars_lex() {
        let src = r"let q = '\''; let b = b'\n'; let s = '\\';";
        let toks = kinds(src);
        let chars: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).map(|(_, t)| t.as_str()).collect();
        assert_eq!(chars.len(), 3, "{chars:?}");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ code";
        let toks = kinds(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "code".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\nb // trail\nc";
        let toks = lex(src);
        let line_of = |name: &str| {
            toks.iter().find(|t| t.text(src) == name).map(|t| t.line).unwrap_or(usize::MAX)
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 4);
        assert_eq!(line_of("c"), 5);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let src = "for i in 0..count { x[i]; } let f = 1.5e3;";
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Number && t == "1.5e3"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "count"));
    }

    #[test]
    fn garbage_bytes_lex_without_panicking() {
        let src = "fn \u{FFFD} ok \u{1F600} 'unterminated";
        let toks = lex(src);
        assert!(!toks.is_empty());
        // Every token span is well-formed and within bounds.
        for t in &toks {
            assert!(t.start < t.end && t.end <= src.len());
        }
    }
}

//! Diagnostics: what a rule reports, and the human / JSON renderings.

/// One finding: a rule violation at a file:line location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (with `/` separators).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired (e.g. `no-panic`).
    pub rule: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(file: &str, line: usize, rule: &str, message: impl Into<String>) -> Diagnostic {
        Diagnostic { file: file.to_string(), line, rule: rule.to_string(), message: message.into() }
    }

    /// The `file:line: [rule] message` human rendering.
    pub fn human(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a diagnostic list as the JSON report CI uploads:
/// `{"diagnostics":[{file,line,rule,message}…],"total":N}`.
pub fn render_json(diags: &[Diagnostic], suppressed: usize) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape_json(&d.file),
            d.line,
            escape_json(&d.rule),
            escape_json(&d.message)
        ));
    }
    out.push_str(&format!("],\"total\":{},\"suppressed\":{}}}", diags.len(), suppressed));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_human_and_json() {
        let d = Diagnostic::new("crates/x/src/a.rs", 7, "no-panic", "say \"no\" to unwrap()");
        assert_eq!(d.human(), "crates/x/src/a.rs:7: [no-panic] say \"no\" to unwrap()");
        let json = render_json(&[d], 2);
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\"total\":1"));
        assert!(json.contains("\"suppressed\":2"));
    }

    #[test]
    fn empty_report_is_valid_json() {
        assert_eq!(render_json(&[], 0), "{\"diagnostics\":[],\"total\":0,\"suppressed\":0}");
    }
}

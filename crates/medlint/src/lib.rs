//! medlint — workspace-native static analysis for MedShield.
//!
//! The serving path of this repository has invariants that `rustc` and
//! clippy cannot see: panic-freedom in the request loop, poison-safe
//! lock acquisition, overflow-checked frame arithmetic, a pure-safe-Rust
//! policy, and an error-code vocabulary that three artifacts must agree
//! on. medlint enforces them with its own comment/string-aware lexer and
//! a small rule engine — no external dependencies, so it runs in the
//! same hermetic environment as the rest of the workspace.
//!
//! Run it as CI does:
//!
//! ```text
//! cargo run -p medlint -- --check
//! ```
//!
//! Findings print as `file:line: [rule] message`; exit status is 0 when
//! clean, 1 when any diagnostic survives suppression, 2 on usage or I/O
//! errors. A finding is suppressed by a line comment on the same or the
//! preceding line — the reason is mandatory:
//!
//! ```text
//! // medlint::allow(no-panic, poison hook is test-only and gated)
//! ```
//!
//! See `docs/ARCHITECTURE.md` ("Static analysis") for the rule
//! catalogue and the policy on adding rules.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

use std::fs;
use std::path::PathBuf;

pub use diag::{render_json, Diagnostic};
pub use rules::{lint, LintReport};
pub use workspace::Workspace;

/// Parsed command-line options.
#[derive(Debug, PartialEq, Eq)]
pub struct Options {
    /// Exit non-zero on findings (the CI gate). Currently the only mode.
    pub check: bool,
    /// `human` (default) or `json` for stdout.
    pub json: bool,
    /// Also write the JSON report here (CI artifact).
    pub out: Option<PathBuf>,
    /// Workspace root to lint.
    pub root: PathBuf,
}

/// Parse argv (without the program name). Returns `Err(message)` on
/// unknown flags or missing values.
pub fn parse_args(argv: &[String]) -> Result<Options, String> {
    let mut opts = Options { check: false, json: false, out: None, root: default_root() };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("human") => opts.json = false,
                Some(other) => return Err(format!("unknown --format `{other}` (human|json)")),
                None => return Err("--format needs a value (human|json)".to_string()),
            },
            "--out" => match it.next() {
                Some(path) => opts.out = Some(PathBuf::from(path)),
                None => return Err("--out needs a file path".to_string()),
            },
            "--root" => match it.next() {
                Some(path) => opts.root = PathBuf::from(path),
                None => return Err("--root needs a directory path".to_string()),
            },
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// The workspace root when invoked via `cargo run -p medlint`:
/// two levels above this crate's manifest; falls back to `.` so a
/// relocated binary still does something sensible.
fn default_root() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map(|dir| PathBuf::from(dir).join("../.."))
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Run medlint end to end; returns the process exit code. Output goes to
/// the given writers so tests can capture it.
pub fn run(opts: &Options, stdout: &mut dyn std::io::Write) -> i32 {
    let ws = match Workspace::load(&opts.root) {
        Ok(ws) => ws,
        Err(err) => {
            let _ = writeln!(
                stdout,
                "medlint: cannot read workspace at {}: {err}",
                opts.root.display()
            );
            return 2;
        }
    };
    if ws.files.is_empty() {
        let _ = writeln!(stdout, "medlint: no Rust sources under {}", opts.root.display());
        return 2;
    }
    let report = lint(&ws);
    let json = render_json(&report.diagnostics, report.suppressed);
    if let Some(out_path) = &opts.out {
        if let Err(err) = fs::write(out_path, &json) {
            let _ = writeln!(stdout, "medlint: cannot write {}: {err}", out_path.display());
            return 2;
        }
    }
    if opts.json {
        let _ = writeln!(stdout, "{json}");
    } else {
        for d in &report.diagnostics {
            let _ = writeln!(stdout, "{}", d.human());
        }
        let _ = writeln!(
            stdout,
            "medlint: {} file(s), {} finding(s), {} suppressed",
            ws.files.len(),
            report.diagnostics.len(),
            report.suppressed
        );
    }
    if report.diagnostics.is_empty() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn parses_flags() {
        let opts = parse_args(&args(&["--check", "--format", "json", "--out", "r.json"])).unwrap();
        assert!(opts.check);
        assert!(opts.json);
        assert_eq!(opts.out.as_deref(), Some(std::path::Path::new("r.json")));
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
        assert!(parse_args(&args(&["--format"])).is_err());
        assert!(parse_args(&args(&["--format", "xml"])).is_err());
        assert!(parse_args(&args(&["--out"])).is_err());
    }

    #[test]
    fn run_on_missing_root_is_a_usage_error() {
        let opts = Options {
            check: true,
            json: false,
            out: None,
            root: PathBuf::from("/nonexistent/medlint-root"),
        };
        let mut out = Vec::new();
        assert_eq!(run(&opts, &mut out), 2);
    }
}

//! `lock-discipline`: all mutex/rwlock acquisition in `crates/serve`
//! must go through `lock_unpoisoned` (see `serve::store`), which recovers
//! from poisoning instead of propagating a worker panic to every other
//! thread. Raw `.lock()`, and no-argument `.read()` / `.write()` (the
//! `RwLock` guard methods), are forbidden outside that helper.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// See the module docs.
pub struct LockDiscipline;

impl Rule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.files.iter().filter(|f| f.rel_path.starts_with("crates/serve/src/")) {
            check_file(file, out);
        }
    }
}

fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || file.is_test_token(i) {
            continue;
        }
        let name = tok.text(&file.text);
        if !matches!(name, "lock" | "read" | "write") {
            continue;
        }
        // A guard acquisition is `receiver.lock()` — method position with
        // an empty argument list. `io::Read::read(&mut buf)` and friends
        // take arguments, so requiring `()` keeps I/O calls out.
        let method = file.prev_code(i).is_some_and(|p| file.tok_text(p) == ".");
        let open = file.next_code(i).filter(|&n| file.tok_text(n) == "(");
        let empty_args =
            open.and_then(|n| file.next_code(n)).is_some_and(|c| file.tok_text(c) == ")");
        if method && empty_args {
            out.push(Diagnostic::new(
                &file.rel_path,
                tok.line,
                "lock-discipline",
                format!(
                    "raw `.{name}()` guard acquisition in crates/serve; \
                     route it through `lock_unpoisoned` so a poisoned lock \
                     cannot wedge the server"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_memory(vec![(path.to_string(), src.to_string())], None, None);
        let mut out = Vec::new();
        LockDiscipline.check(&ws, &mut out);
        out
    }

    #[test]
    fn flags_raw_lock_and_guard_reads() {
        let src = "fn f(m: &Mutex<u32>, rw: &RwLock<u32>) {\n let a = m.lock();\n let b = rw.read();\n let c = rw.write();\n}\n";
        let found = diags("crates/serve/src/server.rs", src);
        assert_eq!(found.len(), 3);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn io_read_write_with_args_is_fine() {
        let src = "fn f(s: &mut TcpStream, buf: &mut [u8]) {\n s.read(buf);\n s.write(buf);\n s.read_exact(buf);\n}\n";
        assert!(diags("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn other_crates_and_tests_are_out_of_scope() {
        let src = "fn f(m: &Mutex<u32>) { let _ = m.lock(); }\n";
        assert!(diags("crates/engine/src/lib.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n fn t(m: &Mutex<u32>) { m.lock(); }\n}\n";
        assert!(diags("crates/serve/src/store.rs", test_src).is_empty());
    }
}

//! `forbid-unsafe`: every crate root must carry
//! `#![forbid(unsafe_code)]`, and no file may contain an `unsafe` token
//! at all. The workspace is pure safe Rust by policy (PAPER.md threat
//! model: the server handles adversarial ciphertext and fingerprints —
//! memory safety must not depend on local reasoning).

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// See the module docs.
pub struct ForbidUnsafe;

impl Rule for ForbidUnsafe {
    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if file.is_crate_root && !has_forbid_unsafe(file) {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    1,
                    "forbid-unsafe",
                    "crate root lacks `#![forbid(unsafe_code)]`",
                ));
            }
            // `unsafe_code` inside the forbid attribute is its own
            // identifier and does not trip the token scan below.
            for tok in &file.tokens {
                if tok.kind == TokenKind::Ident && tok.text(&file.text) == "unsafe" {
                    out.push(Diagnostic::new(
                        &file.rel_path,
                        tok.line,
                        "forbid-unsafe",
                        "`unsafe` is forbidden workspace-wide",
                    ));
                }
            }
        }
    }
}

/// Token-match `# ! [ forbid ( unsafe_code ) ]` anywhere in the file
/// (attribute order and surrounding doc comments don't matter).
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let toks = &file.tokens;
    (0..toks.len()).any(|i| {
        let text = |k: usize| file.tok_text(k);
        text(i) == "#"
            && text(i + 1) == "!"
            && text(i + 2) == "["
            && text(i + 3) == "forbid"
            && text(i + 4) == "("
            && text(i + 5) == "unsafe_code"
            && text(i + 6) == ")"
            && text(i + 7) == "]"
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_memory(vec![(path.to_string(), src.to_string())], None, None);
        let mut out = Vec::new();
        ForbidUnsafe.check(&ws, &mut out);
        out
    }

    #[test]
    fn crate_root_without_forbid_is_flagged() {
        let found = diags("crates/x/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn forbidding_root_passes_and_non_roots_are_exempt() {
        let src = "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(diags("crates/x/src/lib.rs", src).is_empty());
        assert!(diags("crates/x/src/helper.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn any_unsafe_token_is_flagged_even_in_tests() {
        let src = "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n fn t() { unsafe { } }\n}\n";
        let found = diags("crates/x/src/lib.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 4);
    }
}

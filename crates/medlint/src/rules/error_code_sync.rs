//! `error-code-sync`: the protocol error vocabulary must agree across
//! the codebase and the docs.
//!
//! Four artifacts describe the same set: the `ErrorCode` enum in
//! `serve::protocol`, the kebab-case wire strings its `as_str()` returns,
//! and the error-code tables in `docs/ARCHITECTURE.md` and the normative
//! wire spec `docs/PROTOCOL.md` (each delimited by
//! `medlint:error-codes:begin` / `end` markers). This rule parses all of
//! them and reports any variant without an `as_str` arm, any arm whose
//! string is not the kebab-case of its variant, and any drift between
//! the wire strings and either documented table.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

/// See the module docs.
pub struct ErrorCodeSync;

const ARCH_DOCS: &str = "docs/ARCHITECTURE.md";
const PROTOCOL_DOCS: &str = "docs/PROTOCOL.md";
const BEGIN_MARKER: &str = "medlint:error-codes:begin";
const END_MARKER: &str = "medlint:error-codes:end";

impl Rule for ErrorCodeSync {
    fn name(&self) -> &'static str {
        "error-code-sync"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(proto) = ws.files.iter().find(|f| f.rel_path.ends_with("serve/src/protocol.rs"))
        else {
            return; // nothing to sync against (e.g. a fixture workspace)
        };
        let variants = enum_variants(proto, "ErrorCode");
        let arms = as_str_arms(proto);

        for (variant, line) in &variants {
            match arms.get(variant) {
                None => out.push(Diagnostic::new(
                    &proto.rel_path,
                    *line,
                    "error-code-sync",
                    format!("`ErrorCode::{variant}` has no `as_str()` arm"),
                )),
                Some((wire, arm_line)) => {
                    let expected = kebab_case(variant);
                    if *wire != expected {
                        out.push(Diagnostic::new(
                            &proto.rel_path,
                            *arm_line,
                            "error-code-sync",
                            format!(
                                "`ErrorCode::{variant}` maps to \"{wire}\" but the wire \
                                 convention is kebab-case: \"{expected}\""
                            ),
                        ));
                    }
                }
            }
        }
        for (variant, (_, arm_line)) in &arms {
            if !variants.iter().any(|(v, _)| v == variant) {
                out.push(Diagnostic::new(
                    &proto.rel_path,
                    *arm_line,
                    "error-code-sync",
                    format!(
                        "`as_str()` matches `ErrorCode::{variant}` which is not a declared variant"
                    ),
                ));
            }
        }

        // Both docs tables: the architecture overview and the normative
        // wire spec each carry a marker-delimited copy of the catalogue.
        check_docs_table(ws.docs_architecture.as_deref(), ARCH_DOCS, proto, &arms, out);
        check_docs_table(ws.docs_protocol.as_deref(), PROTOCOL_DOCS, proto, &arms, out);
    }
}

/// Compare one marker-delimited docs table at `docs_path` against the
/// `as_str` wire strings, reporting missing files/markers and drift in
/// either direction.
fn check_docs_table(
    docs: Option<&str>,
    docs_path: &str,
    proto: &SourceFile,
    arms: &BTreeMap<String, (String, usize)>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(docs) = docs else {
        out.push(Diagnostic::new(
            docs_path,
            1,
            "error-code-sync",
            format!("{docs_path} is missing; it carries an error-code table"),
        ));
        return;
    };
    let Some(table) = docs_table(docs) else {
        out.push(Diagnostic::new(
            docs_path,
            1,
            "error-code-sync",
            format!("no `{BEGIN_MARKER}` … `{END_MARKER}` table found"),
        ));
        return;
    };
    for (wire, arm_line) in arms.values() {
        if !table.contains_key(wire) {
            out.push(Diagnostic::new(
                &proto.rel_path,
                *arm_line,
                "error-code-sync",
                format!(
                    "wire code \"{wire}\" is not documented in {docs_path} ({BEGIN_MARKER} table)"
                ),
            ));
        }
    }
    for (code, line) in &table {
        if !arms.values().any(|(s, _)| s == code) {
            out.push(Diagnostic::new(
                docs_path,
                *line,
                "error-code-sync",
                format!("documented code \"{code}\" has no `ErrorCode` wire string"),
            ));
        }
    }
}

/// CamelCase → kebab-case (`BadRequest` → `bad-request`).
fn kebab_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Collect the variants of `enum <name> { … }` as (variant, line).
fn enum_variants(file: &SourceFile, name: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    let Some(start) = (0..toks.len()).find(|&i| {
        file.tok_text(i) == "enum" && file.next_code(i).is_some_and(|n| file.tok_text(n) == name)
    }) else {
        return out;
    };
    // Find the opening brace, then walk at depth 1 collecting idents that
    // are followed by `,` or `}` (fieldless variants; a payload `(…)` or
    // `{…}` bumps the depth so its contents are skipped).
    let mut i = start;
    while i < toks.len() && file.tok_text(i) != "{" {
        i += 1;
    }
    let mut depth = 0usize;
    while let Some(tok) = toks.get(i) {
        let text = tok.text(&file.text);
        match (tok.kind, text) {
            (TokenKind::Punct, "{" | "(" | "[") => depth += 1,
            (TokenKind::Punct, "}" | ")" | "]") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            (TokenKind::Ident, _) if depth == 1 => {
                let next = file.next_code(i).map(|n| file.tok_text(n)).unwrap_or("");
                if next == "," || next == "}" || next == "(" || next == "=" {
                    out.push((text.to_string(), tok.line));
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Collect `ErrorCode::Variant => "wire-string"` arms from `as_str`,
/// keyed by variant name → (wire string, line).
fn as_str_arms(file: &SourceFile) -> BTreeMap<String, (String, usize)> {
    let mut out = BTreeMap::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        // Pattern: Ident("ErrorCode") :: Ident(v) = > Str(s)
        if file.tok_text(i) != "ErrorCode" {
            continue;
        }
        let Some(c1) = file.next_code(i).filter(|&k| file.tok_text(k) == ":") else { continue };
        let Some(c2) = file.next_code(c1).filter(|&k| file.tok_text(k) == ":") else { continue };
        let Some(v) = file.next_code(c2) else { continue };
        if toks.get(v).map(|t| t.kind) != Some(TokenKind::Ident) {
            continue;
        }
        let Some(eq) = file.next_code(v).filter(|&k| file.tok_text(k) == "=") else { continue };
        let Some(gt) = file.next_code(eq).filter(|&k| file.tok_text(k) == ">") else { continue };
        let Some(s) = file.next_code(gt) else { continue };
        let Some(stok) = toks.get(s) else { continue };
        if stok.kind != TokenKind::Str {
            continue;
        }
        let raw = stok.text(&file.text);
        let wire = raw.trim_matches('"').to_string();
        let variant = file.tok_text(v).to_string();
        let line = toks.get(v).map(|t| t.line).unwrap_or(1);
        out.insert(variant, (wire, line));
    }
    out
}

/// Parse the marker-delimited table in the docs: code → line. Returns
/// `None` when the markers are absent.
fn docs_table(docs: &str) -> Option<BTreeMap<String, usize>> {
    let mut table = BTreeMap::new();
    let mut inside = false;
    let mut seen_begin = false;
    for (idx, line) in docs.lines().enumerate() {
        let lineno = idx + 1;
        if line.contains(BEGIN_MARKER) {
            inside = true;
            seen_begin = true;
            continue;
        }
        if line.contains(END_MARKER) {
            inside = false;
            continue;
        }
        if !inside {
            continue;
        }
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        // A data row's first cell is a backtick-quoted code; the header
        // and `|---|` separator rows have none.
        let first_cell = trimmed.trim_start_matches('|').split('|').next().unwrap_or("");
        if let Some(open) = first_cell.find('`') {
            if let Some(rest) = first_cell.get(open + 1..) {
                if let Some(close) = rest.find('`') {
                    if let Some(code) = rest.get(..close) {
                        if !code.is_empty() {
                            table.insert(code.to_string(), lineno);
                        }
                    }
                }
            }
        }
    }
    seen_begin.then_some(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROTO_OK: &str = "pub enum ErrorCode {\n BadRequest,\n Timeout,\n}\nimpl ErrorCode {\n pub fn as_str(self) -> &'static str {\n  match self {\n   ErrorCode::BadRequest => \"bad-request\",\n   ErrorCode::Timeout => \"timeout\",\n  }\n }\n}\n";

    fn ws(proto: &str, arch_docs: Option<&str>, proto_docs: Option<&str>) -> Workspace {
        Workspace::from_memory(
            vec![("crates/serve/src/protocol.rs".to_string(), proto.to_string())],
            arch_docs.map(str::to_string),
            proto_docs.map(str::to_string),
        )
    }

    fn diags(w: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        ErrorCodeSync.check(w, &mut out);
        out
    }

    const DOCS_OK: &str = "# Arch\n<!-- medlint:error-codes:begin -->\n| code | meaning |\n|---|---|\n| `bad-request` | malformed |\n| `timeout` | slow |\n<!-- medlint:error-codes:end -->\n";

    #[test]
    fn in_sync_workspace_is_clean() {
        assert!(diags(&ws(PROTO_OK, Some(DOCS_OK), Some(DOCS_OK))).is_empty());
    }

    #[test]
    fn missing_arm_and_non_kebab_string_are_flagged() {
        let proto = "pub enum ErrorCode {\n BadRequest,\n Timeout,\n}\nimpl ErrorCode {\n fn as_str(self) -> &'static str {\n  match self {\n   ErrorCode::BadRequest => \"BadRequest\",\n  }\n }\n}\n";
        let found = diags(&ws(proto, Some(DOCS_OK), Some(DOCS_OK)));
        assert!(found.iter().any(|d| d.message.contains("no `as_str()` arm")), "{found:?}");
        assert!(found.iter().any(|d| d.message.contains("kebab-case")), "{found:?}");
    }

    #[test]
    fn docs_drift_is_flagged_in_both_directions() {
        let docs = "<!-- medlint:error-codes:begin -->\n| `bad-request` | malformed |\n| `ghost-code` | gone |\n<!-- medlint:error-codes:end -->\n";
        let found = diags(&ws(PROTO_OK, Some(docs), Some(DOCS_OK)));
        assert!(
            found.iter().any(|d| d.message.contains("\"timeout\" is not documented")),
            "{found:?}"
        );
        assert!(
            found
                .iter()
                .any(|d| d.file == "docs/ARCHITECTURE.md" && d.message.contains("ghost-code")),
            "{found:?}"
        );
    }

    #[test]
    fn protocol_docs_drift_is_flagged_independently() {
        // The architecture table is in sync; only the wire spec drifted.
        let proto_docs = "<!-- medlint:error-codes:begin -->\n| `bad-request` | malformed |\n<!-- medlint:error-codes:end -->\n";
        let found = diags(&ws(PROTO_OK, Some(DOCS_OK), Some(proto_docs)));
        assert!(
            found
                .iter()
                .any(|d| d.message.contains("\"timeout\" is not documented in docs/PROTOCOL.md")),
            "{found:?}"
        );
        assert!(
            !found.iter().any(|d| d.file == "docs/ARCHITECTURE.md"),
            "the in-sync architecture table must not be flagged: {found:?}"
        );
    }

    #[test]
    fn missing_docs_or_markers_are_flagged() {
        let found = diags(&ws(PROTO_OK, None, None));
        assert!(found
            .iter()
            .any(|d| d.file == "docs/ARCHITECTURE.md" && d.message.contains("missing")));
        assert!(found
            .iter()
            .any(|d| d.file == "docs/PROTOCOL.md" && d.message.contains("missing")));
        assert!(diags(&ws(PROTO_OK, Some("# Arch\nno table here\n"), Some(DOCS_OK)))
            .iter()
            .any(|d| d.message.contains("error-codes:begin")));
    }

    #[test]
    fn kebab_case_derivation() {
        assert_eq!(kebab_case("BadRequest"), "bad-request");
        assert_eq!(kebab_case("Timeout"), "timeout");
        assert_eq!(kebab_case("NoOwnershipProof"), "no-ownership-proof");
    }
}

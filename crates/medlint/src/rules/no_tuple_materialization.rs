//! `no-tuple-materialization`: the migrated hot modules must stay columnar.
//!
//! `Table::tuples()` clones every cell of every row into owned `Tuple`s —
//! exactly the per-row allocation the columnar refactor removed from the
//! binning leaf resolution, the watermark plan/kernels, the per-recipient
//! fingerprint kernels, and the chunk-parallel engine. A call creeping back into one of those modules
//! silently reverts the hot path to row-at-a-time work while every
//! equivalence test keeps passing, so the regression only shows up as a
//! throughput cliff. This rule turns it into a lint failure instead: inside
//! the migrated modules, `.tuples()` receiver calls on the non-test path are
//! flagged. Genuine exceptions (cold paths, API shims) carry the standard
//! `// medlint::allow(no-tuple-materialization, reason)`.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// See the module docs.
pub struct NoTupleMaterialization;

/// The modules whose hot loops have been migrated to column scans.
fn in_scope(rel: &str) -> bool {
    rel == "crates/binning/src/plan.rs"
        || rel == "crates/watermark/src/plan.rs"
        || rel == "crates/watermark/src/kernel.rs"
        || rel == "crates/watermark/src/fingerprint.rs"
        || rel == "crates/core/src/engine.rs"
}

impl Rule for NoTupleMaterialization {
    fn name(&self) -> &'static str {
        "no-tuple-materialization"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.files.iter().filter(|f| in_scope(&f.rel_path)) {
            check_file(file, out);
        }
    }
}

fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.tokens.iter().enumerate() {
        if file.is_test_token(i) {
            continue;
        }
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if tok.text(&file.text) != "tuples" {
            continue;
        }
        // Only receiver calls: `<expr>.tuples(`.
        let is_method_call = file.prev_code(i).is_some_and(|p| file.tok_text(p) == ".")
            && file.next_code(i).is_some_and(|n| file.tok_text(n) == "(");
        if !is_method_call {
            continue;
        }
        out.push(Diagnostic::new(
            &file.rel_path,
            tok.line,
            "no-tuple-materialization",
            "`.tuples()` materializes owned rows inside a module migrated to \
             column scans; read the typed columns (`columns()` / `ColumnData`) \
             instead, or justify a cold-path exception with an allow",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_memory(vec![(path.to_string(), src.to_string())], None, None);
        let mut out = Vec::new();
        NoTupleMaterialization.check(&ws, &mut out);
        out
    }

    #[test]
    fn flags_tuples_calls_in_hot_modules() {
        let src =
            "fn f(t: &Table) {\n let rows = t.tuples();\n for tp in t.iter() { let _ = tp; }\n}\n";
        for path in [
            "crates/binning/src/plan.rs",
            "crates/watermark/src/plan.rs",
            "crates/watermark/src/kernel.rs",
            "crates/watermark/src/fingerprint.rs",
            "crates/core/src/engine.rs",
        ] {
            let found = diags(path, src);
            // `.tuples()` is flagged; plain `.iter()` is not (it is how the
            // column scans themselves walk slices).
            assert_eq!(found.len(), 1, "{path}: {found:?}");
            assert!(found[0].message.contains("tuples"));
            assert_eq!(found[0].line, 2);
        }
    }

    #[test]
    fn cold_modules_and_non_method_uses_pass() {
        let src = "fn f(t: &Table) { let _ = t.tuples(); }\n";
        assert!(diags("crates/relation/src/table.rs", src).is_empty());
        assert!(diags("crates/serve/src/server.rs", src).is_empty());
        // A field or free fn named `tuples` is not a receiver call.
        let free =
            "fn g(tuples: usize) -> usize { tuples + 1 }\nfn tuples(n: usize) -> usize { n }\n";
        assert!(diags("crates/core/src/engine.rs", free).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(t: &Table) { let _ = t.tuples(); }\n}\n";
        assert!(diags("crates/core/src/engine.rs", src).is_empty());
    }
}

//! `checked-framing`: length arithmetic on the wire path must be
//! explicit about overflow.
//!
//! Frame headers carry attacker-controlled `u32` lengths, and the codec
//! walks buffers with cursor+length arithmetic. In `serve::protocol` and
//! `core::codec`, bare `as` casts to integer types and unchecked `+`/`*`
//! involving length-like values are flagged — use `try_from`,
//! `checked_add`/`checked_mul`, or a saturating/sticky-overflow design.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// See the module docs.
pub struct CheckedFraming;

const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// Identifiers that talk about lengths, sizes or cursor positions.
fn is_lenish(word: &str) -> bool {
    word.contains("len")
        || word.contains("size")
        || matches!(word, "at" | "offset" | "pos" | "count" | "n" | "read" | "capacity")
}

fn in_scope(rel: &str) -> bool {
    rel == "crates/serve/src/protocol.rs"
        || rel == "crates/core/src/codec.rs"
        // The columnar table core: dictionary codes and row indices flow
        // between `u32` storage and `usize` addressing, and the CSV boundary
        // feeds it externally-supplied data.
        || rel == "crates/relation/src/column.rs"
        || rel == "crates/relation/src/csv.rs"
}

impl Rule for CheckedFraming {
    fn name(&self) -> &'static str {
        "checked-framing"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.files.iter().filter(|f| in_scope(&f.rel_path)) {
            check_file(file, out);
        }
    }
}

fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.tokens.iter().enumerate() {
        if file.is_test_token(i) {
            continue;
        }
        let text = tok.text(&file.text);
        match tok.kind {
            TokenKind::Ident if text == "as" => {
                let target_is_int =
                    file.next_code(i).is_some_and(|n| INT_TYPES.contains(&file.tok_text(n)));
                if target_is_int {
                    out.push(Diagnostic::new(
                        &file.rel_path,
                        tok.line,
                        "checked-framing",
                        "bare `as` integer cast on the framing path can \
                         silently truncate; use `try_from` (or widen losslessly \
                         with `from`)",
                    ));
                }
            }
            TokenKind::Punct
                if (text == "+" || text == "*") && is_unchecked_len_arithmetic(file, i) =>
            {
                let op = if text == "+" { "addition" } else { "multiplication" };
                out.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    "checked-framing",
                    format!(
                        "unchecked {op} on a length value can overflow on \
                             adversarial input; use `checked_{}`",
                        if text == "+" { "add" } else { "mul" }
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// A `+`/`*` is flagged when it is a binary operator (an operand on each
/// side, not `+=`, not a unary `*deref` or `&*`), and a length-like
/// identifier appears within three significant tokens on either side.
fn is_unchecked_len_arithmetic(file: &SourceFile, i: usize) -> bool {
    let Some(p) = file.prev_code(i) else { return false };
    let Some(n) = file.next_code(i) else { return false };
    if file.tok_text(n) == "=" {
        return false; // `+=` / `*=` compound assignment
    }
    let prev = &file.tokens[p];
    let prev_text = prev.text(&file.text);
    let prev_is_operand = matches!(prev.kind, TokenKind::Ident | TokenKind::Number)
        && !super::is_keyword(prev_text)
        || matches!(prev_text, ")" | "]");
    let next = &file.tokens[n];
    let next_is_operand =
        matches!(next.kind, TokenKind::Ident | TokenKind::Number) || file.tok_text(n) == "(";
    if !prev_is_operand || !next_is_operand {
        return false;
    }
    // Look for a length-ish identifier near the operator.
    let mut near = Vec::new();
    let mut j = i;
    for _ in 0..3 {
        match file.prev_code(j) {
            Some(k) => {
                near.push(k);
                j = k;
            }
            None => break,
        }
    }
    let mut j = i;
    for _ in 0..3 {
        match file.next_code(j) {
            Some(k) => {
                near.push(k);
                j = k;
            }
            None => break,
        }
    }
    near.into_iter().any(|k| {
        file.tokens.get(k).is_some_and(|t| t.kind == TokenKind::Ident)
            && is_lenish(file.tok_text(k))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_memory(vec![(path.to_string(), src.to_string())], None, None);
        let mut out = Vec::new();
        CheckedFraming.check(&ws, &mut out);
        out
    }

    #[test]
    fn flags_casts_and_len_arithmetic() {
        let src = "fn f(v: &[u8], at: usize) {\n let n = v.len() as u32;\n let end = at + n as usize;\n}\n";
        let found = diags("crates/core/src/codec.rs", src);
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found.iter().any(|d| d.line == 3 && d.message.contains("checked_add")));
    }

    #[test]
    fn checked_ops_and_plain_arithmetic_pass() {
        let src = "fn f(a: u32, b: u32, len: usize) -> Option<u32> {\n let c = a.checked_add(b)?;\n let d = len.checked_mul(2)?;\n let sum = a + b;\n Some(c + d as u32)\n}\n";
        // `a + b` has no length-ish operand nearby and is fine; the `as`
        // cast on line 5 still trips.
        let found = diags("crates/serve/src/protocol.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("as"));
    }

    #[test]
    fn scope_is_protocol_codec_and_column_store() {
        let src = "fn f(v: &[u8]) -> u32 { v.len() as u32 }\n";
        assert!(diags("crates/serve/src/server.rs", src).is_empty());
        assert!(!diags("crates/serve/src/protocol.rs", src).is_empty());
        assert!(!diags("crates/relation/src/column.rs", src).is_empty());
        assert!(!diags("crates/relation/src/csv.rs", src).is_empty());
    }

    #[test]
    fn use_renames_and_compound_assign_pass() {
        let src = "use std::io::Read as IoRead;\nfn f(mut at: usize, len: usize) { at += len; }\n";
        assert!(diags("crates/core/src/codec.rs", src).is_empty());
    }
}

//! The rule engine: the [`Rule`] trait, the registry of project rules,
//! and the suppression-aware [`lint`] entry point.
//!
//! Rules are *project-specific by design*: each one encodes an invariant
//! the MedShield serving path depends on (see `docs/ARCHITECTURE.md`,
//! "Static analysis"). A rule walks the token streams of a
//! [`Workspace`] and reports
//! [`Diagnostic`]s; the engine then drops every diagnostic covered by a
//! `// medlint::allow(rule, reason)` suppression on the same or the
//! preceding line.

mod checked_framing;
mod error_code_sync;
mod forbid_unsafe;
mod lock_discipline;
mod no_panic;
mod no_tuple_materialization;

use crate::diag::Diagnostic;
use crate::workspace::Workspace;

pub use checked_framing::CheckedFraming;
pub use error_code_sync::ErrorCodeSync;
pub use forbid_unsafe::ForbidUnsafe;
pub use lock_discipline::LockDiscipline;
pub use no_panic::NoPanic;
pub use no_tuple_materialization::NoTupleMaterialization;

/// Rust keywords that can precede `[` without it being an index
/// expression (`let [a, b] = …`, `for x in xs[..] {…}` never lexes `in [`
/// as indexing, etc.).
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Is `word` a Rust keyword (path-segment keywords excluded — `self`,
/// `Self`, `super` name values and can be indexed)?
pub(crate) fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

/// One lint rule.
pub trait Rule {
    /// The kebab-case rule name used in diagnostics and suppressions.
    fn name(&self) -> &'static str;
    /// Check the workspace, appending findings to `out`.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// Every registered rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanic),
        Box::new(LockDiscipline),
        Box::new(CheckedFraming),
        Box::new(NoTupleMaterialization),
        Box::new(ForbidUnsafe),
        Box::new(ErrorCodeSync),
    ]
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Findings that survived suppression filtering, in (file, line)
    /// order.
    pub diagnostics: Vec<Diagnostic>,
    /// How many findings a `medlint::allow` suppressed.
    pub suppressed: usize,
}

/// Run every rule over the workspace and apply suppressions. Malformed
/// suppression comments are themselves reported (rule `suppression`), so
/// a reasonless allow can never silently disable a gate.
pub fn lint(ws: &Workspace) -> LintReport {
    let mut raw = Vec::new();
    for rule in all_rules() {
        rule.check(ws, &mut raw);
    }
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    for diag in raw {
        let allowed = ws
            .files
            .iter()
            .find(|f| f.rel_path == diag.file)
            .is_some_and(|f| f.is_allowed(&diag.rule, diag.line));
        if allowed {
            suppressed += 1;
        } else {
            diagnostics.push(diag);
        }
    }
    for file in &ws.files {
        for (line, problem) in &file.bad_allows {
            diagnostics.push(Diagnostic::new(&file.rel_path, *line, "suppression", problem));
        }
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    LintReport { diagnostics, suppressed }
}

//! `no-panic`: the serving path must not be able to panic.
//!
//! A worker panic poisons shared mutexes and kills in-flight requests, so
//! `crates/serve`, `crates/cli` and the wire codec (`core::codec`) may
//! not call `unwrap()` / `expect()`, invoke the panicking macros, or use
//! slice/array indexing in non-test code. Use `match` / `let-else` /
//! `.get()` / `try_into()` and propagate a structured error instead.

use super::{is_keyword, Rule};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Panicking macro names caught when followed by `!`. Asserts are left
/// to clippy; these four are unconditional aborts.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// See the module docs.
pub struct NoPanic;

fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/serve/src/")
        || rel.starts_with("crates/cli/src/")
        || rel == "crates/core/src/codec.rs"
}

impl Rule for NoPanic {
    fn name(&self) -> &'static str {
        "no-panic"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in ws.files.iter().filter(|f| in_scope(&f.rel_path)) {
            check_file(file, out);
        }
    }
}

fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.tokens.iter().enumerate() {
        if file.is_test_token(i) {
            continue;
        }
        let text = tok.text(&file.text);
        match tok.kind {
            TokenKind::Ident if text == "unwrap" || text == "expect" => {
                let is_method = file.prev_code(i).is_some_and(|p| file.tok_text(p) == ".")
                    && file.next_code(i).is_some_and(|n| file.tok_text(n) == "(");
                if is_method {
                    out.push(Diagnostic::new(
                        &file.rel_path,
                        tok.line,
                        "no-panic",
                        format!(
                            "`.{text}()` can panic on the serving path; \
                             match on the error and propagate it"
                        ),
                    ));
                }
            }
            TokenKind::Ident if PANIC_MACROS.contains(&text) => {
                let is_macro = file.next_code(i).is_some_and(|n| file.tok_text(n) == "!");
                // `panic` as a path segment (`std::panic::catch_unwind`)
                // has no `!` after it.
                if is_macro {
                    out.push(Diagnostic::new(
                        &file.rel_path,
                        tok.line,
                        "no-panic",
                        format!("`{text}!` aborts the worker; return a structured error instead"),
                    ));
                }
            }
            TokenKind::Punct if text == "[" && is_index_expression(file, i) => {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    "no-panic",
                    "slice indexing panics when out of bounds; \
                         use `.get(..)` / `split_at_checked`-style access",
                ));
            }
            _ => {}
        }
    }
}

/// A `[` opens an index expression when the previous significant token
/// could end an expression: an identifier (that is not a keyword), a
/// literal, or one of `)` `]` `?`. Attributes (`#[`), macro invocations
/// (`vec![`), types (`&[u8]`, `-> [u8; 4]`) and slice patterns
/// (`let [a, b] = …`) all fail that test.
fn is_index_expression(file: &SourceFile, i: usize) -> bool {
    let Some(p) = file.prev_code(i) else { return false };
    let Some(prev) = file.tokens.get(p) else { return false };
    let prev_text = prev.text(&file.text);
    match prev.kind {
        TokenKind::Ident => !is_keyword(prev_text),
        TokenKind::Number | TokenKind::Str => true,
        TokenKind::Punct => matches!(prev_text, ")" | "]" | "?"),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_memory(vec![(path.to_string(), src.to_string())], None, None);
        let mut out = Vec::new();
        NoPanic.check(&ws, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src =
            "fn f() {\n a.unwrap();\n b.expect(\"x\");\n panic!(\"boom\");\n unreachable!();\n}\n";
        let found = diags("crates/serve/src/server.rs", src);
        assert_eq!(found.len(), 4);
        assert_eq!(found[0].line, 2);
        assert_eq!(found[2].line, 4);
    }

    #[test]
    fn flags_indexing_but_not_types_or_attrs() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f(xs: &[u8]) -> u8 {\n let v = vec![1];\n let [p, q] = (1, 2).into();\n xs[0]\n}\n";
        let found = diags("crates/serve/src/server.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 6);
    }

    #[test]
    fn ignores_test_code_and_out_of_scope_files() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { a.unwrap(); xs[0]; panic!(); }\n}\n";
        assert!(diags("crates/serve/src/server.rs", src).is_empty());
        let live = "fn f() { a.unwrap(); }\n";
        assert!(diags("crates/engine/src/lib.rs", live).is_empty());
        assert!(!diags("crates/core/src/codec.rs", live).is_empty());
    }

    #[test]
    fn path_segment_panic_is_not_a_macro_call() {
        let src = "fn f() { let _ = std::panic::catch_unwind(|| ()); }\n";
        assert!(diags("crates/serve/src/server.rs", src).is_empty());
    }
}

//! Loading the set of files to lint: a real workspace walked from disk,
//! or an in-memory fixture for tests.

use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Everything a lint run looks at.
#[derive(Debug)]
pub struct Workspace {
    /// All Rust sources, sorted by `rel_path`.
    pub files: Vec<SourceFile>,
    /// `docs/ARCHITECTURE.md`, when present.
    pub docs_architecture: Option<String>,
    /// `docs/PROTOCOL.md` (the normative wire spec), when present.
    pub docs_protocol: Option<String>,
}

impl Workspace {
    /// Build a workspace from in-memory `(rel_path, text)` pairs — the
    /// fixture-test entry point.
    pub fn from_memory(
        files: Vec<(String, String)>,
        docs_architecture: Option<String>,
        docs_protocol: Option<String>,
    ) -> Workspace {
        let mut files: Vec<SourceFile> =
            files.into_iter().map(|(p, t)| SourceFile::new(&p, t)).collect();
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Workspace { files, docs_architecture, docs_protocol }
    }

    /// Walk a workspace root on disk. Scans `src/`, `tests/` and
    /// `examples/` at the root and under every `crates/*` and `shims/*`
    /// member; `target/` and hidden directories are never entered.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut rs_files = Vec::new();
        for top in ["src", "tests", "examples"] {
            collect_rs(&root.join(top), &mut rs_files);
        }
        for group in ["crates", "shims"] {
            let group_dir = root.join(group);
            let Ok(entries) = fs::read_dir(&group_dir) else { continue };
            let mut members: Vec<PathBuf> =
                entries.filter_map(|e| e.ok().map(|e| e.path())).filter(|p| p.is_dir()).collect();
            members.sort();
            for member in members {
                for sub in ["src", "tests", "benches", "examples"] {
                    collect_rs(&member.join(sub), &mut rs_files);
                }
            }
        }
        rs_files.sort();
        let mut files = Vec::with_capacity(rs_files.len());
        for path in rs_files {
            let text = fs::read_to_string(&path)?;
            let rel = rel_path(root, &path);
            files.push(SourceFile::new(&rel, text));
        }
        let docs_architecture = fs::read_to_string(root.join("docs/ARCHITECTURE.md")).ok();
        let docs_protocol = fs::read_to_string(root.join("docs/PROTOCOL.md")).ok();
        Ok(Workspace { files, docs_architecture, docs_protocol })
    }
}

/// Recursively collect `.rs` files under `dir` (silently skipping
/// anything unreadable — a vanished temp dir must not kill the lint).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// `root`-relative path with `/` separators, total on any input.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_memory_sorts_and_wraps() {
        let ws = Workspace::from_memory(
            vec![
                ("crates/b/src/lib.rs".to_string(), String::new()),
                ("crates/a/src/lib.rs".to_string(), String::new()),
            ],
            Some("# docs".to_string()),
            None,
        );
        assert_eq!(ws.files[0].rel_path, "crates/a/src/lib.rs");
        assert!(ws.docs_architecture.is_some());
        assert!(ws.docs_protocol.is_none());
    }

    #[test]
    fn load_walks_this_workspace() {
        // CARGO_MANIFEST_DIR = crates/medlint; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ws = Workspace::load(&root).expect("workspace loads");
        assert!(
            ws.files.iter().any(|f| f.rel_path == "crates/serve/src/protocol.rs"),
            "protocol.rs should be discovered"
        );
        assert!(
            ws.files.iter().any(|f| f.rel_path == "crates/medlint/src/lexer.rs"),
            "medlint itself should be discovered"
        );
        assert!(ws.docs_architecture.is_some(), "docs/ARCHITECTURE.md should load");
        assert!(ws.docs_protocol.is_some(), "docs/PROTOCOL.md should load");
    }
}

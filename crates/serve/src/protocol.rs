//! The length-framed wire protocol of the serving layer.
//!
//! The normative specification of everything below — frame layout,
//! request-id semantics, pipelining and ordering rules, backpressure, the
//! command and error-code catalogue — is `docs/PROTOCOL.md`; this module is
//! its reference implementation.
//!
//! Every message — request or response — travels as one **frame**: a 4-byte
//! big-endian prefix followed by the frame's contents. Frames keep the
//! stream self-synchronizing (a reader always knows where the next message
//! starts) and let the server reject oversized submissions *before*
//! buffering them. Two frame encodings share the stream, distinguished by
//! the prefix's most-significant bit:
//!
//! * **v1** (bit clear): the low 31 bits are the payload length, and the
//!   payload follows directly. A v1 requester must keep at most one request
//!   in flight per connection — replies carry no correlation id.
//! * **v2** (bit set): the low 31 bits are the payload length, and an
//!   8-byte big-endian **request id** sits between the prefix and the
//!   payload. A v2 client may pipeline many requests on one connection; the
//!   server echoes each request's id on its reply frame, and replies may
//!   arrive **out of order**.
//!
//! A request payload is UTF-8 text: one header line, then the body.
//!
//! ```text
//! protect per-attribute=true\n
//! ssn,age,zip_code,doctor,symptom,prescription\n
//! 000-00-0001,34,10301,...\n
//! ```
//!
//! The header names the command (`protect`, `protect-for`, `embed`,
//! `detect`, `list-recipients`, `resolve-ownership`, `resolve-leaker`,
//! `ping`) plus space-separated `key=value` parameters;
//! the body — everything after the first newline — is a CSV table in the
//! exact format the rest of the framework reads and writes.
//!
//! A response payload mirrors the shape: one line of JSON (the report — see
//! [`crate::json`]), then an optional CSV body (the protected release for
//! `protect`/`embed`). The JSON always carries `"status":"ok"` or
//! `"status":"error"` with a machine-readable `"code"` from [`ErrorCode`] —
//! malformed input yields a structured reply, never a dropped connection.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Upper bound accepted for a frame payload unless the server configures its
/// own (16 MiB — roughly a 100k-row CSV submission).
// medlint::allow(checked-framing, const arithmetic is evaluated and overflow-checked at compile time)
pub const DEFAULT_MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// The protocol version this implementation speaks. Reported by `ping` as
/// `"protocol"` so clients can negotiate before pipelining.
pub const PROTOCOL_VERSION: u64 = 2;

/// The most-significant bit of the 4-byte frame prefix: set on v2 frames,
/// which carry an 8-byte request id between the prefix and the payload.
pub const V2_FLAG: u32 = 1 << 31;

/// The largest payload length encodable in a frame prefix (the low 31
/// bits). [`DEFAULT_MAX_FRAME_LEN`] is far below this; the bound matters
/// only for servers configured with an enormous `max_frame_len`.
// medlint::allow(checked-framing, const arithmetic is evaluated and overflow-checked at compile time)
pub const MAX_ENCODABLE_LEN: u32 = V2_FLAG - 1;

/// The commands a request header can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Bin + watermark the CSV body; the server retains the release state
    /// and replies with a release id, the embedding report and the release
    /// CSV.
    Protect,
    /// Fingerprint a copy for `recipient=<name>`. Without `release=<id>`,
    /// bins the CSV body into a new release first; with it, fingerprints a
    /// further copy of the stored release from the original CSV body. The
    /// recipient's mark is derived from the owner key (recipient name as
    /// derivation label), registered durably, and embedded; the reply
    /// carries the release id, the embedding report and the recipient's
    /// copy.
    ProtectFor,
    /// Re-embed the retained mark of `release=<id>` into the (already
    /// binned) CSV body; replies with the embedding report and the marked
    /// CSV.
    Embed,
    /// Detect the mark of `release=<id>` in the (possibly attacked) CSV
    /// body; replies with the detection report and the mark loss.
    Detect,
    /// List the registered recipients of `release=<id>`; replies with the
    /// recipient names in registration order.
    ListRecipients,
    /// Run the §5.4 dispute protocol for `release=<id>` over the CSV body;
    /// replies with the court's verdict.
    ResolveOwnership,
    /// Trace the leaker of `release=<id>`: detect the fingerprint bits in
    /// the (possibly attacked) CSV body and rank the release's recipients
    /// by agreement; replies with the ranking and the top match. An
    /// optional `suspects=<a,b,...>` restricts the candidate set.
    ResolveLeaker,
    /// Liveness probe; replies with server statistics.
    Ping,
    /// Hold a worker for `ms=<n>` milliseconds. Only honored when the server
    /// was built with `debug_hooks` (integration tests use it to fill the
    /// queue deterministically); otherwise an unknown command.
    Sleep,
    /// Panic inside the handler — with `poison=store`, while holding the
    /// release-store lock. Only honored when the server was built with
    /// `debug_hooks` (integration tests use it to prove one panicking
    /// worker cannot cascade into poisoned-mutex failures on unrelated
    /// connections); otherwise an unknown command.
    Panic,
}

impl Command {
    /// The header spelling of the command.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Protect => "protect",
            Command::ProtectFor => "protect-for",
            Command::Embed => "embed",
            Command::Detect => "detect",
            Command::ListRecipients => "list-recipients",
            Command::ResolveOwnership => "resolve-ownership",
            Command::ResolveLeaker => "resolve-leaker",
            Command::Ping => "ping",
            Command::Sleep => "sleep",
            Command::Panic => "panic",
        }
    }

    fn parse(name: &str) -> Option<Command> {
        Some(match name {
            "protect" => Command::Protect,
            "protect-for" => Command::ProtectFor,
            "embed" => Command::Embed,
            "detect" => Command::Detect,
            "list-recipients" => Command::ListRecipients,
            "resolve-ownership" => Command::ResolveOwnership,
            "resolve-leaker" => Command::ResolveLeaker,
            "ping" => Command::Ping,
            "sleep" => Command::Sleep,
            "panic" => Command::Panic,
            _ => return None,
        })
    }
}

/// A parsed request: command, `key=value` parameters, CSV body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The command named by the header line.
    pub command: Command,
    /// The header's `key=value` parameters.
    pub params: BTreeMap<String, String>,
    /// The body (a CSV table for the data-carrying commands; may be empty).
    pub body: String,
}

impl Request {
    /// A request with no parameters and no body.
    pub fn new(command: Command) -> Request {
        Request { command, params: BTreeMap::new(), body: String::new() }
    }

    /// Add a `key=value` parameter. Keys and values must not contain spaces
    /// or newlines (they live on the header line).
    pub fn param(mut self, key: &str, value: impl Into<String>) -> Request {
        self.params.insert(key.to_string(), value.into());
        self
    }

    /// Attach a CSV body.
    pub fn body(mut self, body: impl Into<String>) -> Request {
        self.body = body.into();
        self
    }

    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut header = self.command.name().to_string();
        for (k, v) in &self.params {
            header.push(' ');
            header.push_str(k);
            header.push('=');
            header.push_str(v);
        }
        header.push('\n');
        let mut out = header.into_bytes();
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    /// Parse a frame payload into a request.
    pub fn parse(payload: &[u8]) -> Result<Request, RequestError> {
        let text = std::str::from_utf8(payload).map_err(|_| RequestError::NotUtf8)?;
        let (header, body) = match text.split_once('\n') {
            Some((h, b)) => (h, b),
            None => (text, ""),
        };
        let mut words = header.split_whitespace();
        let name = words.next().ok_or(RequestError::EmptyHeader)?;
        let command =
            Command::parse(name).ok_or_else(|| RequestError::UnknownCommand(name.to_string()))?;
        let mut params = BTreeMap::new();
        for word in words {
            let (k, v) = word
                .split_once('=')
                .ok_or_else(|| RequestError::MalformedParameter(word.to_string()))?;
            params.insert(k.to_string(), v.to_string());
        }
        Ok(Request { command, params, body: body.to_string() })
    }
}

/// Why a request payload could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The payload is not UTF-8.
    NotUtf8,
    /// The header line is empty.
    EmptyHeader,
    /// The header names no known command.
    UnknownCommand(String),
    /// A header word is not `key=value`.
    MalformedParameter(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::NotUtf8 => write!(f, "request payload is not UTF-8"),
            RequestError::EmptyHeader => write!(f, "request header line is empty"),
            RequestError::UnknownCommand(c) => write!(f, "unknown command: {c}"),
            RequestError::MalformedParameter(w) => {
                write!(f, "header word is not key=value: {w}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Machine-readable error codes carried in `"code"` of an error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request payload could not be parsed (not UTF-8, empty header,
    /// malformed parameter).
    BadRequest,
    /// The header named no known command.
    UnknownCommand,
    /// The frame announced a payload larger than the server accepts.
    OversizedFrame,
    /// The server is at its configured connection limit and refused this
    /// connection; retry later or against another endpoint.
    ConnectionLimit,
    /// The CSV body could not be parsed.
    MalformedCsv,
    /// The bounded request queue is full; retry later.
    QueueFull,
    /// The request waited in the queue past its deadline.
    Timeout,
    /// A required parameter is missing or unparsable.
    MissingParameter,
    /// The named release id is not in the server's store.
    UnknownRelease,
    /// The named release carries no ownership proof, so the §5.4 dispute
    /// protocol cannot run (protect with `mark-from-statistic` enabled).
    NoOwnershipProof,
    /// The named release has no registered recipients, so there is no
    /// candidate set for `resolve-leaker` to rank.
    NoRecipients,
    /// A named recipient (e.g. in `suspects=`) is not registered for the
    /// release.
    UnknownRecipient,
    /// The protection engine rejected the submission.
    Engine,
    /// The durable release store could not persist or sync the release.
    Storage,
    /// The server is shutting down.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownCommand => "unknown-command",
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::ConnectionLimit => "connection-limit",
            ErrorCode::MalformedCsv => "malformed-csv",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::Timeout => "timeout",
            ErrorCode::MissingParameter => "missing-parameter",
            ErrorCode::UnknownRelease => "unknown-release",
            ErrorCode::NoOwnershipProof => "no-ownership-proof",
            ErrorCode::NoRecipients => "no-recipients",
            ErrorCode::UnknownRecipient => "unknown-recipient",
            ErrorCode::Engine => "engine",
            ErrorCode::Storage => "storage",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }
}

/// A decoded response: the JSON report line plus the optional CSV body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The JSON report (first line of the payload).
    pub json: String,
    /// The CSV body, when the command returns a table.
    pub body: Option<String>,
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.json.clone().into_bytes();
        out.push(b'\n');
        if let Some(body) = &self.body {
            out.extend_from_slice(body.as_bytes());
        }
        out
    }

    /// Decode a frame payload (header line = JSON, rest = body).
    pub fn decode(payload: &[u8]) -> Result<Response, RequestError> {
        let text = std::str::from_utf8(payload).map_err(|_| RequestError::NotUtf8)?;
        let (json, body) = match text.split_once('\n') {
            Some((j, b)) => (j.to_string(), (!b.is_empty()).then(|| b.to_string())),
            None => (text.to_string(), None),
        };
        Ok(Response { json, body })
    }

    /// True when the report carries `"status":"ok"`.
    pub fn is_ok(&self) -> bool {
        crate::json::get_str(&self.json, "status").as_deref() == Some("ok")
    }

    /// The error code of an error reply.
    pub fn code(&self) -> Option<String> {
        crate::json::get_str(&self.json, "code")
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer announced a payload longer than `max_len`.
    Oversized {
        /// The announced payload length.
        len: usize,
        /// The reader's limit.
        max: usize,
    },
    /// The stream ended mid-frame.
    Truncated,
    /// An I/O error other than a read timeout.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated => write!(f, "stream ended in the middle of a frame"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded frame: the payload plus the request id when the frame used
/// the v2 encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The 8-byte request id of a v2 frame; `None` for a v1 frame.
    pub request_id: Option<u64>,
    /// The frame payload.
    pub payload: Vec<u8>,
}

/// Write one v1 frame (length prefix + payload, no request id).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(None, payload)?)?;
    w.flush()
}

/// Write one v2 frame (length prefix with [`V2_FLAG`], 8-byte request id,
/// payload).
pub fn write_frame_v2(w: &mut impl Write, request_id: u64, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(Some(request_id), payload)?)?;
    w.flush()
}

/// Encode a frame into one contiguous buffer — the prefix (with the v2 flag
/// when a request id is present), the id, the payload. The server's I/O
/// core appends these to per-connection write buffers; clients write them
/// straight to the socket.
pub fn encode_frame(request_id: Option<u64>, payload: &[u8]) -> io::Result<Vec<u8>> {
    let len =
        u32::try_from(payload.len()).ok().filter(|&l| l <= MAX_ENCODABLE_LEN).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds 31-bit length")
        })?;
    let mut out = Vec::with_capacity(payload.len().saturating_add(12));
    match request_id {
        None => out.extend_from_slice(&len.to_be_bytes()),
        Some(id) => {
            out.extend_from_slice(&(len | V2_FLAG).to_be_bytes());
            out.extend_from_slice(&id.to_be_bytes());
        }
    }
    out.extend_from_slice(payload);
    Ok(out)
}

/// One step of the incremental frame reader.
#[derive(Debug)]
pub enum ReadStep {
    /// A complete frame.
    Frame(Frame),
    /// The peer closed the stream cleanly (EOF between frames).
    Eof,
    /// A read timeout (or `WouldBlock` on a non-blocking stream) fired with
    /// the frame still incomplete; the partial state is kept — call `step`
    /// again.
    Idle,
}

/// An incremental frame reader that survives read timeouts and non-blocking
/// sockets.
///
/// The server's I/O core owns non-blocking sockets, so any read can return
/// `WouldBlock` after *part* of a frame arrived. The reader keeps the
/// partial prefix/id/payload across calls so no bytes are lost and the
/// stream never desynchronizes. It decodes both frame encodings: a prefix
/// with [`V2_FLAG`] set is followed by an 8-byte request id.
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 4],
    header_read: usize,
    id: [u8; 8],
    id_read: usize,
    in_id: bool,
    request_id: Option<u64>,
    payload: Vec<u8>,
    payload_read: usize,
    in_payload: bool,
}

impl FrameReader {
    /// A reader with no partial state.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// True when no frame is partially read (safe to stop reading).
    pub fn is_clean(&self) -> bool {
        self.header_read == 0 && !self.in_id && !self.in_payload
    }

    /// Decode the completed 4-byte prefix: enforce the length limit, then
    /// move to the id (v2) or payload (v1) phase.
    fn begin_body(&mut self, max_len: usize) -> Result<(), FrameError> {
        let word = u32::from_be_bytes(self.header);
        let v2 = word & V2_FLAG != 0;
        let len = usize::try_from(word & MAX_ENCODABLE_LEN)
            .map_err(|_| FrameError::Oversized { len: usize::MAX, max: max_len })?;
        if len > max_len {
            return Err(FrameError::Oversized { len, max: max_len });
        }
        self.payload = vec![0; len];
        self.payload_read = 0;
        self.request_id = None;
        if v2 {
            self.in_id = true;
            self.id_read = 0;
        } else {
            self.in_payload = true;
        }
        Ok(())
    }

    /// Read until a frame completes, EOF, or a read timeout.
    pub fn step(&mut self, r: &mut impl Read, max_len: usize) -> Result<ReadStep, FrameError> {
        loop {
            if self.header_read < 4 && !self.in_id && !self.in_payload {
                // medlint::allow(no-panic, header_read < 4 by the branch condition)
                match r.read(&mut self.header[self.header_read..]) {
                    Ok(0) => {
                        return if self.header_read == 0 {
                            Ok(ReadStep::Eof)
                        } else {
                            Err(FrameError::Truncated)
                        };
                    }
                    Ok(n) => {
                        self.header_read = self.header_read.saturating_add(n);
                        if self.header_read == 4 {
                            self.begin_body(max_len)?;
                        }
                    }
                    Err(e) if is_timeout(&e) => return Ok(ReadStep::Idle),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(FrameError::Io(e)),
                }
            } else if self.in_id {
                debug_assert!(self.id_read < 8);
                // medlint::allow(no-panic, id_read < 8 whenever in_id is set)
                match r.read(&mut self.id[self.id_read..]) {
                    Ok(0) => return Err(FrameError::Truncated),
                    Ok(n) => {
                        self.id_read = self.id_read.saturating_add(n);
                        if self.id_read == 8 {
                            self.request_id = Some(u64::from_be_bytes(self.id));
                            self.in_id = false;
                            self.in_payload = true;
                        }
                    }
                    Err(e) if is_timeout(&e) => return Ok(ReadStep::Idle),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(FrameError::Io(e)),
                }
            } else if self.payload_read == self.payload.len() {
                let payload = std::mem::take(&mut self.payload);
                let request_id = self.request_id;
                *self = FrameReader::new();
                return Ok(ReadStep::Frame(Frame { request_id, payload }));
            } else {
                // medlint::allow(no-panic, payload_read < payload.len() by the branch condition above)
                match r.read(&mut self.payload[self.payload_read..]) {
                    Ok(0) => return Err(FrameError::Truncated),
                    Ok(n) => self.payload_read = self.payload_read.saturating_add(n),
                    Err(e) if is_timeout(&e) => return Ok(ReadStep::Idle),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(FrameError::Io(e)),
                }
            }
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Read one frame from a blocking stream (no timeout installed).
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Option<Frame>, FrameError> {
    let mut reader = FrameReader::new();
    loop {
        match reader.step(r, max_len)? {
            ReadStep::Frame(frame) => return Ok(Some(frame)),
            ReadStep::Eof => return Ok(None),
            // Without a read timeout installed `Idle` cannot occur, but a
            // caller that installed one anyway just keeps waiting.
            ReadStep::Idle => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::new(Command::Detect).param("release", "r3").body("ssn,age\n1,2\n");
        let parsed = Request::parse(&req.encode()).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.params["release"], "r3");
        assert_eq!(parsed.body, "ssn,age\n1,2\n");
    }

    #[test]
    fn request_parse_rejects_garbage() {
        assert_eq!(Request::parse(&[0xff, 0xfe]), Err(RequestError::NotUtf8));
        assert_eq!(Request::parse(b""), Err(RequestError::EmptyHeader));
        assert_eq!(Request::parse(b"  \nbody"), Err(RequestError::EmptyHeader));
        assert_eq!(
            Request::parse(b"nuke everything\n"),
            Err(RequestError::UnknownCommand("nuke".to_string()))
        );
        assert_eq!(
            Request::parse(b"detect releaser3\n"),
            Err(RequestError::MalformedParameter("releaser3".to_string()))
        );
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response { json: "{\"status\":\"ok\"}".into(), body: Some("a,b\n1,2\n".into()) };
        let decoded = Response::decode(&resp.encode()).unwrap();
        assert_eq!(decoded, resp);
        assert!(decoded.is_ok());
        let bare =
            Response { json: "{\"status\":\"error\",\"code\":\"timeout\"}".into(), body: None };
        let decoded = Response::decode(&bare.encode()).unwrap();
        assert_eq!(decoded.body, None);
        assert_eq!(decoded.code().as_deref(), Some("timeout"));
    }

    #[test]
    fn frames_roundtrip_and_enforce_the_limit() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let frame = read_frame(&mut cursor, 1024).unwrap().unwrap();
        assert_eq!(frame, Frame { request_id: None, payload: b"hello".to_vec() });
        let frame = read_frame(&mut cursor, 1024).unwrap().unwrap();
        assert_eq!(frame, Frame { request_id: None, payload: Vec::new() });
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());

        let mut buf = Vec::new();
        write_frame(&mut buf, &[7u8; 100]).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor, 64) {
            Err(FrameError::Oversized { len: 100, max: 64 }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn v2_frames_carry_request_ids_and_mix_with_v1() {
        let mut buf = Vec::new();
        write_frame_v2(&mut buf, 7, b"first").unwrap();
        write_frame(&mut buf, b"legacy").unwrap();
        write_frame_v2(&mut buf, u64::MAX, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let frame = read_frame(&mut cursor, 1024).unwrap().unwrap();
        assert_eq!(frame, Frame { request_id: Some(7), payload: b"first".to_vec() });
        let frame = read_frame(&mut cursor, 1024).unwrap().unwrap();
        assert_eq!(frame, Frame { request_id: None, payload: b"legacy".to_vec() });
        let frame = read_frame(&mut cursor, 1024).unwrap().unwrap();
        assert_eq!(frame, Frame { request_id: Some(u64::MAX), payload: Vec::new() });
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());
    }

    #[test]
    fn v2_oversized_frames_are_detected_with_the_id_still_readable() {
        // The length limit is enforced from the prefix alone, before the
        // payload is buffered; the id bytes were not yet consumed, so the
        // reader reports the announced length faithfully.
        let mut buf = Vec::new();
        write_frame_v2(&mut buf, 42, &[7u8; 100]).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor, 64) {
            Err(FrameError::Oversized { len: 100, max: 64 }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn v2_truncated_id_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame_v2(&mut buf, 42, b"payload").unwrap();
        buf.truncate(8); // prefix + half the id
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor, 1024), Err(FrameError::Truncated)));
    }

    #[test]
    fn encode_frame_rejects_payloads_beyond_the_31_bit_bound() {
        // Can't allocate 2 GiB in a unit test; rely on the length check
        // rejecting a fake oversized slice via the u32 conversion path by
        // checking the boundary constant instead.
        assert_eq!(MAX_ENCODABLE_LEN, 0x7fff_ffff);
        assert!(encode_frame(Some(1), b"ok").is_ok());
    }

    #[test]
    fn truncated_streams_are_errors_not_hangs() {
        // Header cut short.
        let mut cursor = std::io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(read_frame(&mut cursor, 1024), Err(FrameError::Truncated)));
        // Payload cut short.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor, 1024), Err(FrameError::Truncated)));
    }

    #[test]
    fn frame_reader_survives_split_reads() {
        // Feed the frame one byte at a time through a reader that returns
        // WouldBlock between bytes, as a timeout-polled socket would.
        struct Trickle {
            data: Vec<u8>,
            at: usize,
            ready: bool,
        }
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.at >= self.data.len() {
                    return Ok(0);
                }
                if !self.ready {
                    self.ready = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
                }
                self.ready = false;
                buf[0] = self.data[self.at];
                self.at += 1;
                Ok(1)
            }
        }
        let mut framed = Vec::new();
        write_frame(&mut framed, b"split me").unwrap();
        let mut trickle = Trickle { data: framed, at: 0, ready: false };
        let mut reader = FrameReader::new();
        let mut idles = 0;
        loop {
            match reader.step(&mut trickle, 1024).unwrap() {
                ReadStep::Frame(f) => {
                    assert_eq!(f.payload, b"split me");
                    assert_eq!(f.request_id, None);
                    break;
                }
                ReadStep::Idle => idles += 1,
                ReadStep::Eof => panic!("hit EOF before the frame completed"),
            }
        }
        assert!(idles > 0, "the trickle reader must have reported idle steps");
        assert!(reader.is_clean());

        // The same byte-at-a-time stream, v2: the id survives splitting too.
        let mut framed = Vec::new();
        write_frame_v2(&mut framed, 0xDEAD_BEEF_u64, b"split v2").unwrap();
        let mut trickle = Trickle { data: framed, at: 0, ready: false };
        let mut reader = FrameReader::new();
        loop {
            match reader.step(&mut trickle, 1024).unwrap() {
                ReadStep::Frame(f) => {
                    assert_eq!(f.payload, b"split v2");
                    assert_eq!(f.request_id, Some(0xDEAD_BEEF_u64));
                    break;
                }
                ReadStep::Idle => continue,
                ReadStep::Eof => panic!("hit EOF before the v2 frame completed"),
            }
        }
        assert!(reader.is_clean());
    }
}

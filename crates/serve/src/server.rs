//! The multiplexed serving layer: a non-blocking I/O core, bounded request
//! queue, worker pool, release store.
//!
//! Architecture (the paper's Fig. 2 deployment model as a long-lived
//! service):
//!
//! ```text
//! clients ──TCP──▶ I/O core (readiness loop, owns every socket) ──▶ bounded queue
//!                      ▲                                                │
//!                      └── completions ◀── workers (one engine each) ◀──┘
//!                                              │
//!                                     release store (columns, mark, proof)
//! ```
//!
//! * The **I/O core** is one thread that owns the listener and every
//!   accepted socket, all non-blocking. Each pass of its readiness loop
//!   accepts new connections (up to [`ServeConfig::max_connections`]),
//!   drains worker completions into per-connection write buffers, flushes
//!   writes, and read-scans a bounded rotating slice of connections — so
//!   the per-pass cost is constant no matter how many connections are
//!   open, which is what keeps throughput flat from 1 to thousands of
//!   clients. Header parse errors, oversized frames, `ping` and
//!   queue-full conditions are answered inline; nothing sick ever reaches
//!   the pool. (A true `epoll` readiness API needs `unsafe` syscalls the
//!   workspace forbids; the bounded scan is the hermetic, `std`-only
//!   equivalent and is the single swap point if that ever changes.)
//! * **Pipelining**: v2 frames ([`crate::protocol`]) carry a request id,
//!   so one connection can keep many requests in flight; replies are
//!   written the moment their job completes, tagged with the id —
//!   **out of order** is normal. v1 frames get per-connection sequence
//!   numbers and their replies are reordered back into request order, so
//!   a legacy one-at-a-time client sees exactly the old contract.
//! * The **bounded queue** ([`ServeConfig::queue_depth`]) applies
//!   back-pressure: when it is full the client gets a structured
//!   `queue-full` reply immediately instead of an ever-growing buffer. A
//!   connection whose peer stops reading its replies accumulates a write
//!   buffer; past a bound the core stops reading new requests from it
//!   until the backlog drains (per-connection backpressure).
//! * Each **worker** owns one [`ProtectionEngine`] built at startup — the
//!   binning agent (with its AES key schedule), the watermarker and the
//!   domain hierarchy trees are reused across every request the worker
//!   serves, which is what amortizes per-request setup. Small `detect`
//!   requests are **micro-batched**: a worker drains up to
//!   [`ServeConfig::batch_max`] consecutive small detects in one queue
//!   wake-up and shares one detection plan per release across the batch —
//!   with pipelined clients, many connections' small detects coalesce
//!   into one plan.
//! * The **release store** ([`crate::store`]) retains what the data holder
//!   keeps after `protect` (per-column binning state, the mark, the
//!   ownership proof) so later `detect` / `resolve-ownership` calls need
//!   only name the release. With [`ServeConfig::data_dir`] set the store is
//!   the durable WAL + snapshot [`DurableStore`]: a `protect` reply is
//!   released only after its release record is fsynced (one group-commit
//!   sync per mutating queue drain), and on restart recovery replays the
//!   log, truncates a torn tail and restores the next release id so ids
//!   handed to clients are never reused.
//!
//! Every worker computes with the same chunk-parallel engine the in-process
//! API exposes, so a served response is byte-identical to calling the engine
//! directly — the serve benchmark gates on exactly that.

use crate::json::{obj, str_arr, Json};
use crate::protocol::{
    encode_frame, Command, ErrorCode, Frame, FrameError, FrameReader, ReadStep, Request,
    RequestError, Response, DEFAULT_MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use crate::store::{
    lock_unpoisoned, DurableStore, MemoryStore, ReleaseStore, StoreError, StoredRecipient,
    StoredRelease,
};
use medshield_core::{PipelineError, ProtectionConfig, ProtectionEngine};
use medshield_datagen::ontology;
use medshield_dht::DomainHierarchyTree;
use medshield_metrics::mark_loss;
use medshield_relation::{csv, ColumnRole, Table};
use medshield_watermark::{
    derive_recipient_mark, score_recipients, DetectionReport, Mark, OwnershipProof,
};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Column roles of the medical schema `R(ssn, age, zip_code, doctor,
/// symptom, prescription)` used to import CSV submissions.
pub const MEDICAL_ROLES: [(&str, ColumnRole); 6] = [
    ("ssn", ColumnRole::Identifying),
    ("age", ColumnRole::QuasiNumeric),
    ("zip_code", ColumnRole::QuasiNumeric),
    ("doctor", ColumnRole::QuasiCategorical),
    ("symptom", ColumnRole::QuasiCategorical),
    ("prescription", ColumnRole::QuasiCategorical),
];

/// Mark-loss threshold under which a detect reply claims `carries_mark`
/// (the CLI's verdict uses the same bound).
pub const CARRIES_MARK_THRESHOLD: f64 = 0.25;

/// Configuration of the serving layer.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The protection-engine configuration every worker is built from.
    pub engine: ProtectionConfig,
    /// Worker threads *inside* each engine (the chunk-parallel `--threads`
    /// knob). Defaults to 1: the pool parallelizes across requests, so
    /// intra-request sharding only pays off for very large submissions.
    pub engine_threads: usize,
    /// Number of pool workers (parallel requests). Zero is rejected.
    pub workers: usize,
    /// Capacity of the bounded request queue; a full queue answers
    /// `queue-full` instead of buffering without bound. Zero is rejected.
    pub queue_depth: usize,
    /// Largest accepted frame payload.
    pub max_frame_len: usize,
    /// How long a request may wait in the queue before it is answered with
    /// a `timeout` error instead of being processed. (Processing itself is
    /// not preempted; the deadline bounds queue wait.)
    pub request_timeout: Duration,
    /// Upper bound on how many small `detect` requests one worker drains
    /// per queue wake-up (micro-batching). 1 disables batching.
    pub batch_max: usize,
    /// Body-size bound (bytes) under which a `detect` request counts as
    /// "small" and may join a micro-batch.
    pub batch_small_bytes: usize,
    /// Most connections the I/O core keeps open at once. A connection
    /// accepted past the limit is sent one structured `connection-limit`
    /// error frame (best effort) and closed. Zero is rejected.
    pub max_connections: usize,
    /// Default binning mode when a `protect` request does not say
    /// (`per-attribute=true|false`): per-attribute matches the CLI default.
    pub per_attribute_default: bool,
    /// Directory for the durable release store (WAL + snapshots). `None`
    /// keeps releases in memory — the default, and what tests use. Set, the
    /// server recovers every previously stored release on startup and a
    /// `protect` reply is only released once its record is fsynced.
    pub data_dir: Option<PathBuf>,
    /// Snapshot + compact the write-ahead log after this many appends
    /// (durable store only). 0 disables snapshots; the WAL alone still
    /// recovers everything, it just replays longer.
    pub snapshot_every: usize,
    /// Honor the test-only `sleep` and `panic` commands (integration tests
    /// use them to fill the queue deterministically and to exercise the
    /// mutex-poison recovery path). Never enable in production.
    pub debug_hooks: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: ProtectionConfig::default(),
            engine_threads: 1,
            workers: 4,
            queue_depth: 64,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            request_timeout: Duration::from_secs(30),
            batch_max: 8,
            batch_small_bytes: 64 * 1024,
            max_connections: 1024,
            per_attribute_default: true,
            data_dir: None,
            snapshot_every: 256,
            debug_hooks: false,
        }
    }
}

/// Errors from starting the server.
#[derive(Debug)]
pub enum ServeError {
    /// The configuration is unusable (zero workers, zero queue depth, or an
    /// engine configuration the engine rejects).
    InvalidConfig(String),
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
    /// The durable release store could not be opened or recovered.
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidConfig(m) => write!(f, "invalid serve configuration: {m}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Store(e) => write!(f, "release store error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Counters exposed by `ping` (and useful to tests).
#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    batched_detects: AtomicU64,
}

/// State shared by the acceptor, connections and workers.
struct Shared {
    config: ServeConfig,
    trees: BTreeMap<String, DomainHierarchyTree>,
    store: Box<dyn ReleaseStore>,
    shutdown: AtomicBool,
    counters: Counters,
}

/// How a reply is correlated back to its request on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplyTag {
    /// A v1 frame: no wire id. The core assigned a per-connection sequence
    /// number so replies can be put back into request order before writing.
    V1 {
        /// Position of the request in the connection's v1 request stream.
        seq: u64,
    },
    /// A v2 frame: the reply echoes the client-chosen request id and may be
    /// written as soon as it is ready, in any order.
    V2 {
        /// The client's request id.
        id: u64,
    },
}

/// A finished request on its way back to the I/O core.
struct Completion {
    conn: u64,
    tag: ReplyTag,
    response: Response,
}

/// One queued request: the parsed request plus where its reply goes.
struct Job {
    request: Request,
    conn: u64,
    tag: ReplyTag,
    enqueued: Instant,
    reply: mpsc::Sender<Completion>,
}

impl Job {
    /// Send the reply back to the I/O core (a no-op if the core is gone).
    fn respond(&self, response: Response) {
        let _ = self.reply.send(Completion { conn: self.conn, tag: self.tag, response });
    }
}

/// A bounded MPMC queue: `try_push` fails fast when full (back-pressure),
/// `pop_batch` blocks until work arrives and opportunistically drains a
/// micro-batch of consecutive jobs matching a predicate.
struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

enum TryPushError<T> {
    Full(T),
    Closed(T),
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut inner = lock_unpoisoned(&self.inner);
        if inner.closed {
            return Err(TryPushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block (up to `timeout`) for at least one item; when the first item
    /// matches `batch`, keep draining immediately-available matching items
    /// up to `max`. Returns `None` once the queue is closed **and** drained
    /// (workers exit), `Some(vec![])` on a timeout tick.
    fn pop_batch(
        &self,
        max: usize,
        timeout: Duration,
        batch: impl Fn(&T) -> bool,
    ) -> Option<Vec<T>> {
        let mut inner = lock_unpoisoned(&self.inner);
        while inner.items.is_empty() {
            if inner.closed {
                return None;
            }
            // Poison recovery mirrors `lock_unpoisoned`: the queue is a
            // plain deque + flag, consistent after any panic.
            let (guard, wait) =
                self.not_empty.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if wait.timed_out() && inner.items.is_empty() {
                return if inner.closed { None } else { Some(Vec::new()) };
            }
        }
        let Some(first) = inner.items.pop_front() else {
            // Unreachable: the wait loop above only exits with a non-empty
            // queue — but an empty batch is a safe answer if it ever isn't.
            return Some(Vec::new());
        };
        let batchable = batch(&first);
        let mut out = vec![first];
        while batchable && out.len() < max {
            if !inner.items.front().is_some_and(&batch) {
                break;
            }
            match inner.items.pop_front() {
                Some(next) => out.push(next),
                None => break,
            }
        }
        Some(out)
    }

    fn close(&self) {
        lock_unpoisoned(&self.inner).closed = true;
        self.not_empty.notify_all();
    }
}

/// A running server. Dropping the handle (or calling
/// [`ServeHandle::shutdown`]) shuts the server down gracefully: the
/// listener stops accepting, queued requests are drained and answered, and
/// every thread is joined.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<Job>>,
    io_core: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// The address the listener is actually bound to (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of releases currently in the store (after a durable restart
    /// this includes everything recovery restored).
    pub fn releases(&self) -> usize {
        self.shared.store.len()
    }

    /// True when the server persists releases across restarts.
    pub fn is_durable(&self) -> bool {
        self.shared.store.is_durable()
    }

    /// Shut the server down gracefully and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Block the current thread until the server stops (i.e. until another
    /// thread triggers shutdown or the I/O core dies). The CLI `serve`
    /// command parks here.
    pub fn wait(mut self) {
        if let Some(io_core) = self.io_core.take() {
            let _ = io_core.join();
        }
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Closing the queue lets the workers drain what is queued and exit;
        // their completions still flow to the I/O core, which stops reading,
        // flushes every pending reply and only then exits. A push racing the
        // close gets a structured shutting-down reply from the core.
        self.queue.close();
        if let Some(io_core) = self.io_core.take() {
            let _ = io_core.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Bind and start a server. Returns once the listener is accepting.
pub fn serve(config: ServeConfig, addr: impl ToSocketAddrs) -> Result<ServeHandle, ServeError> {
    if config.workers == 0 {
        return Err(ServeError::InvalidConfig("workers must be at least 1".into()));
    }
    if config.queue_depth == 0 {
        return Err(ServeError::InvalidConfig("queue depth must be at least 1".into()));
    }
    if config.batch_max == 0 {
        return Err(ServeError::InvalidConfig("batch max must be at least 1".into()));
    }
    if config.max_connections == 0 {
        return Err(ServeError::InvalidConfig("max connections must be at least 1".into()));
    }
    // Fail fast on an engine configuration the workers could not build
    // (e.g. engine_threads = 0 — the unified thread-count contract).
    let engine = ProtectionEngine::new(config.engine.clone(), config.engine_threads)
        .map_err(|e| ServeError::InvalidConfig(e.to_string()))?;

    // Open (and recover) the release store before binding: a server that
    // cannot reach its durable evidence must not accept traffic.
    let store: Box<dyn ReleaseStore> = match &config.data_dir {
        None => Box::new(MemoryStore::new()),
        Some(dir) => {
            Box::new(DurableStore::open(dir, config.snapshot_every).map_err(ServeError::Store)?)
        }
    };

    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        trees: ontology::all_trees(),
        store,
        shutdown: AtomicBool::new(false),
        counters: Counters::default(),
        config,
    });
    let queue = Arc::new(BoundedQueue::new(shared.config.queue_depth));

    let workers = (0..shared.config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            let engine = engine.clone();
            thread::Builder::new()
                .name(format!("medshield-worker-{i}"))
                .spawn(move || worker_loop(&shared, &queue, &engine))
                .map_err(ServeError::Io)
        })
        .collect::<Result<_, _>>();
    // On any spawn failure, close the queue so the workers that did start
    // drain out instead of leaking blocked on an abandoned queue.
    let workers: Vec<JoinHandle<()>> = match workers {
        Ok(workers) => workers,
        Err(e) => {
            queue.close();
            return Err(e);
        }
    };

    let io_core = {
        let shared = Arc::clone(&shared);
        let queue_for_core = Arc::clone(&queue);
        let spawned = thread::Builder::new()
            .name("medshield-io".into())
            .spawn(move || IoCore::new(listener, shared, queue_for_core).run());
        match spawned {
            Ok(handle) => handle,
            Err(e) => {
                queue.close();
                return Err(ServeError::Io(e));
            }
        }
    };

    Ok(ServeHandle { addr, shared, queue, io_core: Some(io_core), workers })
}

// Tuning constants of the readiness loop. The quotas bound the work of one
// pass so its cost stays constant no matter how many connections are open —
// the property that keeps throughput flat as connections grow.

/// Most connections accepted in one pass.
const ACCEPT_QUOTA: usize = 128;
/// Connections read-scanned per pass (rotating, so every open connection is
/// visited within `ceil(open / READ_SCAN_QUOTA)` passes).
const READ_SCAN_QUOTA: usize = 64;
/// Frames decoded from one connection per visit, so one firehose client
/// cannot starve the rest of the scan slice.
const FRAMES_PER_CONN_PER_VISIT: usize = 32;
/// Per-connection backpressure: past this many unflushed reply bytes the
/// core stops reading new requests from the connection until the peer
/// drains its replies.
const WRITE_BACKLOG_PAUSE: usize = 4 * 1024 * 1024;
/// Fruitless passes the core burns (yielding) before it starts sleeping;
/// covers a request/reply round trip so a ping-pong client never waits out
/// a sleep.
const SPIN_PASSES: u32 = 256;
/// How long the idle core blocks on the completions channel between scans
/// once the spin budget is exhausted.
const IDLE_TICK: Duration = Duration::from_millis(1);
/// At shutdown, once every in-flight job has completed, how long slow
/// readers get to drain their buffered replies before the core gives up.
const SHUTDOWN_FLUSH_GRACE: Duration = Duration::from_millis(500);

/// One accepted socket and the state the I/O core keeps for it.
struct Connection {
    stream: TcpStream,
    reader: FrameReader,
    /// Encoded reply frames awaiting the socket; `written` marks how much
    /// of the front has already left.
    write_buf: Vec<u8>,
    written: usize,
    /// Sequence number the next v1 request on this connection will get.
    next_v1_seq: u64,
    /// Sequence number of the v1 reply that must be written next.
    next_v1_write: u64,
    /// v1 replies that completed out of order, parked until their turn.
    pending_v1: BTreeMap<u64, Vec<u8>>,
    /// Requests of this connection currently queued or on a worker.
    in_flight: usize,
    /// The stream can no longer be read (EOF, or an unsyncable frame
    /// error); kept only until the buffered replies flush.
    closing: bool,
}

impl Connection {
    fn new(stream: TcpStream) -> io::Result<Connection> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            reader: FrameReader::new(),
            write_buf: Vec::new(),
            written: 0,
            next_v1_seq: 0,
            next_v1_write: 0,
            pending_v1: BTreeMap::new(),
            in_flight: 0,
            closing: false,
        })
    }

    /// Unflushed reply bytes.
    fn backlog(&self) -> usize {
        self.write_buf.len().saturating_sub(self.written)
    }

    /// Append one encoded reply. v2 replies go out in completion order; a
    /// v1 reply is parked until every earlier v1 reply has been appended,
    /// restoring the request order legacy clients rely on.
    fn enqueue_reply(&mut self, tag: ReplyTag, response: &Response) {
        let payload = response.encode();
        let id = match tag {
            ReplyTag::V2 { id } => Some(id),
            ReplyTag::V1 { .. } => None,
        };
        let frame = encode_frame(id, &payload).unwrap_or_else(|_| {
            // The reply exceeds the 31-bit frame bound (needs a > 2 GiB
            // payload); substitute a small structured error so the client
            // is not left waiting forever. Encoding *that* cannot fail.
            let fallback =
                error_response(ErrorCode::Engine, "the reply exceeds the frame length bound");
            encode_frame(id, &fallback.encode()).unwrap_or_default()
        });
        match tag {
            ReplyTag::V2 { .. } => self.write_buf.extend_from_slice(&frame),
            ReplyTag::V1 { seq } => {
                self.pending_v1.insert(seq, frame);
                while let Some(next) = self.pending_v1.remove(&self.next_v1_write) {
                    self.write_buf.extend_from_slice(&next);
                    self.next_v1_write = self.next_v1_write.wrapping_add(1);
                }
            }
        }
    }

    /// Write as much of the backlog as the socket accepts right now.
    /// Returns whether any bytes moved; an error means the peer is gone.
    fn flush(&mut self) -> io::Result<bool> {
        let mut progressed = false;
        while let Some(rest) = self.write_buf.get(self.written..) {
            if rest.is_empty() {
                break;
            }
            match self.stream.write(rest) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.written = self.written.saturating_add(n);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.written > 0 && self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
        }
        Ok(progressed)
    }
}

/// The readiness loop: one thread owning the listener and every accepted
/// socket, feeding parsed requests to the bounded queue and muxing worker
/// completions back onto the right connections.
struct IoCore {
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<Job>>,
    listener: TcpListener,
    completions_tx: mpsc::Sender<Completion>,
    completions_rx: mpsc::Receiver<Completion>,
    conns: BTreeMap<u64, Connection>,
    next_conn_id: u64,
    /// Where the rotating read scan resumes on the next pass.
    cursor: u64,
    /// Jobs handed to the queue whose completions have not come back yet.
    jobs_in_flight: usize,
}

impl IoCore {
    fn new(listener: TcpListener, shared: Arc<Shared>, queue: Arc<BoundedQueue<Job>>) -> IoCore {
        let (completions_tx, completions_rx) = mpsc::channel();
        IoCore {
            shared,
            queue,
            listener,
            completions_tx,
            completions_rx,
            conns: BTreeMap::new(),
            next_conn_id: 0,
            cursor: 0,
            jobs_in_flight: 0,
        }
    }

    fn run(&mut self) {
        let mut flush_deadline: Option<Instant> = None;
        let mut fruitless: u32 = 0;
        loop {
            let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
            let mut progressed = false;
            if !shutting_down {
                progressed |= self.accept_new();
            }
            progressed |= self.drain_completions();
            progressed |= self.pump_connections(shutting_down);
            if shutting_down && self.jobs_in_flight == 0 {
                // Every accepted request has been answered; what remains is
                // pushing buffered replies to slow readers, bounded by the
                // flush grace so one stalled peer cannot wedge shutdown.
                let deadline =
                    *flush_deadline.get_or_insert_with(|| Instant::now() + SHUTDOWN_FLUSH_GRACE);
                if self.conns.values().all(|c| c.backlog() == 0) || Instant::now() >= deadline {
                    break;
                }
            }
            if progressed {
                fruitless = 0;
            } else {
                fruitless = fruitless.saturating_add(1);
                if fruitless < SPIN_PASSES {
                    thread::yield_now();
                } else if let Ok(completion) = self.completions_rx.recv_timeout(IDLE_TICK) {
                    // A finished job wakes the core immediately; a timeout
                    // just re-scans the sockets.
                    self.route(completion);
                    fruitless = 0;
                }
            }
        }
    }

    /// Accept up to a quota of new connections; past the configured limit a
    /// connection gets one best-effort `connection-limit` error frame and
    /// is closed.
    fn accept_new(&mut self) -> bool {
        let mut progressed = false;
        for _ in 0..ACCEPT_QUOTA {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    progressed = true;
                    if self.conns.len() >= self.shared.config.max_connections {
                        refuse_connection(stream);
                        continue;
                    }
                    if let Ok(conn) = Connection::new(stream) {
                        self.conns.insert(self.next_conn_id, conn);
                        self.next_conn_id = self.next_conn_id.wrapping_add(1);
                    }
                }
                // WouldBlock (no pending connection) or a transient accept
                // error: either way, retry on the next pass.
                Err(_) => break,
            }
        }
        progressed
    }

    fn drain_completions(&mut self) -> bool {
        let mut progressed = false;
        while let Ok(completion) = self.completions_rx.try_recv() {
            progressed = true;
            self.route(completion);
        }
        progressed
    }

    /// Deliver one finished job to its connection's write buffer.
    fn route(&mut self, completion: Completion) {
        self.jobs_in_flight = self.jobs_in_flight.saturating_sub(1);
        let Some(conn) = self.conns.get_mut(&completion.conn) else {
            return; // the connection went away while its request was in flight
        };
        conn.in_flight = conn.in_flight.saturating_sub(1);
        conn.enqueue_reply(completion.tag, &completion.response);
        if conn.flush().is_err() {
            self.conns.remove(&completion.conn);
        }
    }

    /// One rotating pass over (a bounded slice of) the connections: flush
    /// backlogs, read and handle new frames, drop dead sockets.
    fn pump_connections(&mut self, shutting_down: bool) -> bool {
        if self.conns.is_empty() {
            return false;
        }
        let mut ids: Vec<u64> =
            self.conns.range(self.cursor..).map(|(&id, _)| id).take(READ_SCAN_QUOTA).collect();
        if ids.len() < READ_SCAN_QUOTA {
            let wrap = READ_SCAN_QUOTA - ids.len();
            ids.extend(self.conns.range(..self.cursor).map(|(&id, _)| id).take(wrap));
        }
        self.cursor = ids.last().map_or(0, |&id| id.wrapping_add(1));
        let mut progressed = false;
        for id in ids {
            progressed |= self.pump_one(id, shutting_down);
        }
        progressed
    }

    /// Flush + read one connection. Returns whether anything moved.
    fn pump_one(&mut self, id: u64, shutting_down: bool) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else {
            return false;
        };
        let Ok(mut progressed) = conn.flush() else {
            self.conns.remove(&id);
            return true;
        };
        if conn.closing {
            if conn.in_flight == 0 && conn.backlog() == 0 {
                self.conns.remove(&id);
                progressed = true;
            }
            return progressed;
        }
        // Reading pauses while shutdown drains, and while the peer lets its
        // replies pile up past the backlog bound (per-connection
        // backpressure); unread bytes stay in the kernel buffer.
        if shutting_down || conn.backlog() > WRITE_BACKLOG_PAUSE {
            return progressed;
        }
        let max_len = self.shared.config.max_frame_len;
        let mut frames = Vec::new();
        for _ in 0..FRAMES_PER_CONN_PER_VISIT {
            match conn.reader.step(&mut conn.stream, max_len) {
                Ok(ReadStep::Frame(frame)) => frames.push(frame),
                Ok(ReadStep::Idle) => break,
                Ok(ReadStep::Eof) => {
                    // The peer is done sending; keep the connection until
                    // its in-flight replies are written, read nothing more.
                    conn.closing = true;
                    break;
                }
                Err(FrameError::Oversized { len, max }) => {
                    // A structured reply, then stop reading: the announced
                    // payload was never read, so the stream cannot be
                    // resynchronized.
                    let response = error_response(
                        ErrorCode::OversizedFrame,
                        &format!("frame of {len} bytes exceeds the {max}-byte limit"),
                    );
                    let seq = conn.next_v1_seq;
                    conn.next_v1_seq = conn.next_v1_seq.wrapping_add(1);
                    conn.enqueue_reply(ReplyTag::V1 { seq }, &response);
                    conn.closing = true;
                    break;
                }
                Err(_) => {
                    self.conns.remove(&id);
                    return true;
                }
            }
        }
        progressed |= !frames.is_empty();
        for frame in frames {
            self.handle_frame(id, frame);
        }
        progressed
    }

    /// Parse one request frame and either answer it inline (parse errors,
    /// `ping`, backpressure) or queue it for the worker pool.
    fn handle_frame(&mut self, conn_id: u64, frame: Frame) {
        let tag = match frame.request_id {
            Some(id) => ReplyTag::V2 { id },
            None => {
                let Some(conn) = self.conns.get_mut(&conn_id) else {
                    return;
                };
                let seq = conn.next_v1_seq;
                conn.next_v1_seq = conn.next_v1_seq.wrapping_add(1);
                ReplyTag::V1 { seq }
            }
        };
        let request = match Request::parse(&frame.payload) {
            Ok(request) => request,
            Err(RequestError::UnknownCommand(name)) => {
                let response =
                    error_response(ErrorCode::UnknownCommand, &format!("unknown command: {name}"));
                return self.reply_inline(conn_id, tag, &response);
            }
            Err(e) => {
                let response = error_response(ErrorCode::BadRequest, &e.to_string());
                return self.reply_inline(conn_id, tag, &response);
            }
        };
        if request.command == Command::Ping {
            // Answered inline so health checks work even when the queue is
            // full; reports the protocol version and the server's limits so
            // clients can negotiate instead of discovering them via errors.
            let response = self.ping_response();
            return self.reply_inline(conn_id, tag, &response);
        }
        if self.shared.shutdown.load(Ordering::SeqCst) {
            let response = error_response(ErrorCode::ShuttingDown, "the server is shutting down");
            return self.reply_inline(conn_id, tag, &response);
        }
        let job = Job {
            request,
            conn: conn_id,
            tag,
            enqueued: Instant::now(),
            reply: self.completions_tx.clone(),
        };
        match self.queue.try_push(job) {
            Ok(()) => {
                self.jobs_in_flight = self.jobs_in_flight.saturating_add(1);
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.in_flight = conn.in_flight.saturating_add(1);
                }
            }
            Err(TryPushError::Full(_)) => {
                let response = error_response(
                    ErrorCode::QueueFull,
                    &format!(
                        "the request queue is full ({} pending); retry later",
                        self.shared.config.queue_depth
                    ),
                );
                self.reply_inline(conn_id, tag, &response);
            }
            Err(TryPushError::Closed(_)) => {
                let response =
                    error_response(ErrorCode::ShuttingDown, "the server is shutting down");
                self.reply_inline(conn_id, tag, &response);
            }
        }
    }

    /// Write a reply the core produced itself (no worker involved).
    fn reply_inline(&mut self, conn_id: u64, tag: ReplyTag, response: &Response) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        conn.enqueue_reply(tag, response);
        if conn.flush().is_err() {
            self.conns.remove(&conn_id);
        }
    }

    /// The inline `ping` reply: liveness, protocol version, the server's
    /// limits, live counters.
    fn ping_response(&self) -> Response {
        let shared = &self.shared;
        ok_response(
            vec![
                ("pong", true.into()),
                ("protocol", Json::Int(PROTOCOL_VERSION as i64)),
                ("workers", shared.config.workers.into()),
                ("queue_depth", shared.config.queue_depth.into()),
                ("max_frame_len", shared.config.max_frame_len.into()),
                ("max_connections", shared.config.max_connections.into()),
                ("connections", self.conns.len().into()),
                ("releases", shared.store.len().into()),
                ("durable", shared.store.is_durable().into()),
                ("served", Json::Int(shared.counters.served.load(Ordering::Relaxed) as i64)),
                (
                    "batched_detects",
                    Json::Int(shared.counters.batched_detects.load(Ordering::Relaxed) as i64),
                ),
            ],
            None,
        )
    }
}

/// Tell a connection refused at the limit why, best effort, then close it.
fn refuse_connection(mut stream: TcpStream) {
    let response = error_response(
        ErrorCode::ConnectionLimit,
        "the server is at its connection limit; retry later",
    );
    let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
    if let Ok(frame) = encode_frame(None, &response.encode()) {
        let _ = stream.write_all(&frame);
    }
}

fn worker_loop(shared: &Arc<Shared>, queue: &Arc<BoundedQueue<Job>>, engine: &ProtectionEngine) {
    let small = shared.config.batch_small_bytes;
    let is_small_detect =
        |job: &Job| job.request.command == Command::Detect && job.request.body.len() <= small;
    loop {
        let Some(batch) =
            queue.pop_batch(shared.config.batch_max, Duration::from_millis(100), is_small_detect)
        else {
            break; // closed and drained
        };
        if batch.is_empty() {
            continue; // timeout tick; loop re-checks for closure
        }
        process_batch(shared, engine, batch);
    }
}

/// Answer every job of a drained batch. Detect jobs that share a release
/// also share one detection plan (the batching win); everything else is
/// handled one by one in pop order.
fn process_batch(shared: &Arc<Shared>, engine: &ProtectionEngine, batch: Vec<Job>) {
    let detect_batch =
        batch.len() > 1 && batch.iter().all(|j| j.request.command == Command::Detect);
    if detect_batch {
        shared.counters.batched_detects.fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
    // Group consecutive same-release detects so one plan serves the group.
    let mut pending: Vec<Job> = Vec::new();
    let mut pending_release: Option<String> = None;
    let flush = |jobs: &mut Vec<Job>| {
        if jobs.is_empty() {
            return;
        }
        let group = std::mem::take(jobs);
        handle_detect_group(shared, engine, group);
    };
    for job in batch {
        if expired(shared, &job) {
            continue;
        }
        if job.request.command == Command::Detect {
            let release = job.request.params.get("release").cloned().unwrap_or_default();
            if pending_release.as_deref() != Some(release.as_str()) {
                flush(&mut pending);
                pending_release = Some(release);
            }
            pending.push(job);
        } else {
            flush(&mut pending);
            pending_release = None;
            let mut response = guarded(shared, engine, &job);
            // Durability barrier, batched per queue drain: a *successful*
            // protect reply leaves the worker only after its release record
            // is fsynced (group commit shares the fsync with concurrently
            // draining workers). A protect that failed before appending —
            // malformed CSV, engine rejection — has nothing to sync and
            // keeps its own error. The in-memory store's sync is a no-op.
            if matches!(job.request.command, Command::Protect | Command::ProtectFor)
                && response.is_ok()
            {
                if let Err(e) = shared.store.sync() {
                    // The durable store fail-stops on an fsync failure:
                    // whether this record reached disk is unknowable until a
                    // restart replays the log, and no further protect will
                    // be accepted — say so instead of claiming the release
                    // was stored.
                    response = error_response(
                        ErrorCode::Storage,
                        &format!(
                            "durability of the release is unconfirmed and the store has \
                             fail-stopped; restart the server and re-check before retrying: {e}"
                        ),
                    );
                }
            }
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            job.respond(response);
        }
    }
    flush(&mut pending);
}

/// Reply `timeout` (and consume the job) when it overstayed its queue
/// deadline.
fn expired(shared: &Arc<Shared>, job: &Job) -> bool {
    let waited = job.enqueued.elapsed();
    if waited <= shared.config.request_timeout {
        return false;
    }
    job.respond(error_response(
        ErrorCode::Timeout,
        &format!(
            "request waited {}ms in the queue (limit {}ms)",
            waited.as_millis(),
            shared.config.request_timeout.as_millis()
        ),
    ));
    true
}

/// Run one non-detect job with a panic guard: a served endpoint must never
/// take the worker down, whatever the submission.
fn guarded(shared: &Arc<Shared>, engine: &ProtectionEngine, job: &Job) -> Response {
    catch_unwind(AssertUnwindSafe(|| handle_request(shared, engine, &job.request))).unwrap_or_else(
        |_| error_response(ErrorCode::Engine, "internal error: the request handler panicked"),
    )
}

/// Handle a group of consecutive `detect` jobs naming the same release:
/// resolve the release once, build one detection plan, run every suspect
/// table against it.
fn handle_detect_group(shared: &Arc<Shared>, engine: &ProtectionEngine, group: Vec<Job>) {
    let outcome = catch_unwind(AssertUnwindSafe(|| detect_group_responses(shared, engine, &group)));
    let responses = outcome.unwrap_or_else(|_| {
        group
            .iter()
            .map(|_| {
                error_response(ErrorCode::Engine, "internal error: the detect handler panicked")
            })
            .collect()
    });
    debug_assert_eq!(responses.len(), group.len());
    for (job, response) in group.iter().zip(responses) {
        shared.counters.served.fetch_add(1, Ordering::Relaxed);
        job.respond(response);
    }
}

fn detect_group_responses(
    shared: &Arc<Shared>,
    engine: &ProtectionEngine,
    group: &[Job],
) -> Vec<Response> {
    // Resolve the release once for the whole group.
    let Some(first) = group.first() else {
        return Vec::new();
    };
    let stored = match release_param(shared, &first.request) {
        Ok(stored) => stored,
        Err(response) => return group.iter().map(|_| response.clone()).collect(),
    };
    let mark_len = engine.config().mark_len;
    let mut plan_schema: Option<medshield_relation::Schema> = None;
    let mut responses = Vec::with_capacity(group.len());
    // Parse all bodies first so the plan can be built from the first valid
    // schema and shared across every suspect that matches it.
    let tables: Vec<Result<Table, Response>> = group
        .iter()
        .map(|job| {
            csv::from_csv(&job.request.body, &MEDICAL_ROLES).map_err(|e| {
                error_response(ErrorCode::MalformedCsv, &format!("cannot parse the CSV body: {e}"))
            })
        })
        .collect();
    let first_valid = tables.iter().find_map(|t| t.as_ref().ok());
    let plan = first_valid.and_then(|table| {
        let plan = engine
            .watermarker()
            .plan_detect(table.schema(), &stored.columns, &shared.trees, mark_len)
            .ok()?;
        plan_schema = Some(table.schema().clone());
        Some(plan)
    });
    for table in &tables {
        let table = match table {
            Ok(table) => table,
            Err(response) => {
                responses.push(response.clone());
                continue;
            }
        };
        // The shared plan applies when the suspect's schema matches the one
        // it was built from; otherwise fall back to the engine's own path.
        // The per-suspect detect kernel memoizes each distinct cell value's
        // tree walk, so every suspect still pays only one PRF per selected
        // (tuple, column).
        let report: Result<DetectionReport, PipelineError> = match (&plan, &plan_schema) {
            (Some(plan), Some(schema)) if table.schema() == schema && !table.is_empty() => engine
                .watermarker()
                .prepare_detect(plan, table)
                .and_then(|kernel| kernel.run_range(plan, table, 0..table.len()))
                .map(|tally| tally.into_report(mark_len))
                .map_err(PipelineError::Watermark),
            _ => engine.detect(table, &stored.columns, &shared.trees),
        };
        responses.push(match report {
            Ok(report) => detect_response(&stored, table.len(), &report),
            Err(e) => error_response(ErrorCode::Engine, &e.to_string()),
        });
    }
    responses
}

fn detect_response(stored: &StoredRelease, rows: usize, report: &DetectionReport) -> Response {
    let loss = mark_loss(stored.mark.bits(), &report.mark);
    ok_response(
        vec![
            ("rows", rows.into()),
            ("selected_tuples", report.selected_tuples.into()),
            ("covered_positions", report.covered_positions.into()),
            ("wmd_len", report.wmd_len.into()),
            ("mark", Mark::from_bits(report.mark.clone()).to_string().into()),
            ("mark_loss", loss.into()),
            ("carries_mark", (loss <= CARRIES_MARK_THRESHOLD).into()),
        ],
        None,
    )
}

/// Handle one non-detect request on a worker.
fn handle_request(shared: &Arc<Shared>, engine: &ProtectionEngine, request: &Request) -> Response {
    match request.command {
        Command::Protect => handle_protect(shared, engine, request),
        Command::ProtectFor => handle_protect_for(shared, engine, request),
        Command::ListRecipients => handle_list_recipients(shared, request),
        Command::ResolveLeaker => handle_resolve_leaker(shared, engine, request),
        Command::Embed => handle_embed(shared, engine, request),
        Command::Detect => {
            // A detect that arrives here was not batched; run it as its own
            // group of one.
            let stored = match release_param(shared, request) {
                Ok(stored) => stored,
                Err(response) => return response,
            };
            let table = match parse_body(request) {
                Ok(table) => table,
                Err(response) => return response,
            };
            match engine.detect(&table, &stored.columns, &shared.trees) {
                Ok(report) => detect_response(&stored, table.len(), &report),
                Err(e) => error_response(ErrorCode::Engine, &e.to_string()),
            }
        }
        Command::ResolveOwnership => handle_resolve(shared, engine, request),
        Command::Sleep if shared.config.debug_hooks => {
            let ms: u64 = match param(request, "ms", 100) {
                Ok(ms) => ms,
                Err(response) => return response,
            };
            thread::sleep(Duration::from_millis(ms));
            ok_response(vec![("slept_ms", Json::Int(ms as i64))], None)
        }
        Command::Panic if shared.config.debug_hooks => {
            // Exercises the worker panic guard; with `poison=store`, the
            // panic unwinds while the release-store lock is held, which is
            // exactly the cascade the poison-recovering locks must absorb.
            if request.params.get("poison").map(String::as_str) == Some("store") {
                shared.store.poison_for_tests();
            }
            // medlint::allow(no-panic, the panic IS the feature: this debug-hooks-gated command exercises the worker panic guard)
            panic!("debug panic command");
        }
        Command::Sleep | Command::Panic => {
            error_response(ErrorCode::UnknownCommand, "debug commands are not enabled")
        }
        // Ping is answered inline by the connection thread.
        Command::Ping => ok_response(vec![("pong", true.into())], None),
    }
}

fn handle_protect(shared: &Arc<Shared>, engine: &ProtectionEngine, request: &Request) -> Response {
    let table = match parse_body(request) {
        Ok(table) => table,
        Err(response) => return response,
    };
    let per_attribute = match param(request, "per-attribute", shared.config.per_attribute_default) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let result = if per_attribute {
        engine.protect_per_attribute(&table, &shared.trees)
    } else {
        engine.protect(&table, &shared.trees)
    };
    let release = match result {
        Ok(release) => release,
        Err(e) => return error_response(ErrorCode::Engine, &e.to_string()),
    };
    let id = match shared.store.append(StoredRelease {
        columns: release.binning.columns.clone(),
        mark: release.mark.clone(),
        ownership: release.ownership.clone(),
        recipients: Vec::new(),
    }) {
        Ok(id) => id,
        Err(e) => {
            return error_response(
                ErrorCode::Storage,
                &format!("the release could not be stored: {e}"),
            );
        }
    };
    let body = csv::to_csv(&release.table);
    ok_response(
        vec![
            ("release", format!("r{id}").into()),
            ("rows", release.table.len().into()),
            ("selected_tuples", release.embedding.selected_tuples.into()),
            ("embedded_cells", release.embedding.embedded_cells.into()),
            ("changed_cells", release.embedding.changed_cells.into()),
            ("skipped_cells", release.embedding.skipped_cells.into()),
            ("wmd_len", release.embedding.wmd_len.into()),
            ("satisfied", release.binning.satisfied.into()),
            ("mark", release.mark.to_string().into()),
            ("has_ownership_proof", release.ownership.is_some().into()),
            ("warnings", str_arr(&release.binning.warnings)),
        ],
        Some(body),
    )
}

/// `protect-for`: produce a per-recipient fingerprinted copy of a release.
///
/// Without a `release` parameter the body is an original table: it is
/// protected exactly like `protect` (creating the release record), then the
/// recipient's fingerprint — derived from the owner key with the recipient id
/// as PRF label — is embedded over the released table and the reply body is
/// that copy. With `release=rN` the body is the already-released (binned)
/// table and only the recipient copy is produced. Selection depends only on
/// tuple identity, so re-embedding overwrites the owner's bits cell for cell
/// and all copies stay detection-equivalent for the owner.
fn handle_protect_for(
    shared: &Arc<Shared>,
    engine: &ProtectionEngine,
    request: &Request,
) -> Response {
    let Some(recipient_name) = request.params.get("recipient").cloned() else {
        return error_response(ErrorCode::MissingParameter, "the recipient parameter is required");
    };
    if recipient_name.is_empty() {
        return error_response(ErrorCode::MissingParameter, "the recipient name must not be empty");
    }
    let recipient_mark = derive_recipient_mark(
        &engine.watermarker().config().key,
        &recipient_name,
        engine.config().mark_len,
    );
    if request.params.contains_key("release") {
        // Fingerprint an additional recipient copy of an existing release.
        let stored = match release_param(shared, request) {
            Ok(stored) => stored,
            Err(response) => return response,
        };
        let id = match release_id_param(request) {
            Ok(id) => id,
            Err(response) => return response,
        };
        let table = match parse_body(request) {
            Ok(table) => table,
            Err(response) => return response,
        };
        let (copy, report) =
            match engine.embed(&table, &stored.columns, &shared.trees, &recipient_mark) {
                Ok(v) => v,
                Err(e) => return error_response(ErrorCode::Engine, &e.to_string()),
            };
        let recipients = match register_recipient(shared, id, &recipient_name, &recipient_mark) {
            Ok(count) => count,
            Err(response) => return response,
        };
        ok_response(
            vec![
                ("release", format!("r{id}").into()),
                ("recipient", recipient_name.into()),
                ("recipients", recipients.into()),
                ("rows", copy.len().into()),
                ("selected_tuples", report.selected_tuples.into()),
                ("embedded_cells", report.embedded_cells.into()),
                ("changed_cells", report.changed_cells.into()),
                ("skipped_cells", report.skipped_cells.into()),
                ("wmd_len", report.wmd_len.into()),
            ],
            Some(csv::to_csv(&copy)),
        )
    } else {
        let table = match parse_body(request) {
            Ok(table) => table,
            Err(response) => return response,
        };
        let per_attribute =
            match param(request, "per-attribute", shared.config.per_attribute_default) {
                Ok(v) => v,
                Err(response) => return response,
            };
        let result = if per_attribute {
            engine.protect_per_attribute(&table, &shared.trees)
        } else {
            engine.protect(&table, &shared.trees)
        };
        let release = match result {
            Ok(release) => release,
            Err(e) => return error_response(ErrorCode::Engine, &e.to_string()),
        };
        let copied =
            engine.embed(&release.table, &release.binning.columns, &shared.trees, &recipient_mark);
        let (copy, report) = match copied {
            Ok(v) => v,
            Err(e) => return error_response(ErrorCode::Engine, &e.to_string()),
        };
        let id = match shared.store.append(StoredRelease {
            columns: release.binning.columns.clone(),
            mark: release.mark.clone(),
            ownership: release.ownership.clone(),
            recipients: Vec::new(),
        }) {
            Ok(id) => id,
            Err(e) => {
                return error_response(
                    ErrorCode::Storage,
                    &format!("the release could not be stored: {e}"),
                );
            }
        };
        let recipients = match register_recipient(shared, id, &recipient_name, &recipient_mark) {
            Ok(count) => count,
            Err(response) => return response,
        };
        ok_response(
            vec![
                ("release", format!("r{id}").into()),
                ("recipient", recipient_name.into()),
                ("recipients", recipients.into()),
                ("rows", copy.len().into()),
                ("selected_tuples", report.selected_tuples.into()),
                ("embedded_cells", report.embedded_cells.into()),
                ("changed_cells", report.changed_cells.into()),
                ("skipped_cells", report.skipped_cells.into()),
                ("wmd_len", report.wmd_len.into()),
                ("satisfied", release.binning.satisfied.into()),
                ("has_ownership_proof", release.ownership.is_some().into()),
                ("warnings", str_arr(&release.binning.warnings)),
            ],
            Some(csv::to_csv(&copy)),
        )
    }
}

/// Register `name` as a recipient of release `id`, returning the recipient
/// count afterwards. Idempotent per name: re-issuing a copy to a recipient
/// already on file succeeds (the fingerprint is deterministic, so the copy is
/// identical).
fn register_recipient(
    shared: &Arc<Shared>,
    id: u64,
    name: &str,
    mark: &Mark,
) -> Result<usize, Response> {
    match shared
        .store
        .add_recipient(id, StoredRecipient { name: name.to_string(), mark: mark.clone() })
    {
        Ok(Some(stored)) => Ok(stored.recipients.len()),
        Ok(None) => Err(error_response(
            ErrorCode::UnknownRelease,
            &format!("no release named r{id} is stored"),
        )),
        Err(e) => Err(error_response(
            ErrorCode::Storage,
            &format!("the recipient could not be stored: {e}"),
        )),
    }
}

/// `list-recipients`: enumerate the recipients registered for a release, in
/// registration order.
fn handle_list_recipients(shared: &Arc<Shared>, request: &Request) -> Response {
    let stored = match release_param(shared, request) {
        Ok(stored) => stored,
        Err(response) => return response,
    };
    let names: Vec<String> = stored.recipients.iter().map(|r| r.name.clone()).collect();
    ok_response(vec![("count", names.len().into()), ("recipients", str_arr(&names))], None)
}

/// `resolve-leaker`: traitor tracing. Detect the mark carried by a leaked
/// table, rank every registered recipient (or the `suspects` subset) by
/// fingerprint agreement, and name the best match. Under collusion the top
/// rank is a member of the colluding set: positions where colluders agree
/// survive their mixing, so a colluder still outranks every innocent
/// recipient in expectation.
fn handle_resolve_leaker(
    shared: &Arc<Shared>,
    engine: &ProtectionEngine,
    request: &Request,
) -> Response {
    let stored = match release_param(shared, request) {
        Ok(stored) => stored,
        Err(response) => return response,
    };
    if stored.recipients.is_empty() {
        return error_response(
            ErrorCode::NoRecipients,
            "the release has no registered recipients (issue copies with protect-for)",
        );
    }
    let candidates: Vec<&StoredRecipient> = match request.params.get("suspects") {
        None => stored.recipients.iter().collect(),
        Some(raw) => {
            let mut suspects = Vec::new();
            for name in raw.split(',').filter(|s| !s.is_empty()) {
                match stored.recipient(name) {
                    Some(recipient) => suspects.push(recipient),
                    None => {
                        return error_response(
                            ErrorCode::UnknownRecipient,
                            &format!("no recipient named {name} is registered for the release"),
                        );
                    }
                }
            }
            if suspects.is_empty() {
                return error_response(
                    ErrorCode::NoRecipients,
                    "the suspects parameter names no recipients",
                );
            }
            suspects
        }
    };
    let table = match parse_body(request) {
        Ok(table) => table,
        Err(response) => return response,
    };
    let report = match engine.detect(&table, &stored.columns, &shared.trees) {
        Ok(report) => report,
        Err(e) => return error_response(ErrorCode::Engine, &e.to_string()),
    };
    let ranking =
        score_recipients(&report.mark, candidates.iter().map(|r| (r.name.as_str(), &r.mark)));
    let Some(top) = ranking.first() else {
        // Unreachable: the candidate list is non-empty by construction.
        return error_response(ErrorCode::Engine, "no candidate could be scored");
    };
    let names: Vec<String> = ranking.iter().map(|s| s.name.clone()).collect();
    let runner_up = ranking.get(1).map(|s| s.score).unwrap_or(0.0);
    ok_response(
        vec![
            ("rows", table.len().into()),
            ("selected_tuples", report.selected_tuples.into()),
            ("wmd_len", report.wmd_len.into()),
            ("candidates", ranking.len().into()),
            ("leaker", top.name.clone().into()),
            ("leaker_score", top.score.into()),
            ("runner_up_score", runner_up.into()),
            ("ranking", str_arr(&names)),
        ],
        None,
    )
}

fn handle_embed(shared: &Arc<Shared>, engine: &ProtectionEngine, request: &Request) -> Response {
    let stored = match release_param(shared, request) {
        Ok(stored) => stored,
        Err(response) => return response,
    };
    let table = match parse_body(request) {
        Ok(table) => table,
        Err(response) => return response,
    };
    match engine.embed(&table, &stored.columns, &shared.trees, &stored.mark) {
        Ok((marked, report)) => ok_response(
            vec![
                ("rows", marked.len().into()),
                ("selected_tuples", report.selected_tuples.into()),
                ("embedded_cells", report.embedded_cells.into()),
                ("changed_cells", report.changed_cells.into()),
                ("skipped_cells", report.skipped_cells.into()),
                ("wmd_len", report.wmd_len.into()),
            ],
            Some(csv::to_csv(&marked)),
        ),
        Err(e) => error_response(ErrorCode::Engine, &e.to_string()),
    }
}

fn handle_resolve(shared: &Arc<Shared>, engine: &ProtectionEngine, request: &Request) -> Response {
    let stored = match release_param(shared, request) {
        Ok(stored) => stored,
        Err(response) => return response,
    };
    let Some(proof) = &stored.ownership else {
        // A structured, machine-readable code: a release stored without a
        // proof is a normal state (mark-from-statistic off), not a protocol
        // violation, and the claimant must be able to tell it apart from a
        // malformed request.
        return error_response(
            ErrorCode::NoOwnershipProof,
            "the release has no ownership proof (protect with mark-from-statistic enabled)",
        );
    };
    let table = match parse_body(request) {
        Ok(table) => table,
        Err(response) => return response,
    };
    // A claimant may present their own statistic (a thief presents a wrong
    // one); the default is the retained proof.
    let claimed = match param(request, "statistic", proof.statistic) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let claim = OwnershipProof { statistic: claimed, mark_len: proof.mark_len };
    let tau = match param(request, "tau", proof.statistic.abs() * 0.05 + 1.0) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let max_loss = match param(request, "max-mark-loss", CARRIES_MARK_THRESHOLD) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let identifier = table
        .schema()
        .identifying_indices()
        .first()
        .and_then(|&i| table.schema().column(i))
        .map(|c| c.name.clone());
    let Some(identifier) = identifier else {
        return error_response(
            ErrorCode::Engine,
            "the disputed table exposes no identifying column",
        );
    };
    let extracted = match engine.detect(&table, &stored.columns, &shared.trees) {
        Ok(report) => report.mark,
        Err(e) => return error_response(ErrorCode::Engine, &e.to_string()),
    };
    let verdict = engine.resolve_ownership(&claim, &table, &identifier, &extracted, tau, max_loss);
    ok_response(
        vec![
            ("rows", table.len().into()),
            ("claimed_statistic", verdict.claimed_statistic.into()),
            ("recomputed_statistic", verdict.recomputed_statistic.into()),
            ("statistic_consistent", verdict.statistic_consistent.into()),
            ("mark_loss", verdict.mark_loss.into()),
            ("accepted", verdict.accepted.into()),
        ],
        None,
    )
}

fn parse_body(request: &Request) -> Result<Table, Response> {
    csv::from_csv(&request.body, &MEDICAL_ROLES).map_err(|e| {
        error_response(ErrorCode::MalformedCsv, &format!("cannot parse the CSV body: {e}"))
    })
}

fn release_id_param(request: &Request) -> Result<u64, Response> {
    let raw = request.params.get("release").ok_or_else(|| {
        error_response(ErrorCode::MissingParameter, "the release parameter is required")
    })?;
    raw.strip_prefix('r').unwrap_or(raw).parse().map_err(|_| {
        error_response(ErrorCode::MissingParameter, &format!("invalid release id: {raw}"))
    })
}

fn release_param(shared: &Arc<Shared>, request: &Request) -> Result<Arc<StoredRelease>, Response> {
    let id = release_id_param(request)?;
    shared.store.get(id).ok_or_else(|| {
        error_response(ErrorCode::UnknownRelease, &format!("no release named r{id} is stored"))
    })
}

fn param<T: std::str::FromStr>(request: &Request, name: &str, default: T) -> Result<T, Response> {
    match request.params.get(name) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            error_response(
                ErrorCode::MissingParameter,
                &format!("parameter {name} has an invalid value: {raw}"),
            )
        }),
    }
}

fn ok_response(fields: Vec<(&str, Json)>, body: Option<String>) -> Response {
    let mut pairs = vec![("status", Json::from("ok"))];
    pairs.extend(fields);
    Response { json: obj(pairs).to_string(), body }
}

fn error_response(code: ErrorCode, message: &str) -> Response {
    Response {
        json: obj(vec![
            ("status", "error".into()),
            ("code", code.as_str().into()),
            ("message", message.into()),
        ])
        .to_string(),
        body: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_applies_backpressure_and_batches() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        q.try_push(1).ok().unwrap();
        q.try_push(2).ok().unwrap();
        assert!(matches!(q.try_push(3), Err(TryPushError::Full(3))));
        // Batch drain of matching items.
        let batch = q.pop_batch(8, Duration::from_millis(10), |_| true).unwrap();
        assert_eq!(batch, vec![1, 2]);
        // Timeout tick on an empty open queue.
        assert_eq!(q.pop_batch(8, Duration::from_millis(10), |_| true), Some(vec![]));
        q.close();
        assert!(matches!(q.try_push(4), Err(TryPushError::Closed(4))));
        assert_eq!(q.pop_batch(8, Duration::from_millis(10), |_| true), None);
    }

    #[test]
    fn bounded_queue_batches_only_consecutive_matches() {
        let q: BoundedQueue<u32> = BoundedQueue::new(8);
        for item in [2, 4, 5, 6] {
            q.try_push(item).ok().unwrap();
        }
        // First item even → drain even prefix only.
        let batch = q.pop_batch(8, Duration::from_millis(10), |n| n % 2 == 0).unwrap();
        assert_eq!(batch, vec![2, 4]);
        // Odd head is popped alone even though an even item follows.
        let batch = q.pop_batch(8, Duration::from_millis(10), |n| n % 2 == 0).unwrap();
        assert_eq!(batch, vec![5]);
        let batch = q.pop_batch(8, Duration::from_millis(10), |n| n % 2 == 0).unwrap();
        assert_eq!(batch, vec![6]);
    }

    #[test]
    fn serve_rejects_degenerate_configs() {
        let bad = ServeConfig { workers: 0, ..ServeConfig::default() };
        assert!(matches!(serve(bad, "127.0.0.1:0"), Err(ServeError::InvalidConfig(_))));
        let bad = ServeConfig { queue_depth: 0, ..ServeConfig::default() };
        assert!(matches!(serve(bad, "127.0.0.1:0"), Err(ServeError::InvalidConfig(_))));
        let bad = ServeConfig { max_connections: 0, ..ServeConfig::default() };
        assert!(matches!(serve(bad, "127.0.0.1:0"), Err(ServeError::InvalidConfig(_))));
        // The unified thread-count contract reaches the serving layer too.
        let bad = ServeConfig { engine_threads: 0, ..ServeConfig::default() };
        match serve(bad, "127.0.0.1:0") {
            Err(ServeError::InvalidConfig(m)) => assert!(m.contains("at least 1"), "{m}"),
            other => panic!("expected InvalidConfig, got {:?}", other.map(|h| h.addr())),
        }
    }

    #[test]
    fn serve_refuses_an_unopenable_data_dir() {
        // Point the durable store at a path whose parent is a *file*: the
        // store cannot create the directory and the server must fail fast
        // with a Store error instead of accepting traffic it cannot make
        // durable.
        let blocker =
            std::env::temp_dir().join(format!("medshield-serve-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let bad = ServeConfig { data_dir: Some(blocker.join("store")), ..ServeConfig::default() };
        match serve(bad, "127.0.0.1:0") {
            Err(ServeError::Store(_)) => {}
            other => panic!("expected Store error, got {:?}", other.map(|h| h.addr())),
        }
        let _ = std::fs::remove_file(&blocker);
    }
}

//! A hand-rolled JSON encoder (and a small flat-object reader) for the wire
//! protocol's report headers.
//!
//! The workspace builds hermetically — the `serde` dependency is a no-op
//! shim — so the serving layer encodes its reports with this minimal,
//! std-only writer instead. The reader side only needs to pick scalar fields
//! (and arrays of strings) out of the *flat* objects this crate itself
//! emits; it is not a general JSON parser.

use std::fmt;

/// A JSON value. Construct with the `obj`/`arr` helpers and the `From`
/// impls; render with `Display`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from [`Json::Num`] so counters render
    /// without a decimal point).
    Int(i64),
    /// A floating-point number. Non-finite values render as `null` — JSON
    /// has no NaN/Infinity literal.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Build an object from `(key, value)` pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Build an array of strings.
pub fn str_arr<S: AsRef<str>>(items: &[S]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.as_ref().to_string())).collect())
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// The raw text of `key`'s value in a flat JSON object emitted by this
/// crate. Skips over string contents (including escapes) and nested
/// brackets, so a value containing `","` or `"}"` cannot derail it.
pub fn get_raw<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let bytes = json.as_bytes();
    let needle = format!("\"{key}\"");
    let mut i = 0;
    let mut depth = 0usize;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'"' => {
                let start = i;
                i += 1;
                while let Some(&c) = bytes.get(i) {
                    if c == b'"' {
                        break;
                    }
                    if c == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                let end = (i + 1).min(bytes.len());
                if depth == 1 && json.get(start..end) == Some(needle.as_str()) {
                    // Key match at the top level: the value follows the ':'.
                    let mut j = end;
                    while bytes.get(j).is_some_and(|&c| (c as char).is_whitespace()) {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b':') {
                        return Some(value_slice(json, j + 1));
                    }
                }
                i = end;
            }
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// The slice of one JSON value starting at (or after whitespace from) `at`.
fn value_slice(json: &str, at: usize) -> &str {
    let bytes = json.as_bytes();
    let mut i = at;
    while bytes.get(i).is_some_and(|&c| (c as char).is_whitespace()) {
        i += 1;
    }
    let start = i;
    let mut depth = 0usize;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'"' => {
                i += 1;
                while let Some(&c) = bytes.get(i) {
                    if c == b'"' {
                        break;
                    }
                    if c == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1;
            }
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                if depth == 0 {
                    return json.get(start..i).unwrap_or_default().trim_end();
                }
                depth -= 1;
                i += 1;
            }
            b',' if depth == 0 => return json.get(start..i).unwrap_or_default().trim_end(),
            _ => i += 1,
        }
    }
    json.get(start..).unwrap_or_default().trim_end()
}

/// A string field, unescaped. `None` when absent or not a string.
pub fn get_str(json: &str, key: &str) -> Option<String> {
    let raw = get_raw(json, key)?;
    unescape(raw)
}

fn unescape(raw: &str) -> Option<String> {
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            '/' => out.push('/'),
            'u' => {
                let code: String = chars.by_ref().take(4).collect();
                let n = u32::from_str_radix(&code, 16).ok()?;
                out.push(char::from_u32(n)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// A numeric field. `None` when absent or not a number.
///
/// JSON has no NaN/Infinity literal, so the encoder renders non-finite
/// [`Json::Num`] values as `null` — this reader round-trips that `null`
/// back to NaN, the one non-finite value with "no numeric information"
/// semantics on the reading side (e.g. a `mark_loss` that could not be
/// computed).
pub fn get_f64(json: &str, key: &str) -> Option<f64> {
    let raw = get_raw(json, key)?;
    if raw == "null" {
        return Some(f64::NAN);
    }
    // Reject the textual spellings Rust's f64 parser would accept but a
    // JSON document can never contain.
    if raw.chars().any(|c| c.is_ascii_alphabetic() && c != 'e' && c != 'E') {
        return None;
    }
    raw.parse().ok()
}

/// An integer field. `None` when absent or not an integer.
pub fn get_u64(json: &str, key: &str) -> Option<u64> {
    get_raw(json, key)?.parse().ok()
}

/// A boolean field. `None` when absent or not a boolean.
pub fn get_bool(json: &str, key: &str) -> Option<bool> {
    match get_raw(json, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// The elements of a flat string-array field.
pub fn get_str_array(json: &str, key: &str) -> Option<Vec<String>> {
    let raw = get_raw(json, key)?;
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    let bytes = inner.as_bytes();
    let mut items = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        while bytes.get(i).is_some_and(|&c| (c as char).is_whitespace()) {
            i += 1;
        }
        if bytes.get(i) != Some(&b'"') {
            return None;
        }
        let start = i;
        i += 1;
        while let Some(&c) = bytes.get(i) {
            if c == b'"' {
                break;
            }
            if c == b'\\' {
                i += 1;
            }
            i += 1;
        }
        i += 1;
        // An unterminated string runs `i` past the end; `get` turns that
        // into a parse failure instead of a slicing panic.
        items.push(unescape(inner.get(start..i)?)?);
        while bytes.get(i).is_some_and(|&c| (c as char).is_whitespace()) {
            i += 1;
        }
        if let Some(&c) = bytes.get(i) {
            if c != b',' {
                return None;
            }
            i += 1;
        }
    }
    Some(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reads_back() {
        let j = obj(vec![
            ("status", "ok".into()),
            ("rows", 42usize.into()),
            ("loss", 0.25.into()),
            ("accepted", true.into()),
            ("note", "say \"hi\"\nline2".into()),
            ("warnings", str_arr(&["a", "b,}"])),
            ("nan", Json::Num(f64::NAN)),
        ]);
        let text = j.to_string();
        assert_eq!(get_str(&text, "status").as_deref(), Some("ok"));
        assert_eq!(get_u64(&text, "rows"), Some(42));
        assert_eq!(get_f64(&text, "loss"), Some(0.25));
        assert_eq!(get_bool(&text, "accepted"), Some(true));
        assert_eq!(get_str(&text, "note").as_deref(), Some("say \"hi\"\nline2"));
        assert_eq!(get_str_array(&text, "warnings").unwrap(), vec!["a", "b,}"]);
        assert_eq!(get_raw(&text, "nan"), Some("null"));
        assert_eq!(get_raw(&text, "missing"), None);
    }

    #[test]
    fn non_finite_numbers_render_null_and_read_back_as_nan() {
        // JSON has no NaN/Infinity token: every non-finite Num must render
        // as the valid literal `null`…
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let text = obj(vec![("loss", Json::Num(v))]).to_string();
            assert_eq!(text, "{\"loss\":null}", "{v} must encode as null");
            // …and get_f64 must round-trip it (as NaN) instead of dropping
            // the field.
            let read = get_f64(&text, "loss").expect("null reads back");
            assert!(read.is_nan(), "{v} read back as {read}");
        }
        // Finite values are untouched by the round-trip rule.
        let text = obj(vec![("loss", Json::Num(0.5))]).to_string();
        assert_eq!(get_f64(&text, "loss"), Some(0.5));
        // Non-numeric fields still read as None, not NaN: only the exact
        // `null` literal converts.
        let text = obj(vec![("loss", "NaN".into())]).to_string();
        assert_eq!(get_f64(&text, "loss"), None);
        assert_eq!(get_bool(&text, "loss"), None);
    }

    #[test]
    fn keys_inside_values_do_not_shadow() {
        let j = obj(vec![("a", "\"rows\": 9".into()), ("rows", 3usize.into())]);
        let text = j.to_string();
        assert_eq!(get_u64(&text, "rows"), Some(3));
    }

    #[test]
    fn control_characters_are_escaped() {
        let text = Json::Str("a\u{1}b".into()).to_string();
        assert_eq!(text, "\"a\\u0001b\"");
    }
}

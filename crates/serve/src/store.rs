//! The release store: what the data owner retains per protected release,
//! either in memory or durably on disk.
//!
//! The paper's custodian must answer `detect` and `resolve-ownership`
//! claims *long after* a release was outsourced — the binning columns, the
//! mark and the ownership proof are the owner's evidence, and evidence must
//! survive process death. [`DurableStore`] therefore keeps every release in
//! an append-only **write-ahead log** and periodically folds the log into a
//! **snapshot**:
//!
//! ```text
//! append(release)           recovery (open)
//!   │                          │
//!   ▼                          ▼
//! wal.log  ──compaction──▶  snapshot.bin ──▶ map + next id
//!   (length-prefixed,         (atomic tmp+rename,   ▲
//!    CRC-32 framed            same framing)         │
//!    records)                 torn WAL tail truncated┘
//! ```
//!
//! * **WAL records** are `[u32 len][u32 crc32][payload]` frames over the
//!   compact binary codec of [`medshield_core::codec`]; a crash can only
//!   tear the *tail*, which recovery detects (short frame, impossible
//!   length, checksum mismatch) and truncates before serving resumes.
//! * **Snapshots** are written to `snapshot.tmp`, fsynced, renamed over
//!   `snapshot.bin` and only then is the WAL truncated — at every instant
//!   one of (old snapshot + full WAL) or (new snapshot + truncated WAL)
//!   recovers the full map, and replaying a WAL record already folded into
//!   the snapshot is idempotent.
//! * **fsync batching (group commit):** [`ReleaseStore::append`] only
//!   writes; [`ReleaseStore::sync`] makes everything appended so far
//!   durable before a `protect` reply is released, and concurrent workers
//!   waiting on the same sync share one `fdatasync` call instead of queuing
//!   one each.
//! * **Recipient records:** `protect-for` appends a dedicated WAL record
//!   per registered recipient (release id, name, fingerprint mark) instead
//!   of rewriting the release; snapshots fold the recipients back into
//!   their release's record. Pre-refactor (v1) stores decode unchanged —
//!   their releases simply recover with empty recipient lists, and
//!   recipient-less releases are still *written* in the v1 byte format.
//! * **Id stability:** ids are assigned in WAL order under the log lock and
//!   `next id` is restored on recovery as one past the highest durable id —
//!   a release id handed to a client is never reassigned across restarts,
//!   so stale client ids can never alias onto new releases.

use medshield_binning::ColumnBinning;
use medshield_core::codec::{self, CodecError, Reader, Writer};
use medshield_watermark::{Mark, OwnershipProof};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write as IoWrite};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// What the data holder keeps per protected release: everything detection
/// and dispute resolution need later.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRelease {
    /// Per-column binning state (maximal/minimal/ultimate node sets), in
    /// schema order of the quasi columns.
    pub columns: Vec<ColumnBinning>,
    /// The release's own mark — the owner's single-mark copy (`protect`).
    pub mark: Mark,
    /// The §5.4 ownership proof, when the release was protected with
    /// `mark_from_statistic` enabled.
    pub ownership: Option<OwnershipProof>,
    /// The recipients this release was fingerprinted for (`protect-for`),
    /// in registration order. Empty for single-mark releases, including
    /// every release recovered from a pre-refactor (v1) store.
    pub recipients: Vec<StoredRecipient>,
}

impl StoredRelease {
    /// The registered recipient with the given name, if any.
    pub fn recipient(&self, name: &str) -> Option<&StoredRecipient> {
        self.recipients.iter().find(|r| r.name == name)
    }
}

/// One recipient copy of a release: the identity the fingerprint was derived
/// from and the derived mark itself (stored so `resolve-leaker` can score
/// recipients without re-deriving, and so the evidence survives a key
/// rotation).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecipient {
    /// The recipient's identity — the fingerprint derivation label.
    pub name: String,
    /// The fingerprint mark embedded into this recipient's copy.
    pub mark: Mark,
}

/// Errors from a release store.
#[derive(Debug)]
pub enum StoreError {
    /// Reading or writing the backing files failed.
    Io(std::io::Error),
    /// The backing files exist but cannot be decoded (and the damage is not
    /// a truncatable torn tail).
    Corrupt(String),
    /// Another live process holds the data directory.
    Busy(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "release store i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "release store is corrupt: {m}"),
            StoreError::Busy(m) => write!(f, "release store is busy: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Corrupt(e.to_string())
    }
}

/// Lock a mutex, recovering from poisoning: every mutex in the serving
/// layer guards plain-data state (maps, deques, counters) that is consistent
/// after any panic, so one panicking worker must not cascade into
/// `PoisonError` panics on unrelated connections.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // medlint::allow(lock-discipline, this IS the sanctioned acquisition point the rule funnels everyone into)
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Where the serving layer keeps release state. All methods take `&self`:
/// implementations are shared across worker threads.
pub trait ReleaseStore: Send + Sync {
    /// Store a release and return its id. Ids are strictly increasing and
    /// never reused, in memory or across restarts.
    fn append(&self, release: StoredRelease) -> Result<u64, StoreError>;

    /// Register a recipient copy of release `id`. Returns the updated
    /// release, or `None` when no such release exists. Idempotent per name:
    /// re-registering an existing recipient returns the release unchanged
    /// (fingerprints are deterministic, so the mark cannot differ), and
    /// durable stores write no duplicate WAL record for it.
    fn add_recipient(
        &self,
        id: u64,
        recipient: StoredRecipient,
    ) -> Result<Option<Arc<StoredRelease>>, StoreError>;

    /// Make every release appended so far durable. Called by the server
    /// once per mutating queue drain *before* the `protect` or `protect-for`
    /// reply is released; concurrent callers share one fsync (group
    /// commit). A no-op for in-memory stores.
    fn sync(&self) -> Result<(), StoreError>;

    /// The release with the given id, if stored.
    fn get(&self, id: u64) -> Option<Arc<StoredRelease>>;

    /// Number of stored releases.
    fn len(&self) -> usize;

    /// True when the store holds no releases.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The id the next [`ReleaseStore::append`] will assign.
    fn next_id(&self) -> u64;

    /// True when the store survives a restart.
    fn is_durable(&self) -> bool;

    /// Test hook: panic **while holding the store's internal lock**, to
    /// exercise mutex-poison recovery end to end. Only reachable through
    /// the debug-gated `panic` wire command; never called in production.
    #[doc(hidden)]
    fn poison_for_tests(&self) {
        // medlint::allow(no-panic, test hook reachable only via the debug-gated panic command; the panic is the point)
        panic!("debug poison hook");
    }
}

/// The default, restart-volatile store: a mutex-guarded map. Tests and
/// short-lived servers use it; `--data-dir` swaps in [`DurableStore`].
#[derive(Debug)]
pub struct MemoryStore {
    map: Mutex<HashMap<u64, Arc<StoredRelease>>>,
    next: AtomicU64,
}

impl MemoryStore {
    /// An empty in-memory store; ids start at 1.
    pub fn new() -> MemoryStore {
        MemoryStore { map: Mutex::new(HashMap::new()), next: AtomicU64::new(1) }
    }
}

impl Default for MemoryStore {
    /// Same as [`MemoryStore::new`] — a derived `Default` would start ids
    /// at 0, diverging from every other constructor's "ids start at 1"
    /// contract.
    fn default() -> MemoryStore {
        MemoryStore::new()
    }
}

impl ReleaseStore for MemoryStore {
    fn append(&self, release: StoredRelease) -> Result<u64, StoreError> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        lock_unpoisoned(&self.map).insert(id, Arc::new(release));
        Ok(id)
    }

    fn add_recipient(
        &self,
        id: u64,
        recipient: StoredRecipient,
    ) -> Result<Option<Arc<StoredRelease>>, StoreError> {
        let mut map = lock_unpoisoned(&self.map);
        let Some(existing) = map.get(&id) else { return Ok(None) };
        if existing.recipient(&recipient.name).is_some() {
            return Ok(Some(Arc::clone(existing)));
        }
        let mut updated = (**existing).clone();
        updated.recipients.push(recipient);
        let updated = Arc::new(updated);
        map.insert(id, Arc::clone(&updated));
        Ok(Some(updated))
    }

    fn sync(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn get(&self, id: u64) -> Option<Arc<StoredRelease>> {
        lock_unpoisoned(&self.map).get(&id).cloned()
    }

    fn len(&self) -> usize {
        lock_unpoisoned(&self.map).len()
    }

    fn next_id(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    fn is_durable(&self) -> bool {
        false
    }

    fn poison_for_tests(&self) {
        let _guard = lock_unpoisoned(&self.map);
        // medlint::allow(no-panic, test hook: panics while holding the lock to exercise poison recovery)
        panic!("debug poison hook (memory store)");
    }
}

/// File names inside the data directory.
const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
const LOCK_FILE: &str = "lock";

/// Magic prefixes identifying (and versioning) the two file formats.
const WAL_MAGIC: &[u8; 8] = b"MSWAL\x01\r\n";
const SNAPSHOT_MAGIC: &[u8; 8] = b"MSSNP\x01\r\n";

/// Recovery refuses record lengths beyond this: a frame header announcing
/// more is a torn or foreign tail, not a release record (real records are
/// a few hundred bytes).
const MAX_RECORD_LEN: usize = 64 * 1024 * 1024;

/// Version tags of the record payload encodings (the first payload byte).
///
/// * Tag 1 is the pre-refactor single-mark release record. It is still
///   **written** whenever a release has no recipients, so a store that never
///   sees `protect-for` stays byte-identical to one produced before the
///   per-recipient refactor — and a v1 store recovers without rewriting.
/// * Tag 2 is a release record with its recipient list folded in (snapshots
///   always fold; the WAL holds one when a `protect-for` created the
///   release).
/// * Tag 3 is the recipient-add record appended by
///   [`ReleaseStore::add_recipient`]; replaying it folds the recipient onto
///   its release.
const RELEASE_RECORD_V1: u8 = 1;
const RELEASE_RECORD_V2: u8 = 2;
const RECIPIENT_RECORD: u8 = 3;

/// The sequencing state of the write-ahead log; guarded by one mutex so WAL
/// bytes and release ids are appended in the same order.
#[derive(Debug)]
struct Wal {
    file: File,
    /// Current length of the valid prefix (a failed append rolls back to
    /// it, keeping the file parseable).
    len: u64,
    /// Appends since the last snapshot, for the compaction trigger.
    since_snapshot: usize,
}

/// Group-commit bookkeeping: `synced` / `written` count records, not bytes.
#[derive(Debug, Default)]
struct SyncState {
    synced: u64,
    syncing: bool,
    /// Set on the first fsync failure, permanently. A failed `fdatasync`
    /// may have *discarded* the dirty pages it could not write (the
    /// "fsyncgate" semantics of Linux), so a later successful fsync must
    /// not be credited as covering the earlier records — the store
    /// fail-stops: reads keep serving, every further append/sync errors,
    /// and a restart re-derives the truth from what actually reached disk.
    failed: bool,
}

/// The durable release store: WAL + snapshot + crash recovery. See the
/// module docs for the file formats and the crash-ordering argument.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    map: Mutex<HashMap<u64, Arc<StoredRelease>>>,
    wal: Mutex<Wal>,
    /// Duplicate handle to the WAL's file descriptor so group commit can
    /// fsync without holding the append lock.
    sync_file: File,
    /// The next id to assign; only mutated under the WAL lock so id order
    /// equals log order.
    next: AtomicU64,
    /// Records appended (and OS-buffered) so far.
    written: AtomicU64,
    sync_state: Mutex<SyncState>,
    sync_cv: Condvar,
    /// Snapshot + compact after this many appends; 0 disables snapshots
    /// (the WAL alone still recovers everything).
    snapshot_every: usize,
    /// Releases restored by recovery (observable via `ping`).
    recovered: usize,
    /// Holds the OS advisory lock on the data directory for the store's
    /// whole lifetime; released automatically when the process dies (even
    /// by SIGKILL), so a crashed owner never wedges the next one.
    _lock: File,
}

impl DurableStore {
    /// Open (or create) a durable store in `dir`, running crash recovery:
    /// load the snapshot if one exists, replay the WAL on top, truncate a
    /// torn tail record, and restore the next release id as one past the
    /// highest durable id.
    pub fn open(dir: impl AsRef<Path>, snapshot_every: usize) -> Result<DurableStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // Exactly one live process may own a data directory: two writers
        // would interleave WAL frames and hand the same release id to
        // different clients — the aliasing this store exists to prevent.
        // An OS advisory lock fails the second opener fast and evaporates
        // with the holder's death, however abrupt.
        let lock = File::create(dir.join(LOCK_FILE))?;
        if lock.try_lock().is_err() {
            return Err(StoreError::Busy(format!(
                "data directory {} is locked by another live process",
                dir.display()
            )));
        }
        // A leftover snapshot.tmp was never renamed, i.e. never became the
        // snapshot: discard it.
        let tmp = dir.join(SNAPSHOT_TMP);
        if tmp.exists() {
            let _ = std::fs::remove_file(&tmp);
        }

        let mut map = HashMap::new();
        let mut next: u64 = 1;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if snapshot_path.exists() {
            let bytes = std::fs::read(&snapshot_path)?;
            parse_snapshot(&bytes, &mut map, &mut next)?;
        }

        let wal_path = dir.join(WAL_FILE);
        // Never truncate on open: recovery decides below how much of an
        // existing log survives.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let valid_len = if bytes.is_empty() || WAL_MAGIC.starts_with(bytes.as_slice()) {
            // New log — or one whose very first (magic) write was torn,
            // which means it never held a record.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
            WAL_MAGIC.len() as u64
        } else if bytes.starts_with(WAL_MAGIC) {
            replay_wal(&bytes, &mut map, &mut next)
        } else {
            // Anything else is a foreign file; refuse to overwrite it.
            return Err(StoreError::Corrupt(format!(
                "{} does not start with the WAL magic",
                wal_path.display()
            )));
        };
        // Truncate the torn tail (a no-op when the whole log replayed) and
        // position the cursor for appending.
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        file.sync_data()?;
        // Make the log's *directory entry* durable too: fdatasync on the
        // file alone does not persist the creation of a fresh wal.log, and
        // losing that entry on power failure would resurrect an empty store
        // whose ids restart at 1 — the aliasing this module exists to
        // prevent. Same ordering the snapshot rename uses.
        File::open(&dir).and_then(|d| d.sync_all())?;

        let sync_file = file.try_clone()?;
        let recovered = map.len();
        Ok(DurableStore {
            dir,
            map: Mutex::new(map),
            wal: Mutex::new(Wal { file, len: valid_len, since_snapshot: 0 }),
            sync_file,
            next: AtomicU64::new(next),
            written: AtomicU64::new(0),
            sync_state: Mutex::new(SyncState::default()),
            sync_cv: Condvar::new(),
            snapshot_every,
            recovered,
            _lock: lock,
        })
    }

    /// Releases restored by crash recovery when the store was opened.
    pub fn recovered_releases(&self) -> usize {
        self.recovered
    }

    /// Fold the current map into a snapshot and truncate the WAL, without
    /// waiting for the `snapshot_every` trigger. Tests and operators use
    /// this; appends run it automatically.
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut wal = lock_unpoisoned(&self.wal);
        self.snapshot_locked(&mut wal)
    }

    /// Write `snapshot.tmp`, fsync it, rename it over `snapshot.bin`, fsync
    /// the directory, and only then truncate the WAL. Requires the WAL lock
    /// so no append can land between the map capture and the truncation.
    fn snapshot_locked(&self, wal: &mut Wal) -> Result<(), StoreError> {
        wal.since_snapshot = 0;
        let mut entries: Vec<(u64, Arc<StoredRelease>)> = {
            let map = lock_unpoisoned(&self.map);
            map.iter().map(|(id, release)| (*id, Arc::clone(release))).collect()
        };
        entries.sort_by_key(|(id, _)| *id);

        let tmp_path = self.dir.join(SNAPSHOT_TMP);
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(SNAPSHOT_MAGIC)?;
        tmp.write_all(&self.next.load(Ordering::Relaxed).to_le_bytes())?;
        tmp.write_all(&(entries.len() as u64).to_le_bytes())?;
        for (id, release) in &entries {
            tmp.write_all(&frame_record(&encode_release_record(*id, release)?))?;
        }
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, self.dir.join(SNAPSHOT_FILE))?;
        // The rename itself must be durable before the WAL loses the same
        // records. If the directory cannot be fsynced, skip the truncation:
        // the log keeps everything and compaction retries later.
        if File::open(&self.dir).and_then(|d| d.sync_all()).is_err() {
            return Ok(());
        }
        wal.file.set_len(WAL_MAGIC.len() as u64)?;
        wal.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        wal.file.sync_data()?;
        wal.len = WAL_MAGIC.len() as u64;
        Ok(())
    }
}

impl ReleaseStore for DurableStore {
    fn append(&self, release: StoredRelease) -> Result<u64, StoreError> {
        if lock_unpoisoned(&self.sync_state).failed {
            return Err(StoreError::Io(std::io::Error::other(
                "the store fail-stopped after an fsync failure; restart to recover",
            )));
        }
        let mut wal = lock_unpoisoned(&self.wal);
        let id = self.next.load(Ordering::Relaxed);
        let frame = frame_record(&encode_release_record(id, &release)?);
        if let Err(e) = wal.file.write_all(&frame) {
            // Roll back to the last record boundary so a partial write
            // cannot shadow later appends from recovery.
            let len = wal.len;
            let _ = wal.file.set_len(len);
            let _ = wal.file.seek(SeekFrom::Start(len));
            return Err(StoreError::Io(e));
        }
        wal.len += frame.len() as u64;
        self.next.store(id + 1, Ordering::Relaxed);
        self.written.fetch_add(1, Ordering::Release);
        lock_unpoisoned(&self.map).insert(id, Arc::new(release));
        wal.since_snapshot += 1;
        if self.snapshot_every > 0 && wal.since_snapshot >= self.snapshot_every {
            // Compaction is an optimization, never a correctness need: the
            // WAL already holds this release, so a snapshot failure must
            // not fail the append (the client would retry a release that is
            // stored, durable and serving). The trigger counter was reset,
            // so compaction simply retries after another `snapshot_every`
            // appends.
            if self.snapshot_locked(&mut wal).is_err() {
                // Whatever step failed, re-anchor the append cursor to the
                // file's real end so the next record can never land past a
                // shrunken EOF (a hole would read as a torn tail and shadow
                // every record after it).
                if let Ok(end) = wal.file.seek(SeekFrom::End(0)) {
                    wal.len = end;
                }
            }
        }
        Ok(id)
    }

    fn add_recipient(
        &self,
        id: u64,
        recipient: StoredRecipient,
    ) -> Result<Option<Arc<StoredRelease>>, StoreError> {
        if lock_unpoisoned(&self.sync_state).failed {
            return Err(StoreError::Io(std::io::Error::other(
                "the store fail-stopped after an fsync failure; restart to recover",
            )));
        }
        // The WAL lock orders the existence check, the record bytes and the
        // map update against concurrent appends, exactly like `append`.
        let mut wal = lock_unpoisoned(&self.wal);
        {
            let map = lock_unpoisoned(&self.map);
            match map.get(&id) {
                None => return Ok(None),
                Some(existing) if existing.recipient(&recipient.name).is_some() => {
                    // Idempotent re-registration: the fingerprint is
                    // deterministic, so there is nothing new to log.
                    return Ok(Some(Arc::clone(existing)));
                }
                Some(_) => {}
            }
        }
        let frame = frame_record(&encode_recipient_record(id, &recipient)?);
        if let Err(e) = wal.file.write_all(&frame) {
            let len = wal.len;
            let _ = wal.file.set_len(len);
            let _ = wal.file.seek(SeekFrom::Start(len));
            return Err(StoreError::Io(e));
        }
        wal.len += frame.len() as u64;
        self.written.fetch_add(1, Ordering::Release);
        let updated = {
            let mut map = lock_unpoisoned(&self.map);
            fold_recipient(&mut map, id, recipient);
            map.get(&id).cloned()
        };
        wal.since_snapshot += 1;
        if self.snapshot_every > 0 && wal.since_snapshot >= self.snapshot_every {
            // Same rationale as in `append`: compaction failure must never
            // fail a durably logged mutation.
            if self.snapshot_locked(&mut wal).is_err() {
                if let Ok(end) = wal.file.seek(SeekFrom::End(0)) {
                    wal.len = end;
                }
            }
        }
        Ok(updated)
    }

    fn sync(&self) -> Result<(), StoreError> {
        let target = self.written.load(Ordering::Acquire);
        let mut state = lock_unpoisoned(&self.sync_state);
        loop {
            if state.failed {
                // Sticky: a failed fdatasync may have dropped the dirty
                // pages it could not write, so no later fsync can vouch for
                // records written before the failure. See `SyncState`.
                return Err(StoreError::Io(std::io::Error::other(
                    "the store fail-stopped after an fsync failure; restart to recover",
                )));
            }
            if state.synced >= target {
                return Ok(());
            }
            if state.syncing {
                // Another worker's fsync is in flight; it covers (at least)
                // some of our records — wait and re-check. This is the
                // group commit: N waiters, one fdatasync.
                state = self.sync_cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            state.syncing = true;
            // Cover everything OS-buffered up to *now*, which includes our
            // own records (written before `target` was read).
            let cover = self.written.load(Ordering::Acquire);
            drop(state);
            let result = self.sync_file.sync_data();
            state = lock_unpoisoned(&self.sync_state);
            state.syncing = false;
            match &result {
                Ok(()) => state.synced = state.synced.max(cover),
                Err(_) => state.failed = true,
            }
            self.sync_cv.notify_all();
            result.map_err(StoreError::Io)?;
        }
    }

    fn get(&self, id: u64) -> Option<Arc<StoredRelease>> {
        lock_unpoisoned(&self.map).get(&id).cloned()
    }

    fn len(&self) -> usize {
        lock_unpoisoned(&self.map).len()
    }

    fn next_id(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn poison_for_tests(&self) {
        let _guard = lock_unpoisoned(&self.map);
        // medlint::allow(no-panic, test hook: panics while holding the lock to exercise poison recovery)
        panic!("debug poison hook (durable store)");
    }
}

/// Split a `[u32 len][u32 crc32]` record header out of `bytes` at `at`.
/// `None` when fewer than eight bytes remain — total on any input.
fn record_header(bytes: &[u8], at: usize) -> Option<(usize, u32)> {
    let header = bytes.get(at..at.checked_add(8)?)?;
    let (len_raw, crc_raw) = header.split_at(4);
    let len = usize::try_from(u32::from_le_bytes(len_raw.try_into().ok()?)).ok()?;
    let crc = u32::from_le_bytes(crc_raw.try_into().ok()?);
    Some((len, crc))
}

/// Read a little-endian `u64` at `at`; `None` when out of range.
fn read_u64_at(bytes: &[u8], at: usize) -> Option<u64> {
    let raw = bytes.get(at..at.checked_add(8)?)?;
    Some(u64::from_le_bytes(raw.try_into().ok()?))
}

/// Frame a record payload: `[u32 len][u32 crc32][payload]`, little-endian.
fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&codec::crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Encode one release record payload (version, id, columns, mark, proof,
/// and — under v2 — the recipient list). Recipient-less releases are
/// written in the v1 format so pre-refactor stores round-trip byte-for-byte.
fn encode_release_record(id: u64, release: &StoredRelease) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    let version = if release.recipients.is_empty() { RELEASE_RECORD_V1 } else { RELEASE_RECORD_V2 };
    w.u8(version);
    w.u64(id);
    w.count_u32(release.columns.len());
    for column in &release.columns {
        codec::write_column_binning(&mut w, column);
    }
    codec::write_mark(&mut w, &release.mark);
    match &release.ownership {
        None => w.u8(0),
        Some(proof) => {
            w.u8(1);
            codec::write_ownership_proof(&mut w, proof);
        }
    }
    if version == RELEASE_RECORD_V2 {
        w.count_u32(release.recipients.len());
        for recipient in &release.recipients {
            w.str(&recipient.name);
            codec::write_mark(&mut w, &recipient.mark);
        }
    }
    w.into_bytes()
}

/// Encode one recipient-add record payload (version, release id, name, mark).
fn encode_recipient_record(id: u64, recipient: &StoredRecipient) -> Result<Vec<u8>, CodecError> {
    let mut w = Writer::new();
    w.u8(RECIPIENT_RECORD);
    w.u64(id);
    w.str(&recipient.name);
    codec::write_mark(&mut w, &recipient.mark);
    w.into_bytes()
}

/// One decoded WAL/snapshot record.
enum StoreRecord {
    /// A full release (v1 without recipients, v2 with).
    Release(u64, StoredRelease),
    /// A recipient added to an existing release.
    Recipient(u64, StoredRecipient),
}

/// Decode one record payload, dispatching on the leading version tag.
fn decode_record(payload: &[u8]) -> Result<StoreRecord, CodecError> {
    match payload.first().copied() {
        Some(RELEASE_RECORD_V1) | Some(RELEASE_RECORD_V2) => {
            let (id, release) = decode_release_record(payload)?;
            Ok(StoreRecord::Release(id, release))
        }
        Some(RECIPIENT_RECORD) => {
            let mut r = Reader::new(payload);
            let _version = r.u8()?;
            let id = r.u64()?;
            let name = r.str()?.to_string();
            let mark = codec::read_mark(&mut r)?;
            r.finish()?;
            Ok(StoreRecord::Recipient(id, StoredRecipient { name, mark }))
        }
        Some(version) => Err(CodecError::Invalid(format!("unknown record version {version}"))),
        None => Err(CodecError::Truncated),
    }
}

/// Decode one release record payload (v1 or v2).
fn decode_release_record(payload: &[u8]) -> Result<(u64, StoredRelease), CodecError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != RELEASE_RECORD_V1 && version != RELEASE_RECORD_V2 {
        return Err(CodecError::Invalid(format!("unknown release record version {version}")));
    }
    let id = r.u64()?;
    let column_count = r.u32()? as usize;
    // A minimal encoded column is 16 bytes (name length + three node-set
    // counts); cap the preallocation accordingly so a corrupt count inside
    // a large record cannot force a huge Vec reservation before decoding
    // fails.
    if column_count.saturating_mul(16) > payload.len() {
        return Err(CodecError::Truncated);
    }
    let mut columns = Vec::with_capacity(column_count);
    for _ in 0..column_count {
        columns.push(codec::read_column_binning(&mut r)?);
    }
    let mark = codec::read_mark(&mut r)?;
    let ownership = match r.u8()? {
        0 => None,
        1 => Some(codec::read_ownership_proof(&mut r)?),
        tag => return Err(CodecError::Invalid(format!("unknown ownership tag {tag}"))),
    };
    let recipients = if version == RELEASE_RECORD_V2 {
        let count = r.u32()? as usize;
        // A minimal encoded recipient is 9 bytes (name length + mark
        // length); same preallocation cap rationale as the columns above.
        if count.saturating_mul(9) > payload.len() {
            return Err(CodecError::Truncated);
        }
        let mut recipients = Vec::with_capacity(count);
        for _ in 0..count {
            let name = r.str()?.to_string();
            let mark = codec::read_mark(&mut r)?;
            recipients.push(StoredRecipient { name, mark });
        }
        recipients
    } else {
        Vec::new()
    };
    r.finish()?;
    Ok((id, StoredRelease { columns, mark, ownership, recipients }))
}

/// Fold a recipient-add record onto its release (clone-on-write of the
/// shared [`Arc`]). Idempotent by name, so replaying a WAL record whose
/// recipient the snapshot already folded in cannot duplicate it. A record
/// naming a release the map does not hold is ignored: recipient records are
/// only ever appended after their release's record, so the release must have
/// been dropped by an earlier (torn-tail) truncation.
fn fold_recipient(map: &mut HashMap<u64, Arc<StoredRelease>>, id: u64, recipient: StoredRecipient) {
    let Some(existing) = map.get(&id) else { return };
    if existing.recipient(&recipient.name).is_some() {
        return;
    }
    let mut updated = (**existing).clone();
    updated.recipients.push(recipient);
    map.insert(id, Arc::new(updated));
}

/// Replay WAL records into `map`, returning the byte length of the valid
/// prefix. A short header, an impossible length, a checksum mismatch or an
/// undecodable payload all end the replay there — under append-only
/// semantics that point is the torn tail of the crashed writer.
fn replay_wal(bytes: &[u8], map: &mut HashMap<u64, Arc<StoredRelease>>, next: &mut u64) -> u64 {
    let mut at = WAL_MAGIC.len();
    while let Some((len, crc)) = record_header(bytes, at) {
        if len > MAX_RECORD_LEN {
            break;
        }
        let Some(payload) = bytes.get(at + 8..at + 8 + len) else { break };
        if codec::crc32(payload) != crc {
            break;
        }
        match decode_record(payload) {
            Ok(StoreRecord::Release(id, release)) => {
                map.insert(id, Arc::new(release));
                *next = (*next).max(id + 1);
            }
            Ok(StoreRecord::Recipient(id, recipient)) => {
                fold_recipient(map, id, recipient);
            }
            Err(_) => break,
        }
        at += 8 + len;
    }
    at as u64
}

/// Parse a snapshot file **strictly**: snapshots are written atomically
/// (tmp + fsync + rename), so unlike the WAL they are never legitimately
/// torn — any damage is a hard [`StoreError::Corrupt`].
fn parse_snapshot(
    bytes: &[u8],
    map: &mut HashMap<u64, Arc<StoredRelease>>,
    next: &mut u64,
) -> Result<(), StoreError> {
    let corrupt = |m: &str| StoreError::Corrupt(format!("snapshot: {m}"));
    if !bytes.starts_with(SNAPSHOT_MAGIC) {
        return Err(corrupt("missing magic or header"));
    }
    let mut at = SNAPSHOT_MAGIC.len();
    let stored_next = read_u64_at(bytes, at).ok_or_else(|| corrupt("missing magic or header"))?;
    at += 8;
    let count = read_u64_at(bytes, at).ok_or_else(|| corrupt("missing magic or header"))?;
    at += 8;
    for i in 0..count {
        let (len, crc) =
            record_header(bytes, at).ok_or_else(|| corrupt(&format!("record {i} header cut")))?;
        if len > MAX_RECORD_LEN {
            return Err(corrupt(&format!("record {i} announces {len} bytes")));
        }
        let payload = bytes
            .get(at + 8..at + 8 + len)
            .ok_or_else(|| corrupt(&format!("record {i} payload cut")))?;
        if codec::crc32(payload) != crc {
            return Err(corrupt(&format!("record {i} checksum mismatch")));
        }
        let (id, release) =
            decode_release_record(payload).map_err(|e| corrupt(&format!("record {i}: {e}")))?;
        map.insert(id, Arc::new(release));
        *next = (*next).max(id + 1);
        at += 8 + len;
    }
    if at != bytes.len() {
        return Err(corrupt("trailing bytes after the last record"));
    }
    *next = (*next).max(stored_next);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_dht::GeneralizationSet;

    fn test_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("medshield-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn release(seed: u8) -> StoredRelease {
        let trees = medshield_datagen::ontology::all_trees();
        let columns = trees
            .iter()
            .map(|(name, tree)| ColumnBinning {
                column: name.clone(),
                maximal: GeneralizationSet::root_only(tree),
                minimal: GeneralizationSet::all_leaves(tree),
                ultimate: GeneralizationSet::at_depth(tree, 1),
            })
            .collect();
        StoredRelease {
            columns,
            mark: Mark::from_bytes(&[seed], 20),
            ownership: seed
                .is_multiple_of(2)
                .then(|| OwnershipProof { statistic: f64::from(seed) * 1.5, mark_len: 20 }),
            recipients: Vec::new(),
        }
    }

    fn recipient(name: &str) -> StoredRecipient {
        StoredRecipient { name: name.into(), mark: Mark::from_bytes(name.as_bytes(), 20) }
    }

    #[test]
    fn memory_store_assigns_increasing_ids_from_one() {
        let store = MemoryStore::new();
        assert_eq!(store.next_id(), 1);
        assert_eq!(store.append(release(1)).unwrap(), 1);
        assert_eq!(store.append(release(2)).unwrap(), 2);
        assert_eq!(store.len(), 2);
        assert!(!store.is_durable());
        assert_eq!(store.get(1).unwrap().mark, Mark::from_bytes(&[1], 20));
        assert!(store.get(3).is_none());
        store.sync().unwrap();
    }

    #[test]
    fn memory_store_registers_recipients_idempotently() {
        let store = MemoryStore::new();
        let id = store.append(release(1)).unwrap();
        assert!(store.add_recipient(99, recipient("clinic-a")).unwrap().is_none());
        let updated = store.add_recipient(id, recipient("clinic-a")).unwrap().unwrap();
        assert_eq!(updated.recipients.len(), 1);
        let updated = store.add_recipient(id, recipient("clinic-b")).unwrap().unwrap();
        assert_eq!(updated.recipients.len(), 2);
        // Re-registering an existing name changes nothing.
        let again = store.add_recipient(id, recipient("clinic-a")).unwrap().unwrap();
        assert_eq!(*again, *updated);
        assert_eq!(store.get(id).unwrap().recipient("clinic-b"), Some(&recipient("clinic-b")));
    }

    #[test]
    fn durable_recipient_records_recover_from_the_wal() {
        let dir = test_dir("recipients-wal");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            let id = store.append(release(1)).unwrap();
            store.append(release(2)).unwrap();
            store.add_recipient(id, recipient("clinic-a")).unwrap().unwrap();
            store.add_recipient(id, recipient("clinic-b")).unwrap().unwrap();
            assert!(store.add_recipient(77, recipient("ghost")).unwrap().is_none());
            store.sync().unwrap();
        }
        let store = DurableStore::open(&dir, 0).unwrap();
        // Recipient records are not releases: they restore onto release 1
        // and do not advance the id sequence.
        assert_eq!(store.recovered_releases(), 2);
        assert_eq!(store.next_id(), 3);
        let restored = store.get(1).unwrap();
        assert_eq!(
            restored.recipients,
            vec![recipient("clinic-a"), recipient("clinic-b")],
            "registration order survives recovery"
        );
        assert!(store.get(2).unwrap().recipients.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_folds_recipients_into_the_release_record() {
        let dir = test_dir("recipients-snap");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            let id = store.append(release(1)).unwrap();
            store.add_recipient(id, recipient("clinic-a")).unwrap().unwrap();
            store.compact().unwrap();
            // Post-snapshot mutation: lives only in the WAL.
            store.add_recipient(id, recipient("clinic-b")).unwrap().unwrap();
            store.sync().unwrap();
        }
        let store = DurableStore::open(&dir, 0).unwrap();
        let restored = store.get(1).unwrap();
        assert_eq!(restored.recipients, vec![recipient("clinic-a"), recipient("clinic-b")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaying_a_recipient_already_folded_into_the_snapshot_is_idempotent() {
        let dir = test_dir("recipients-idem");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            let id = store.append(release(1)).unwrap();
            store.add_recipient(id, recipient("clinic-a")).unwrap().unwrap();
            store.compact().unwrap();
            store.sync().unwrap();
        }
        // Simulate the crash window where the snapshot was renamed but the
        // WAL truncation never hit the disk: the WAL still carries the
        // recipient record the snapshot already folded in.
        let frame = frame_record(&encode_recipient_record(1, &recipient("clinic-a")).unwrap());
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes.extend_from_slice(&frame);
        std::fs::write(&wal_path, &bytes).unwrap();
        let store = DurableStore::open(&dir, 0).unwrap();
        assert_eq!(store.get(1).unwrap().recipients, vec![recipient("clinic-a")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recipient_records_trigger_the_snapshot_threshold() {
        let dir = test_dir("recipients-trigger");
        let store = DurableStore::open(&dir, 3).unwrap();
        let id = store.append(release(1)).unwrap();
        store.add_recipient(id, recipient("a")).unwrap().unwrap();
        store.add_recipient(id, recipient("b")).unwrap().unwrap();
        // Three mutations since the last snapshot: the trigger fired and the
        // WAL is back to its bare magic.
        let wal_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert_eq!(wal_len, WAL_MAGIC.len() as u64);
        drop(store);
        let store = DurableStore::open(&dir, 3).unwrap();
        assert_eq!(store.get(1).unwrap().recipients.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recipient_release_records_roundtrip_through_the_codec() {
        let mut with = release(3);
        with.recipients = vec![recipient("clinic-a"), recipient("clinic-b")];
        let payload = encode_release_record(9, &with).unwrap();
        assert_eq!(payload[0], RELEASE_RECORD_V2);
        let (id, decoded) = decode_release_record(&payload).unwrap();
        assert_eq!(id, 9);
        assert_eq!(decoded, with);
        // Recipient-less releases still encode in the v1 format.
        let without = release(3);
        let payload = encode_release_record(9, &without).unwrap();
        assert_eq!(payload[0], RELEASE_RECORD_V1);
        assert_eq!(decode_release_record(&payload).unwrap().1, without);
    }

    #[test]
    fn durable_store_recovers_from_wal_alone() {
        let dir = test_dir("wal-only");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            for seed in 1..=5u8 {
                store.append(release(seed)).unwrap();
            }
            store.sync().unwrap();
            // No shutdown hook: dropping the store models a hard kill
            // (everything synced lives only in the files).
        }
        let store = DurableStore::open(&dir, 0).unwrap();
        assert_eq!(store.recovered_releases(), 5);
        assert_eq!(store.next_id(), 6, "ids must never be reused across restarts");
        for seed in 1..=5u8 {
            assert_eq!(*store.get(u64::from(seed)).unwrap(), release(seed));
        }
        // New appends continue past the recovered ids.
        assert_eq!(store.append(release(9)).unwrap(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_store_recovers_from_snapshot_plus_wal() {
        let dir = test_dir("snap-wal");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            for seed in 1..=4u8 {
                store.append(release(seed)).unwrap();
            }
            store.compact().unwrap();
            // These two live only in the post-snapshot WAL.
            store.append(release(5)).unwrap();
            store.append(release(6)).unwrap();
            store.sync().unwrap();
        }
        let store = DurableStore::open(&dir, 0).unwrap();
        assert_eq!(store.recovered_releases(), 6);
        assert_eq!(store.next_id(), 7);
        for seed in 1..=6u8 {
            assert_eq!(*store.get(u64::from(seed)).unwrap(), release(seed));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_trigger_compacts_the_wal() {
        let dir = test_dir("trigger");
        let store = DurableStore::open(&dir, 3).unwrap();
        for seed in 1..=7u8 {
            store.append(release(seed)).unwrap();
        }
        // Two snapshots fired (at 3 and 6); the WAL holds only record 7.
        let wal_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        let one_record = frame_record(&encode_release_record(7, &release(7)).unwrap()).len() as u64;
        assert_eq!(wal_len, WAL_MAGIC.len() as u64 + one_record);
        drop(store);
        let store = DurableStore::open(&dir, 3).unwrap();
        assert_eq!(store.recovered_releases(), 7);
        assert_eq!(store.next_id(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_appends_resume() {
        let dir = test_dir("torn");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            for seed in 1..=3u8 {
                store.append(release(seed)).unwrap();
            }
            store.sync().unwrap();
        }
        // Tear the last record mid-payload.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 7]).unwrap();
        let store = DurableStore::open(&dir, 0).unwrap();
        assert_eq!(store.recovered_releases(), 2, "the torn third record is dropped");
        assert_eq!(store.next_id(), 3);
        // The file was truncated back to a record boundary, so new appends
        // land cleanly after the survivors.
        assert_eq!(store.append(release(9)).unwrap(), 3);
        drop(store);
        let store = DurableStore::open(&dir, 0).unwrap();
        assert_eq!(store.recovered_releases(), 3);
        assert_eq!(*store.get(3).unwrap(), release(9));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_failure_never_fails_a_durable_append() {
        let dir = test_dir("snapfail");
        let store = DurableStore::open(&dir, 2).unwrap();
        store.append(release(1)).unwrap();
        // Block compaction deterministically: a *directory* squatting on
        // snapshot.tmp makes File::create fail. The triggering append (and
        // every later one) must still succeed — the WAL already holds the
        // records, compaction is only an optimization.
        std::fs::create_dir_all(dir.join(SNAPSHOT_TMP)).unwrap();
        for seed in 2..=6u8 {
            store.append(release(seed)).unwrap();
        }
        store.sync().unwrap();
        assert!(store.compact().is_err(), "compaction is genuinely blocked");
        drop(store);
        // Recovery sees no snapshot, a full WAL, and all six releases.
        std::fs::remove_dir_all(dir.join(SNAPSHOT_TMP)).unwrap();
        let store = DurableStore::open(&dir, 2).unwrap();
        assert_eq!(store.recovered_releases(), 6);
        for seed in 1..=6u8 {
            assert_eq!(*store.get(u64::from(seed)).unwrap(), release(seed));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_checksum_stops_the_replay_at_the_boundary() {
        let dir = test_dir("crc");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            store.append(release(1)).unwrap();
            store.append(release(2)).unwrap();
            store.sync().unwrap();
        }
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        // Flip one payload byte of the second record: its CRC no longer
        // matches, so recovery keeps record 1 only.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&wal_path, &bytes).unwrap();
        let store = DurableStore::open(&dir, 0).unwrap();
        assert_eq!(store.recovered_releases(), 1);
        assert_eq!(store.next_id(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_snapshot_tmp_is_discarded() {
        let dir = test_dir("tmp");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            store.append(release(1)).unwrap();
            store.sync().unwrap();
        }
        std::fs::write(dir.join(SNAPSHOT_TMP), b"half-written snapshot").unwrap();
        let store = DurableStore::open(&dir, 0).unwrap();
        assert_eq!(store.recovered_releases(), 1);
        assert!(!dir.join(SNAPSHOT_TMP).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_second_opener_of_a_live_data_dir_is_refused() {
        let dir = test_dir("lock");
        let store = DurableStore::open(&dir, 0).unwrap();
        store.append(release(1)).unwrap();
        // While the first store lives, a second open must fail fast instead
        // of interleaving WAL frames and duplicating release ids.
        match DurableStore::open(&dir, 0) {
            Err(StoreError::Busy(m)) => assert!(m.contains("locked"), "{m}"),
            other => panic!("expected Busy, got {:?}", other.map(|s| s.len())),
        }
        // Dropping the store releases the lock (as does process death).
        drop(store);
        let store = DurableStore::open(&dir, 0).unwrap();
        assert_eq!(store.recovered_releases(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_wal_file_is_refused_not_overwritten() {
        let dir = test_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"this is somebody's csv, not a wal").unwrap();
        match DurableStore::open(&dir, 0) {
            Err(StoreError::Corrupt(m)) => assert!(m.contains("magic"), "{m}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let dir = test_dir("badsnap");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            store.append(release(1)).unwrap();
            store.compact().unwrap();
        }
        let snap = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        assert!(matches!(DurableStore::open(&dir, 0), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_coalesces_concurrent_syncs() {
        let dir = test_dir("group");
        let store = Arc::new(DurableStore::open(&dir, 0).unwrap());
        std::thread::scope(|scope| {
            for seed in 0..8u8 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let id = store.append(release(seed)).unwrap();
                    store.sync().unwrap();
                    assert!(store.get(id).is_some());
                });
            }
        });
        assert_eq!(store.len(), 8);
        // Every record is durable: a reopen sees all eight.
        drop(store);
        let store = DurableStore::open(&dir, 0).unwrap();
        assert_eq!(store.recovered_releases(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! A minimal blocking client for the serving layer.
//!
//! One [`Client`] wraps one TCP connection; requests are answered in order,
//! so a client is also the simplest way to script the server from tests,
//! benches or other processes.

use crate::json;
use crate::protocol::{read_frame, write_frame, Command, FrameError, Request, Response};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Errors from a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing or reading failed.
    Io(io::Error),
    /// The response frame was unreadable.
    Frame(String),
    /// The server closed the connection before replying.
    ConnectionClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(m) => write!(f, "bad response frame: {m}"),
            ClientError::ConnectionClosed => write!(f, "the server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Frame(other.to_string()),
        }
    }
}

/// A blocking connection to a serving-layer endpoint.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame_len: usize,
}

impl Client {
    /// Connect to the server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, max_frame_len: crate::protocol::DEFAULT_MAX_FRAME_LEN })
    }

    /// Raise or lower the largest response frame this client accepts.
    pub fn max_frame_len(mut self, max: usize) -> Client {
        self.max_frame_len = max;
        self
    }

    /// Send a raw frame payload and read one response frame. This is the
    /// escape hatch tests use to send deliberately malformed requests.
    pub fn request_raw(&mut self, payload: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, payload)?;
        let reply = read_frame(&mut self.stream, self.max_frame_len)?
            .ok_or(ClientError::ConnectionClosed)?;
        Response::decode(&reply).map_err(|e| ClientError::Frame(e.to_string()))
    }

    /// Send a request and read its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.request_raw(&request.encode())
    }

    /// `protect` a CSV table. On success the response carries the release id
    /// in `release` and the protected CSV as its body.
    pub fn protect(&mut self, table_csv: &str) -> Result<Response, ClientError> {
        self.call(&Request::new(Command::Protect).body(table_csv))
    }

    /// `protect` with an explicit binning mode.
    pub fn protect_mode(
        &mut self,
        table_csv: &str,
        per_attribute: bool,
    ) -> Result<Response, ClientError> {
        self.call(
            &Request::new(Command::Protect)
                .param("per-attribute", per_attribute.to_string())
                .body(table_csv),
        )
    }

    /// `detect` the mark of `release` in a suspect CSV table.
    pub fn detect(&mut self, release: &str, suspect_csv: &str) -> Result<Response, ClientError> {
        self.call(&Request::new(Command::Detect).param("release", release).body(suspect_csv))
    }

    /// `embed` the retained mark of `release` into an already-binned CSV.
    pub fn embed(&mut self, release: &str, binned_csv: &str) -> Result<Response, ClientError> {
        self.call(&Request::new(Command::Embed).param("release", release).body(binned_csv))
    }

    /// Run the ownership-dispute protocol over a disputed CSV table.
    pub fn resolve_ownership(
        &mut self,
        release: &str,
        disputed_csv: &str,
    ) -> Result<Response, ClientError> {
        self.call(
            &Request::new(Command::ResolveOwnership).param("release", release).body(disputed_csv),
        )
    }

    /// Liveness probe; the reply carries server statistics.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.call(&Request::new(Command::Ping))
    }
}

/// Convenience accessors shared by tests and benches.
impl Response {
    /// The release id of a `protect` reply.
    pub fn release_id(&self) -> Option<String> {
        json::get_str(&self.json, "release")
    }

    /// A numeric field of the JSON report.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        json::get_f64(&self.json, key)
    }

    /// An integer field of the JSON report.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        json::get_u64(&self.json, key)
    }

    /// A boolean field of the JSON report.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        json::get_bool(&self.json, key)
    }

    /// A string field of the JSON report.
    pub fn str_field(&self, key: &str) -> Option<String> {
        json::get_str(&self.json, key)
    }

    /// The error message of an error reply.
    pub fn message(&self) -> Option<String> {
        json::get_str(&self.json, "message")
    }
}

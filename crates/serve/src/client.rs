//! Clients for the serving layer.
//!
//! Two flavors share one TCP connection model:
//!
//! * [`Client`] — the minimal blocking client: v1 frames, one request in
//!   flight, replies in order. The simplest way to script the server from
//!   tests, benches or other processes.
//! * [`PipelinedClient`] — the v2 client: every request carries a request
//!   id, many may be in flight on one connection, and replies are matched
//!   back to their ids however the server ordered them
//!   ([`PipelinedClient::submit`] / [`PipelinedClient::wait`] /
//!   [`PipelinedClient::poll_reply`]).

use crate::json;
use crate::protocol::{
    read_frame, write_frame, write_frame_v2, Command, FrameError, FrameReader, ReadStep, Request,
    Response,
};
use std::collections::BTreeMap;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors from a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, writing or reading failed.
    Io(io::Error),
    /// The response frame was unreadable.
    Frame(String),
    /// The server closed the connection before replying.
    ConnectionClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(m) => write!(f, "bad response frame: {m}"),
            ClientError::ConnectionClosed => write!(f, "the server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Frame(other.to_string()),
        }
    }
}

/// A blocking connection to a serving-layer endpoint.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame_len: usize,
}

impl Client {
    /// Connect to the server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, max_frame_len: crate::protocol::DEFAULT_MAX_FRAME_LEN })
    }

    /// Raise or lower the largest response frame this client accepts.
    pub fn max_frame_len(mut self, max: usize) -> Client {
        self.max_frame_len = max;
        self
    }

    /// Send a raw frame payload and read one response frame. This is the
    /// escape hatch tests use to send deliberately malformed requests.
    pub fn request_raw(&mut self, payload: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, payload)?;
        let reply = read_frame(&mut self.stream, self.max_frame_len)?
            .ok_or(ClientError::ConnectionClosed)?;
        Response::decode(&reply.payload).map_err(|e| ClientError::Frame(e.to_string()))
    }

    /// Send a request and read its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.request_raw(&request.encode())
    }

    /// `protect` a CSV table. On success the response carries the release id
    /// in `release` and the protected CSV as its body.
    pub fn protect(&mut self, table_csv: &str) -> Result<Response, ClientError> {
        self.call(&Request::new(Command::Protect).body(table_csv))
    }

    /// `protect` with an explicit binning mode.
    pub fn protect_mode(
        &mut self,
        table_csv: &str,
        per_attribute: bool,
    ) -> Result<Response, ClientError> {
        self.call(
            &Request::new(Command::Protect)
                .param("per-attribute", per_attribute.to_string())
                .body(table_csv),
        )
    }

    /// `protect-for` an original CSV table: create the release and return
    /// the fingerprinted copy for `recipient`.
    pub fn protect_for(
        &mut self,
        recipient: &str,
        table_csv: &str,
    ) -> Result<Response, ClientError> {
        self.call(&Request::new(Command::ProtectFor).param("recipient", recipient).body(table_csv))
    }

    /// `protect-for` against an existing release: fingerprint the released
    /// (binned) CSV for one more recipient.
    pub fn protect_for_release(
        &mut self,
        release: &str,
        recipient: &str,
        released_csv: &str,
    ) -> Result<Response, ClientError> {
        self.call(
            &Request::new(Command::ProtectFor)
                .param("release", release)
                .param("recipient", recipient)
                .body(released_csv),
        )
    }

    /// `list-recipients` registered for `release`.
    pub fn list_recipients(&mut self, release: &str) -> Result<Response, ClientError> {
        self.call(&Request::new(Command::ListRecipients).param("release", release))
    }

    /// `resolve-leaker`: rank the recipients of `release` against a leaked
    /// CSV table; the reply's `leaker` field names the best match.
    pub fn resolve_leaker(
        &mut self,
        release: &str,
        leaked_csv: &str,
    ) -> Result<Response, ClientError> {
        self.call(&Request::new(Command::ResolveLeaker).param("release", release).body(leaked_csv))
    }

    /// `detect` the mark of `release` in a suspect CSV table.
    pub fn detect(&mut self, release: &str, suspect_csv: &str) -> Result<Response, ClientError> {
        self.call(&Request::new(Command::Detect).param("release", release).body(suspect_csv))
    }

    /// `embed` the retained mark of `release` into an already-binned CSV.
    pub fn embed(&mut self, release: &str, binned_csv: &str) -> Result<Response, ClientError> {
        self.call(&Request::new(Command::Embed).param("release", release).body(binned_csv))
    }

    /// Run the ownership-dispute protocol over a disputed CSV table.
    pub fn resolve_ownership(
        &mut self,
        release: &str,
        disputed_csv: &str,
    ) -> Result<Response, ClientError> {
        self.call(
            &Request::new(Command::ResolveOwnership).param("release", release).body(disputed_csv),
        )
    }

    /// Liveness probe; the reply carries server statistics.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.call(&Request::new(Command::Ping))
    }
}

/// A pipelined v2 connection: many requests in flight, replies matched to
/// their request ids in whatever order the server finishes them.
///
/// [`submit`](PipelinedClient::submit) writes a request and returns its id
/// immediately; [`wait`](PipelinedClient::wait) blocks until that id's
/// reply arrives (parking any other replies read along the way);
/// [`poll_reply`](PipelinedClient::poll_reply) hands back *any* one ready
/// reply within a timeout — the shape a throughput driver wants.
#[derive(Debug)]
pub struct PipelinedClient {
    stream: TcpStream,
    reader: FrameReader,
    max_frame_len: usize,
    next_id: u64,
    pending: usize,
    /// Replies read while waiting for a different id, parked by id.
    parked: BTreeMap<u64, Response>,
    /// The read timeout currently installed on the socket, so repeated
    /// polls with the same timeout skip the syscall.
    installed_timeout: Option<Duration>,
}

impl PipelinedClient {
    /// Connect to the server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<PipelinedClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PipelinedClient {
            stream,
            reader: FrameReader::new(),
            max_frame_len: crate::protocol::DEFAULT_MAX_FRAME_LEN,
            next_id: 0,
            pending: 0,
            parked: BTreeMap::new(),
            installed_timeout: None,
        })
    }

    /// Raise or lower the largest response frame this client accepts.
    pub fn max_frame_len(mut self, max: usize) -> PipelinedClient {
        self.max_frame_len = max;
        self
    }

    /// Requests submitted whose replies have not been handed back yet.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Write one request frame and return the id its reply will carry.
    /// Does not wait for anything: call again to pipeline.
    pub fn submit(&mut self, request: &Request) -> Result<u64, ClientError> {
        self.submit_raw(&request.encode())
    }

    /// Write a raw payload as a v2 frame (the escape hatch for deliberately
    /// malformed requests) and return its request id.
    pub fn submit_raw(&mut self, payload: &[u8]) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        write_frame_v2(&mut self.stream, id, payload)?;
        self.pending = self.pending.saturating_add(1);
        Ok(id)
    }

    /// Block until the reply for `id` arrives. Replies for other ids read
    /// along the way are parked for their own `wait`/`poll_reply` calls.
    pub fn wait(&mut self, id: u64) -> Result<Response, ClientError> {
        loop {
            if let Some(response) = self.parked.remove(&id) {
                self.pending = self.pending.saturating_sub(1);
                return Ok(response);
            }
            if let Some((got, response)) = self.read_reply(None)? {
                self.parked.insert(got, response);
            }
        }
    }

    /// Hand back any one ready reply, waiting up to `timeout` (which must
    /// be non-zero) for the wire. `Ok(None)` means nothing completed in
    /// time — in-flight requests stay in flight.
    pub fn poll_reply(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(u64, Response)>, ClientError> {
        if let Some(id) = self.parked.keys().next().copied() {
            if let Some(response) = self.parked.remove(&id) {
                self.pending = self.pending.saturating_sub(1);
                return Ok(Some((id, response)));
            }
        }
        match self.read_reply(Some(timeout))? {
            Some((id, response)) => {
                self.pending = self.pending.saturating_sub(1);
                Ok(Some((id, response)))
            }
            None => Ok(None),
        }
    }

    /// Read one reply frame. `timeout: None` blocks until a frame or an
    /// error; `Some(t)` returns `Ok(None)` on a timeout tick, keeping any
    /// partial frame for the next call.
    fn read_reply(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<Option<(u64, Response)>, ClientError> {
        if self.installed_timeout != timeout {
            self.stream.set_read_timeout(timeout)?;
            self.installed_timeout = timeout;
        }
        loop {
            match self.reader.step(&mut self.stream, self.max_frame_len) {
                Ok(ReadStep::Frame(frame)) => {
                    let Some(id) = frame.request_id else {
                        return Err(ClientError::Frame("reply frame carries no request id".into()));
                    };
                    let response = Response::decode(&frame.payload)
                        .map_err(|e| ClientError::Frame(e.to_string()))?;
                    return Ok(Some((id, response)));
                }
                Ok(ReadStep::Idle) => {
                    if timeout.is_some() {
                        return Ok(None);
                    }
                    // No timeout installed: Idle cannot normally occur; keep
                    // reading rather than spin up to the caller.
                }
                Ok(ReadStep::Eof) => return Err(ClientError::ConnectionClosed),
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Convenience accessors shared by tests and benches.
impl Response {
    /// The release id of a `protect` reply.
    pub fn release_id(&self) -> Option<String> {
        json::get_str(&self.json, "release")
    }

    /// A numeric field of the JSON report.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        json::get_f64(&self.json, key)
    }

    /// An integer field of the JSON report.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        json::get_u64(&self.json, key)
    }

    /// A boolean field of the JSON report.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        json::get_bool(&self.json, key)
    }

    /// A string field of the JSON report.
    pub fn str_field(&self, key: &str) -> Option<String> {
        json::get_str(&self.json, key)
    }

    /// A string-array field of the JSON report (e.g. `recipients`,
    /// `ranking`).
    pub fn str_array_field(&self, key: &str) -> Option<Vec<String>> {
        json::get_str_array(&self.json, key)
    }

    /// The error message of an error reply.
    pub fn message(&self) -> Option<String> {
        json::get_str(&self.json, "message")
    }
}

//! # MedShield serving layer
//!
//! A std-only, multi-threaded TCP front end for the protection engine: the
//! paper's Fig. 2 deployment model as a long-lived *data-owner service*.
//! Hospitals submit relations over a length-framed protocol, the binning and
//! watermarking agents protect them, and detection / ownership disputes are
//! resolved on demand against the server's release store — with per-request
//! setup (engines, key schedules, domain hierarchy trees, detection plans)
//! amortized across many small submissions.
//!
//! * [`protocol`] — the length-framed wire format (normative spec:
//!   `docs/PROTOCOL.md`): a 4-byte big-endian prefix, an 8-byte request id
//!   on v2 frames so one connection can pipeline requests and take replies
//!   out of order, a one-line command header, a CSV body; responses carry a
//!   hand-rolled JSON report line ([`json`]) plus an optional CSV body.
//! * [`server`] — a non-blocking I/O core (readiness loop owning every
//!   socket), bounded request queue, worker pool (one
//!   [`ProtectionEngine`](medshield_core::ProtectionEngine) per worker),
//!   micro-batching of small `detect` requests, per-request queue deadlines,
//!   structured error replies and graceful shutdown.
//! * [`store`] — the release store behind the [`ReleaseStore`] trait: the
//!   in-memory default, and the durable WAL + snapshot store
//!   ([`DurableStore`]) that survives a hard kill — enabled with
//!   [`ServeConfig::data_dir`] / `medshield serve --data-dir`.
//! * [`client`] — the blocking [`Client`] (v1, one request at a time) and
//!   the [`PipelinedClient`] (v2, many requests in flight per connection),
//!   used by the CLI, the loopback integration tests and the serve
//!   benchmark.
//!
//! Served responses are **byte-identical** to calling the engine in-process
//! (the `serve` benchmark gates on it), so moving from library use to the
//! service changes the deployment model, never the data.
//!
//! ```no_run
//! use medshield_serve::{serve, Client, ServeConfig};
//!
//! let handle = serve(ServeConfig::default(), "127.0.0.1:0").unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let reply = client.protect("ssn,age,zip_code,doctor,symptom,prescription\n").unwrap();
//! assert!(reply.is_ok());
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::{Client, ClientError, PipelinedClient};
pub use protocol::{Command, ErrorCode, Frame, Request, Response, PROTOCOL_VERSION};
pub use server::{
    serve, ServeConfig, ServeError, ServeHandle, CARRIES_MARK_THRESHOLD, MEDICAL_ROLES,
};
pub use store::{DurableStore, MemoryStore, ReleaseStore, StoreError, StoredRelease};

//! Pipelining integration suite: many requests in flight on one
//! connection, replies matched to request ids in whatever order the
//! workers finish, v1 clients untouched, and the I/O core surviving slow
//! readers and byte-at-a-time writers.

use medshield_core::{ProtectionConfig, ProtectionEngine};
use medshield_datagen::{ontology, DatasetConfig, MedicalDataset};
use medshield_relation::csv;
use medshield_serve::protocol::{encode_frame, read_frame};
use medshield_serve::{
    serve, Client, Command, PipelinedClient, Request, ServeConfig, PROTOCOL_VERSION,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn engine_config() -> ProtectionConfig {
    ProtectionConfig::builder().k(4).eta(5).duplication(2).mark_from_statistic(true).build()
}

fn serve_config() -> ServeConfig {
    ServeConfig { engine: engine_config(), workers: 2, ..ServeConfig::default() }
}

fn dataset(n: usize) -> MedicalDataset {
    MedicalDataset::generate(&DatasetConfig::small(n))
}

/// Drop the last `n` data rows of a CSV (a crude subset-deletion attack).
fn drop_tail_rows(table_csv: &str, n: usize) -> String {
    let mut lines: Vec<&str> = table_csv.lines().collect();
    let keep = lines.len().saturating_sub(n).max(1);
    lines.truncate(keep);
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[test]
fn ping_reports_protocol_version_and_server_limits() {
    let config = ServeConfig { queue_depth: 32, max_connections: 77, ..serve_config() };
    let handle = serve(config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let pong = client.ping().unwrap();
    assert!(pong.is_ok(), "{}", pong.json);
    assert_eq!(pong.u64_field("protocol"), Some(PROTOCOL_VERSION), "{}", pong.json);
    assert_eq!(
        pong.u64_field("max_frame_len"),
        Some(medshield_serve::protocol::DEFAULT_MAX_FRAME_LEN as u64),
        "{}",
        pong.json
    );
    assert_eq!(pong.u64_field("queue_depth"), Some(32), "{}", pong.json);
    assert_eq!(pong.u64_field("max_connections"), Some(77), "{}", pong.json);
    assert_eq!(pong.u64_field("connections"), Some(1), "{}", pong.json);
    handle.shutdown();
}

#[test]
fn replies_arrive_out_of_order_and_match_their_ids() {
    // Two workers, two sleeps of very different lengths pipelined on ONE
    // connection: the short one must come back first, each reply tagged
    // with its own id.
    let config = ServeConfig { debug_hooks: true, ..serve_config() };
    let handle = serve(config, "127.0.0.1:0").unwrap();
    let mut client = PipelinedClient::connect(handle.addr()).unwrap();
    let slow = client.submit(&Request::new(Command::Sleep).param("ms", "400")).unwrap();
    let fast = client.submit(&Request::new(Command::Sleep).param("ms", "1")).unwrap();
    assert_eq!(client.pending(), 2);

    let (first_id, first) = loop {
        if let Some(got) = client.poll_reply(Duration::from_millis(100)).unwrap() {
            break got;
        }
    };
    assert_eq!(first_id, fast, "the 1ms sleep must complete before the 400ms one");
    assert_eq!(first.u64_field("slept_ms"), Some(1), "{}", first.json);

    let second = client.wait(slow).unwrap();
    assert_eq!(second.u64_field("slept_ms"), Some(400), "{}", second.json);
    assert_eq!(client.pending(), 0);
    handle.shutdown();
}

#[test]
fn interleaved_pipelined_detects_are_byte_identical_to_in_process() {
    // N requests in flight on one connection, alternating between two
    // *different* suspect tables: every reply must carry the exact
    // in-process bytes for ITS OWN request — proof that ids route replies,
    // not arrival order.
    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let mut setup = Client::connect(handle.addr()).unwrap();
    let ds = dataset(300);
    let reply = setup.protect(&csv::to_csv(&ds.table)).unwrap();
    assert!(reply.is_ok(), "{}", reply.json);
    let release_id = reply.release_id().unwrap();
    let clean_csv = reply.body.clone().unwrap();
    let attacked_csv = drop_tail_rows(&clean_csv, 60);

    // The expected replies, served once over the plain v1 client (itself
    // gated byte-identical to the in-process engine by the loopback suite).
    let expected_clean = setup.detect(&release_id, &clean_csv).unwrap();
    let expected_attacked = setup.detect(&release_id, &attacked_csv).unwrap();
    assert!(expected_clean.is_ok() && expected_attacked.is_ok());
    assert_ne!(expected_clean.json, expected_attacked.json, "the two suspects must differ");

    const IN_FLIGHT: usize = 16;
    let mut client = PipelinedClient::connect(handle.addr()).unwrap();
    let mut submitted = Vec::new();
    for i in 0..IN_FLIGHT {
        let suspect = if i % 2 == 0 { &clean_csv } else { &attacked_csv };
        let id = client
            .submit(&Request::new(Command::Detect).param("release", &release_id).body(suspect))
            .unwrap();
        submitted.push((id, i % 2 == 0));
    }
    assert_eq!(client.pending(), IN_FLIGHT);
    // Collect in reverse submission order: `wait` must park and re-match
    // replies that arrive while it waits for a later id.
    for (id, clean) in submitted.iter().rev() {
        let served = client.wait(*id).unwrap();
        let expected = if *clean { &expected_clean } else { &expected_attacked };
        assert_eq!(served.json, expected.json, "reply for id {id} carries the wrong report");
        assert_eq!(served.body, expected.body);
    }
    assert_eq!(client.pending(), 0);
    handle.shutdown();
}

#[test]
fn v1_and_v2_frames_interleave_on_one_connection() {
    // A raw stream mixing both encodings: the server must answer each frame
    // in its own encoding — v2 replies echo the id, v1 replies carry none.
    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let ping = Request::new(Command::Ping).encode();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&encode_frame(Some(7), &ping).unwrap());
    bytes.extend_from_slice(&encode_frame(None, &ping).unwrap());
    bytes.extend_from_slice(&encode_frame(Some(u64::MAX), &ping).unwrap());
    stream.write_all(&bytes).unwrap();

    let max = medshield_serve::protocol::DEFAULT_MAX_FRAME_LEN;
    // Inline pings on one connection are handled in arrival order.
    let first = read_frame(&mut stream, max).unwrap().unwrap();
    assert_eq!(first.request_id, Some(7));
    let second = read_frame(&mut stream, max).unwrap().unwrap();
    assert_eq!(second.request_id, None);
    let third = read_frame(&mut stream, max).unwrap().unwrap();
    assert_eq!(third.request_id, Some(u64::MAX));
    // All three carry the same well-formed pong.
    for frame in [first, second, third] {
        let response = medshield_serve::Response::decode(&frame.payload).unwrap();
        assert!(response.is_ok(), "{}", response.json);
    }
    handle.shutdown();
}

#[test]
fn byte_at_a_time_writer_and_slow_reader_survive_the_readiness_loop() {
    // A v2 ping frame trickled to the server a byte at a time (the reader
    // must hold partial header/id/payload state across passes), and the
    // reply read back in 3-byte sips (the core's write buffer must survive
    // partial flushes).
    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let frame = encode_frame(Some(0xDEAD_BEEF), &Request::new(Command::Ping).encode()).unwrap();
    for byte in &frame {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    // Sip the reply through a 3-byte straw.
    struct Sip<'a>(&'a mut TcpStream);
    impl Read for Sip<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let cap = buf.len().min(3);
            std::thread::sleep(Duration::from_millis(1));
            self.0.read(&mut buf[..cap])
        }
    }
    let reply = read_frame(&mut Sip(&mut stream), medshield_serve::protocol::DEFAULT_MAX_FRAME_LEN)
        .unwrap()
        .unwrap();
    assert_eq!(reply.request_id, Some(0xDEAD_BEEF));
    let response = medshield_serve::Response::decode(&reply.payload).unwrap();
    assert!(response.is_ok(), "{}", response.json);
    handle.shutdown();
}

#[test]
fn unread_replies_back_up_without_loss_while_the_client_stalls() {
    // Pipeline several protects (large CSV replies) and read NOTHING until
    // all are submitted and the server has had time to buffer replies: the
    // write backlog must hold every frame intact.
    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let ds = dataset(250);
    let table_csv = csv::to_csv(&ds.table);
    let engine = ProtectionEngine::new(engine_config(), 1).unwrap();
    let expected = engine.protect_per_attribute(&ds.table, &ontology::all_trees()).unwrap();
    let expected_body = csv::to_csv(&expected.table);

    let mut client = PipelinedClient::connect(handle.addr()).unwrap();
    let ids: Vec<u64> = (0..6)
        .map(|_| client.submit(&Request::new(Command::Protect).body(&table_csv)).unwrap())
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    for id in ids {
        let served = client.wait(id).unwrap();
        assert!(served.is_ok(), "{}", served.json);
        assert_eq!(
            served.body.as_deref(),
            Some(expected_body.as_str()),
            "buffered reply for id {id} lost its byte-identity"
        );
    }
    handle.shutdown();
}

#[test]
fn connections_past_the_limit_get_a_structured_refusal() {
    let config = ServeConfig { max_connections: 2, ..serve_config() };
    let handle = serve(config, "127.0.0.1:0").unwrap();
    let addr = handle.addr();
    // Fill the limit, proving both connections are registered.
    let mut first = Client::connect(addr).unwrap();
    let mut second = Client::connect(addr).unwrap();
    assert!(first.ping().unwrap().is_ok());
    assert!(second.ping().unwrap().is_ok());

    // The third connection is told why before it is closed.
    let mut refused = TcpStream::connect(addr).unwrap();
    refused.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let frame = read_frame(&mut refused, medshield_serve::protocol::DEFAULT_MAX_FRAME_LEN)
        .unwrap()
        .expect("the refusal must be a frame, not a silent close");
    let response = medshield_serve::Response::decode(&frame.payload).unwrap();
    assert_eq!(response.code().as_deref(), Some("connection-limit"), "{}", response.json);

    // Freeing a slot lets a new connection in (the core reaps the closed
    // socket on a later pass, so allow a few retries).
    drop(second);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = Client::connect(addr).unwrap();
        match retry.ping() {
            Ok(pong) if pong.is_ok() => break,
            _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            other => panic!("no slot freed after the limit cleared: {other:?}"),
        }
    }
    assert!(first.ping().unwrap().is_ok(), "the surviving connection must be unaffected");
    handle.shutdown();
}

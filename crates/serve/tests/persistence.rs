//! Crash-recovery properties of the durable release store.
//!
//! The central claim: whatever prefix of the write-ahead log survives a
//! crash, recovery is *clean* — it never errors, never panics, restores
//! exactly the releases whose records are wholly inside the surviving
//! prefix (bit-perfect), never hands out an id that a recovered release
//! already owns, and leaves the log in a state that accepts new appends.

use medshield_binning::ColumnBinning;
use medshield_dht::GeneralizationSet;
use medshield_serve::store::{DurableStore, ReleaseStore, StoredRecipient, StoredRelease};
use medshield_watermark::{Mark, OwnershipProof};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "medshield-persistence-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic, seed-distinguishable release with real tree-backed
/// binning state (so the codec exercises the same shapes `protect` stores).
fn release(seed: u64) -> StoredRelease {
    let trees = medshield_datagen::ontology::all_trees();
    let columns: Vec<ColumnBinning> = trees
        .iter()
        .map(|(name, tree)| ColumnBinning {
            column: name.clone(),
            maximal: GeneralizationSet::root_only(tree),
            minimal: GeneralizationSet::all_leaves(tree),
            ultimate: GeneralizationSet::at_depth(tree, 1 + (seed as usize % 2)),
        })
        .collect();
    StoredRelease {
        columns,
        mark: Mark::from_bytes(&seed.to_be_bytes(), 20),
        ownership: (!seed.is_multiple_of(3))
            .then_some(OwnershipProof { statistic: seed as f64 * 0.75 + 0.125, mark_len: 20 }),
        recipients: Vec::new(),
    }
}

/// A pre-refactor (v1, single-mark) release record, replicated independently
/// of the store's own encoder from the documented wire layout: tag `1`, id,
/// column binnings, mark, optional ownership proof — and nothing else. This
/// is what every durable store on disk contained before recipient records
/// existed.
fn v1_record(id: u64, release: &StoredRelease) -> Vec<u8> {
    use medshield_core::codec::{self, Writer};
    assert!(release.recipients.is_empty(), "v1 records cannot carry recipients");
    let mut w = Writer::new();
    w.u8(1);
    w.u64(id);
    w.count_u32(release.columns.len());
    for column in &release.columns {
        codec::write_column_binning(&mut w, column);
    }
    codec::write_mark(&mut w, &release.mark);
    match &release.ownership {
        None => w.u8(0),
        Some(proof) => {
            w.u8(1);
            codec::write_ownership_proof(&mut w, proof);
        }
    }
    w.into_bytes().expect("fixture record encodes")
}

/// Frame a record as the WAL/snapshot do: `[u32 len][u32 crc32][payload]`,
/// little-endian.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&medshield_core::codec::crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[test]
fn a_v1_single_mark_store_recovers_byte_identically_under_the_new_codec() {
    let dir = fresh_dir("v1-fixture");
    std::fs::create_dir_all(&dir).unwrap();

    // Build the fixture directory exactly as a pre-refactor server left it:
    // a snapshot with releases 1–2 folded in (next id 4: an id was burned
    // by a release whose WAL record died with the process) and a WAL tail
    // carrying release 3.
    let mut snapshot_bytes = b"MSSNP\x01\r\n".to_vec();
    snapshot_bytes.extend_from_slice(&4u64.to_le_bytes());
    snapshot_bytes.extend_from_slice(&2u64.to_le_bytes());
    for id in 1..=2u64 {
        snapshot_bytes.extend_from_slice(&frame(&v1_record(id, &release(id - 1))));
    }
    std::fs::write(dir.join("snapshot.bin"), &snapshot_bytes).unwrap();
    let mut wal_bytes = b"MSWAL\x01\r\n".to_vec();
    wal_bytes.extend_from_slice(&frame(&v1_record(3, &release(2))));
    std::fs::write(dir.join("wal.log"), &wal_bytes).unwrap();

    // The new codec recovers every release, with empty recipient lists…
    let store = DurableStore::open(&dir, 0).unwrap();
    assert_eq!(store.recovered_releases(), 3);
    for id in 1..=3u64 {
        let got = store.get(id).unwrap();
        assert_eq!(&*got, &release(id - 1), "release {id} corrupted by the upgrade");
        assert!(got.recipients.is_empty());
    }
    assert_eq!(store.next_id(), 4);
    // …without rewriting a single fixture byte: opening is read-only.
    assert_eq!(std::fs::read(dir.join("wal.log")).unwrap(), wal_bytes);
    assert_eq!(std::fs::read(dir.join("snapshot.bin")).unwrap(), snapshot_bytes);

    // Recipient-less appends still produce v1 bytes, so a store that never
    // uses protect-for keeps emitting records any pre-refactor reader (or
    // fixture replica) predicts byte-for-byte.
    assert_eq!(store.append(release(7)).unwrap(), 4);
    store.sync().unwrap();
    let wal_now = std::fs::read(dir.join("wal.log")).unwrap();
    assert_eq!(&wal_now[..wal_bytes.len()], &wal_bytes[..]);
    assert_eq!(&wal_now[wal_bytes.len()..], &frame(&v1_record(4, &release(7)))[..]);

    // A post-upgrade snapshot of recipient-less releases is likewise pure v1.
    store.compact().unwrap();
    let mut expected = b"MSSNP\x01\r\n".to_vec();
    expected.extend_from_slice(&5u64.to_le_bytes());
    expected.extend_from_slice(&4u64.to_le_bytes());
    for (id, seed) in [(1u64, 0u64), (2, 1), (3, 2), (4, 7)] {
        expected.extend_from_slice(&frame(&v1_record(id, &release(seed))));
    }
    assert_eq!(std::fs::read(dir.join("snapshot.bin")).unwrap(), expected);

    // Only registering a recipient departs from the v1 format — and the
    // upgraded store round-trips it cleanly.
    let mark = Mark::from_bytes(b"clinic", 20);
    store
        .add_recipient(3, StoredRecipient { name: "clinic".into(), mark: mark.clone() })
        .unwrap()
        .unwrap();
    drop(store);
    let store = DurableStore::open(&dir, 0).unwrap();
    let upgraded = store.get(3).unwrap();
    assert_eq!(upgraded.recipients.len(), 1);
    assert_eq!(upgraded.recipients[0].name, "clinic");
    assert_eq!(upgraded.recipients[0].mark, mark);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_wal_prefix_truncation_recovers_cleanly(
        releases in 1usize..5,
        cut_per_mille in 0u32..1000,
    ) {
        let dir = fresh_dir("truncate");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            for seed in 0..releases as u64 {
                store.append(release(seed)).unwrap();
            }
            store.sync().unwrap();
        }
        // Truncate the WAL at an arbitrary byte offset — every offset a
        // crash could leave behind, including inside the magic, inside a
        // frame header, and inside a payload.
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = (bytes.len() as u64 * u64::from(cut_per_mille) / 1000) as usize;
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();

        // Recovery must succeed, restoring a prefix of the appends…
        let store = DurableStore::open(&dir, 0).unwrap();
        let recovered = store.recovered_releases();
        prop_assert!(recovered <= releases, "recovered {recovered} of {releases}");
        // …monotone in the surviving bytes: whatever came back is
        // bit-perfect and owns ids 1..=recovered.
        for seed in 0..recovered as u64 {
            let got = store.get(seed + 1);
            prop_assert!(got.is_some(), "release {} lost", seed + 1);
            prop_assert_eq!(&*got.unwrap(), &release(seed));
        }
        for seed in recovered as u64..releases as u64 {
            prop_assert!(store.get(seed + 1).is_none());
        }
        // New ids start past every recovered id, and appends land cleanly
        // on the truncated log.
        prop_assert_eq!(store.next_id(), recovered as u64 + 1);
        let new_id = store.append(release(99)).unwrap();
        prop_assert_eq!(new_id, recovered as u64 + 1);
        store.sync().unwrap();
        drop(store);
        // One more restart proves the post-truncation log is well-formed.
        let store = DurableStore::open(&dir, 0).unwrap();
        prop_assert_eq!(store.recovered_releases(), recovered + 1);
        prop_assert_eq!(&*store.get(new_id).unwrap(), &release(99));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_plus_truncated_wal_never_loses_snapshotted_releases(
        snapshotted in 1usize..4,
        tail in 1usize..4,
        cut_per_mille in 0u32..1000,
    ) {
        let dir = fresh_dir("snap");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            for seed in 0..snapshotted as u64 {
                store.append(release(seed)).unwrap();
            }
            store.compact().unwrap();
            for seed in 0..tail as u64 {
                store.append(release(100 + seed)).unwrap();
            }
            store.sync().unwrap();
        }
        // Tear only the WAL: the snapshot is written atomically and a crash
        // cannot damage it.
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = (bytes.len() as u64 * u64::from(cut_per_mille) / 1000) as usize;
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();

        let store = DurableStore::open(&dir, 0).unwrap();
        // Everything the snapshot folded in must survive any WAL damage.
        for seed in 0..snapshotted as u64 {
            prop_assert_eq!(&*store.get(seed + 1).unwrap(), &release(seed));
        }
        // The surviving WAL tail is a prefix of the post-snapshot appends.
        let recovered_tail = store.recovered_releases() - snapshotted;
        prop_assert!(recovered_tail <= tail);
        for i in 0..recovered_tail as u64 {
            prop_assert_eq!(
                &*store.get(snapshotted as u64 + i + 1).unwrap(),
                &release(100 + i)
            );
        }
        // Ids stay stable: even if the whole tail tore away, the snapshot's
        // next-id header prevents reuse of ids the dead process handed out
        // *before* the snapshot.
        prop_assert!(store.next_id() > snapshotted as u64);
        prop_assert_eq!(store.next_id(), snapshotted as u64 + recovered_tail as u64 + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Crash-recovery properties of the durable release store.
//!
//! The central claim: whatever prefix of the write-ahead log survives a
//! crash, recovery is *clean* — it never errors, never panics, restores
//! exactly the releases whose records are wholly inside the surviving
//! prefix (bit-perfect), never hands out an id that a recovered release
//! already owns, and leaves the log in a state that accepts new appends.

use medshield_binning::ColumnBinning;
use medshield_dht::GeneralizationSet;
use medshield_serve::store::{DurableStore, ReleaseStore, StoredRelease};
use medshield_watermark::{Mark, OwnershipProof};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "medshield-persistence-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic, seed-distinguishable release with real tree-backed
/// binning state (so the codec exercises the same shapes `protect` stores).
fn release(seed: u64) -> StoredRelease {
    let trees = medshield_datagen::ontology::all_trees();
    let columns: Vec<ColumnBinning> = trees
        .iter()
        .map(|(name, tree)| ColumnBinning {
            column: name.clone(),
            maximal: GeneralizationSet::root_only(tree),
            minimal: GeneralizationSet::all_leaves(tree),
            ultimate: GeneralizationSet::at_depth(tree, 1 + (seed as usize % 2)),
        })
        .collect();
    StoredRelease {
        columns,
        mark: Mark::from_bytes(&seed.to_be_bytes(), 20),
        ownership: (!seed.is_multiple_of(3))
            .then_some(OwnershipProof { statistic: seed as f64 * 0.75 + 0.125, mark_len: 20 }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_wal_prefix_truncation_recovers_cleanly(
        releases in 1usize..5,
        cut_per_mille in 0u32..1000,
    ) {
        let dir = fresh_dir("truncate");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            for seed in 0..releases as u64 {
                store.append(release(seed)).unwrap();
            }
            store.sync().unwrap();
        }
        // Truncate the WAL at an arbitrary byte offset — every offset a
        // crash could leave behind, including inside the magic, inside a
        // frame header, and inside a payload.
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = (bytes.len() as u64 * u64::from(cut_per_mille) / 1000) as usize;
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();

        // Recovery must succeed, restoring a prefix of the appends…
        let store = DurableStore::open(&dir, 0).unwrap();
        let recovered = store.recovered_releases();
        prop_assert!(recovered <= releases, "recovered {recovered} of {releases}");
        // …monotone in the surviving bytes: whatever came back is
        // bit-perfect and owns ids 1..=recovered.
        for seed in 0..recovered as u64 {
            let got = store.get(seed + 1);
            prop_assert!(got.is_some(), "release {} lost", seed + 1);
            prop_assert_eq!(&*got.unwrap(), &release(seed));
        }
        for seed in recovered as u64..releases as u64 {
            prop_assert!(store.get(seed + 1).is_none());
        }
        // New ids start past every recovered id, and appends land cleanly
        // on the truncated log.
        prop_assert_eq!(store.next_id(), recovered as u64 + 1);
        let new_id = store.append(release(99)).unwrap();
        prop_assert_eq!(new_id, recovered as u64 + 1);
        store.sync().unwrap();
        drop(store);
        // One more restart proves the post-truncation log is well-formed.
        let store = DurableStore::open(&dir, 0).unwrap();
        prop_assert_eq!(store.recovered_releases(), recovered + 1);
        prop_assert_eq!(&*store.get(new_id).unwrap(), &release(99));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_plus_truncated_wal_never_loses_snapshotted_releases(
        snapshotted in 1usize..4,
        tail in 1usize..4,
        cut_per_mille in 0u32..1000,
    ) {
        let dir = fresh_dir("snap");
        {
            let store = DurableStore::open(&dir, 0).unwrap();
            for seed in 0..snapshotted as u64 {
                store.append(release(seed)).unwrap();
            }
            store.compact().unwrap();
            for seed in 0..tail as u64 {
                store.append(release(100 + seed)).unwrap();
            }
            store.sync().unwrap();
        }
        // Tear only the WAL: the snapshot is written atomically and a crash
        // cannot damage it.
        let wal_path = dir.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = (bytes.len() as u64 * u64::from(cut_per_mille) / 1000) as usize;
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();

        let store = DurableStore::open(&dir, 0).unwrap();
        // Everything the snapshot folded in must survive any WAL damage.
        for seed in 0..snapshotted as u64 {
            prop_assert_eq!(&*store.get(seed + 1).unwrap(), &release(seed));
        }
        // The surviving WAL tail is a prefix of the post-snapshot appends.
        let recovered_tail = store.recovered_releases() - snapshotted;
        prop_assert!(recovered_tail <= tail);
        for i in 0..recovered_tail as u64 {
            prop_assert_eq!(
                &*store.get(snapshotted as u64 + i + 1).unwrap(),
                &release(100 + i)
            );
        }
        // Ids stay stable: even if the whole tail tore away, the snapshot's
        // next-id header prevents reuse of ids the dead process handed out
        // *before* the snapshot.
        prop_assert!(store.next_id() > snapshotted as u64);
        prop_assert_eq!(store.next_id(), snapshotted as u64 + recovered_tail as u64 + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

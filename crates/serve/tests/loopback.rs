//! Loopback integration suite for the serving layer.
//!
//! Every test starts a real server on an ephemeral loopback port, talks to
//! it over TCP with the crate's own client, and asserts two things above
//! all: served results are **byte-identical** to calling the engine
//! in-process, and no malformed, oversized, empty or ill-timed submission
//! ever gets anything other than a structured error reply.

use medshield_core::{ProtectionConfig, ProtectionEngine};
use medshield_datagen::{ontology, DatasetConfig, MedicalDataset};
use medshield_relation::csv;
use medshield_serve::{serve, Client, Command, Request, ServeConfig};
use std::time::Duration;

fn engine_config() -> ProtectionConfig {
    ProtectionConfig::builder().k(4).eta(5).duplication(2).mark_from_statistic(true).build()
}

fn serve_config() -> ServeConfig {
    ServeConfig { engine: engine_config(), workers: 2, ..ServeConfig::default() }
}

fn dataset(n: usize) -> MedicalDataset {
    MedicalDataset::generate(&DatasetConfig::small(n))
}

/// Drop the last `n` data rows of a CSV (a crude subset-deletion attack).
fn drop_tail_rows(table_csv: &str, n: usize) -> String {
    let mut lines: Vec<&str> = table_csv.lines().collect();
    let keep = lines.len().saturating_sub(n).max(1);
    lines.truncate(keep);
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[test]
fn served_protect_detect_resolve_match_in_process() {
    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let ds = dataset(400);
    let table_csv = csv::to_csv(&ds.table);
    let trees = ontology::all_trees();
    let engine = ProtectionEngine::new(engine_config(), 1).unwrap();

    for per_attribute in [true, false] {
        // protect: the served release must be the in-process bytes.
        let reply = client.protect_mode(&table_csv, per_attribute).unwrap();
        assert!(reply.is_ok(), "{}", reply.json);
        let expected = if per_attribute {
            engine.protect_per_attribute(&ds.table, &ds.trees).unwrap()
        } else {
            engine.protect(&ds.table, &ds.trees).unwrap()
        };
        assert_eq!(
            reply.body.as_deref(),
            Some(csv::to_csv(&expected.table).as_str()),
            "served release must be byte-identical to the in-process engine"
        );
        assert_eq!(reply.u64_field("rows"), Some(expected.table.len() as u64));
        assert_eq!(
            reply.u64_field("selected_tuples"),
            Some(expected.embedding.selected_tuples as u64)
        );
        assert_eq!(reply.str_field("mark").as_deref(), Some(expected.mark.to_string().as_str()));
        assert_eq!(reply.bool_field("has_ownership_proof"), Some(true));
        let release_id = reply.release_id().unwrap();

        // detect on the clean release: full mark, zero loss.
        let detect = client.detect(&release_id, reply.body.as_deref().unwrap()).unwrap();
        assert!(detect.is_ok(), "{}", detect.json);
        let expected_detection =
            engine.detect(&expected.table, &expected.binning.columns, &trees).unwrap();
        assert_eq!(
            detect.str_field("mark").as_deref(),
            Some(
                medshield_core::watermark::Mark::from_bits(expected_detection.mark.clone())
                    .to_string()
                    .as_str()
            )
        );
        assert_eq!(detect.f64_field("mark_loss"), Some(0.0));
        assert_eq!(detect.bool_field("carries_mark"), Some(true));

        // detect on an attacked (tail-deleted) suspect still matches the
        // in-process report.
        let attacked_csv = drop_tail_rows(reply.body.as_deref().unwrap(), 40);
        let attacked = csv::from_csv(&attacked_csv, &medshield_serve::MEDICAL_ROLES).unwrap();
        let served = client.detect(&release_id, &attacked_csv).unwrap();
        assert!(served.is_ok(), "{}", served.json);
        let expected_attacked =
            engine.detect(&attacked, &expected.binning.columns, &trees).unwrap();
        assert_eq!(
            served.u64_field("selected_tuples"),
            Some(expected_attacked.selected_tuples as u64)
        );
        assert_eq!(
            served.str_field("mark").as_deref(),
            Some(
                medshield_core::watermark::Mark::from_bits(expected_attacked.mark.clone())
                    .to_string()
                    .as_str()
            )
        );

        // embed: re-marking the retained binning state is byte-identical.
        let binned_csv = csv::to_csv(&expected.binning.table);
        let embed = client.embed(&release_id, &binned_csv).unwrap();
        assert!(embed.is_ok(), "{}", embed.json);
        let (expected_marked, _) = engine
            .embed(&expected.binning.table, &expected.binning.columns, &trees, &expected.mark)
            .unwrap();
        assert_eq!(embed.body.as_deref(), Some(csv::to_csv(&expected_marked).as_str()));

        // resolve-ownership: the rightful owner wins the dispute over the
        // leaked release (tail-deletion shifts the identifying-column mean,
        // so the statistic test is run over the full leaked copy — exactly
        // the table a court would be shown)...
        let verdict =
            client.resolve_ownership(&release_id, reply.body.as_deref().unwrap()).unwrap();
        assert!(verdict.is_ok(), "{}", verdict.json);
        assert_eq!(verdict.bool_field("statistic_consistent"), Some(true), "{}", verdict.json);
        assert_eq!(verdict.bool_field("accepted"), Some(true), "{}", verdict.json);
        // ...and a thief presenting a fabricated statistic loses.
        let thief = client
            .call(
                &Request::new(Command::ResolveOwnership)
                    .param("release", release_id.as_str())
                    .param("statistic", "99999999.0")
                    .body(reply.body.as_deref().unwrap()),
            )
            .unwrap();
        assert!(thief.is_ok(), "{}", thief.json);
        assert_eq!(thief.bool_field("accepted"), Some(false), "{}", thief.json);
    }
    handle.shutdown();
}

#[test]
fn empty_submissions_get_clean_replies_never_panics() {
    // mark_text mode: a 0-row protect legitimately yields an empty release.
    let config = ServeConfig {
        engine: ProtectionConfig::builder().k(3).eta(4).duplication(2).mark_text("owner").build(),
        workers: 1,
        ..ServeConfig::default()
    };
    let handle = serve(config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let header = "ssn,age,zip_code,doctor,symptom,prescription\n";
    let reply = client.protect(header).unwrap();
    assert!(reply.is_ok(), "{}", reply.json);
    assert_eq!(reply.u64_field("rows"), Some(0));
    assert_eq!(reply.u64_field("selected_tuples"), Some(0));
    let release_id = reply.release_id().unwrap();
    // A fully-deleted (0-row) suspect detects cleanly with zero votes.
    let detect = client.detect(&release_id, header).unwrap();
    assert!(detect.is_ok(), "{}", detect.json);
    assert_eq!(detect.u64_field("selected_tuples"), Some(0));
    assert_eq!(detect.u64_field("covered_positions"), Some(0));
    // embed into the empty binned table: empty report, no panic.
    let embed = client.embed(&release_id, header).unwrap();
    assert!(embed.is_ok(), "{}", embed.json);
    assert_eq!(embed.u64_field("selected_tuples"), Some(0));
    handle.shutdown();

    // mark-from-statistic mode: a 0-row protect cannot derive the statistic
    // and must fail with a structured engine error, not a panic.
    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client.protect(header).unwrap();
    assert!(!reply.is_ok(), "{}", reply.json);
    assert_eq!(reply.code().as_deref(), Some("engine"));
    handle.shutdown();
}

#[test]
fn malformed_inputs_get_structured_errors() {
    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Malformed CSV body (unterminated quote).
    let reply = client.protect("ssn,age\n\"oops,1\n").unwrap();
    assert_eq!(reply.code().as_deref(), Some("malformed-csv"), "{}", reply.json);

    // Unknown command.
    let reply = client.request_raw(b"nuke --all\n").unwrap();
    assert_eq!(reply.code().as_deref(), Some("unknown-command"), "{}", reply.json);

    // Empty header line.
    let reply = client.request_raw(b"\n").unwrap();
    assert_eq!(reply.code().as_deref(), Some("bad-request"), "{}", reply.json);

    // Non-UTF-8 payload.
    let reply = client.request_raw(&[0xff, 0xfe, 0x00]).unwrap();
    assert_eq!(reply.code().as_deref(), Some("bad-request"), "{}", reply.json);

    // Malformed header parameter.
    let reply = client.request_raw(b"detect release\n").unwrap();
    assert_eq!(reply.code().as_deref(), Some("bad-request"), "{}", reply.json);

    // Missing release parameter.
    let reply = client.call(&Request::new(Command::Detect).body("ssn,age\n")).unwrap();
    assert_eq!(reply.code().as_deref(), Some("missing-parameter"), "{}", reply.json);

    // Unknown release id.
    let reply = client.detect("r999", "ssn,age\n1,2\n").unwrap();
    assert_eq!(reply.code().as_deref(), Some("unknown-release"), "{}", reply.json);

    // The connection stays alive and useful through all of the above.
    let pong = client.ping().unwrap();
    assert!(pong.is_ok());
    handle.shutdown();
}

#[test]
fn oversized_frames_get_a_structured_reply() {
    let config = ServeConfig { max_frame_len: 1024, ..serve_config() };
    let handle = serve(config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let huge = Request::new(Command::Protect).body("x".repeat(10_000));
    let reply = client.call(&huge).unwrap();
    assert_eq!(reply.code().as_deref(), Some("oversized-frame"), "{}", reply.json);
    assert!(reply.message().unwrap().contains("1024"), "{}", reply.json);
    handle.shutdown();
}

#[test]
fn queue_full_and_timeout_are_structured_errors() {
    // One worker, a queue of one, and the debug sleep command to hold the
    // worker deterministically.
    let config = ServeConfig {
        workers: 1,
        queue_depth: 1,
        request_timeout: Duration::from_millis(150),
        debug_hooks: true,
        ..serve_config()
    };
    let handle = serve(config, "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    // Occupy the worker...
    let sleeper = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.call(&Request::new(Command::Sleep).param("ms", "600")).unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));
    // ...fill the queue with a request that will overstay its deadline...
    let waiter = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.call(&Request::new(Command::Ping).body("")).unwrap(); // warm up
        c.call(&Request::new(Command::Sleep).param("ms", "1")).unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));
    // ...and the next request bounces off the full queue immediately.
    let mut c = Client::connect(addr).unwrap();
    let reply = c.call(&Request::new(Command::Sleep).param("ms", "1")).unwrap();
    assert_eq!(reply.code().as_deref(), Some("queue-full"), "{}", reply.json);
    // Ping still answers inline while the pool is saturated.
    let pong = c.ping().unwrap();
    assert!(pong.is_ok(), "{}", pong.json);

    let slept = sleeper.join().unwrap();
    assert!(slept.is_ok(), "{}", slept.json);
    // The queued request waited ~600ms against a 150ms deadline: timeout.
    let timed_out = waiter.join().unwrap();
    assert_eq!(timed_out.code().as_deref(), Some("timeout"), "{}", timed_out.json);
    handle.shutdown();
}

#[test]
fn small_detects_are_micro_batched_with_identical_results() {
    let config = ServeConfig { workers: 1, debug_hooks: true, ..serve_config() };
    let handle = serve(config, "127.0.0.1:0").unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    let ds = dataset(240);
    let reply = client.protect(&csv::to_csv(&ds.table)).unwrap();
    assert!(reply.is_ok(), "{}", reply.json);
    let release_id = reply.release_id().unwrap();
    let release_csv = reply.body.clone().unwrap();

    // Expected report, in-process.
    let engine = ProtectionEngine::new(engine_config(), 1).unwrap();
    let expected_release = engine.protect_per_attribute(&ds.table, &ds.trees).unwrap();
    let trees = ontology::all_trees();
    let expected =
        engine.detect(&expected_release.table, &expected_release.binning.columns, &trees).unwrap();

    // Hold the single worker so concurrent detects pile up in the queue and
    // get drained as one micro-batch.
    let sleeper = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.call(&Request::new(Command::Sleep).param("ms", "400")).unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));
    let detectors: Vec<_> = (0..4)
        .map(|_| {
            let release_id = release_id.clone();
            let release_csv = release_csv.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.detect(&release_id, &release_csv).unwrap()
            })
        })
        .collect();
    for d in detectors {
        let served = d.join().unwrap();
        assert!(served.is_ok(), "{}", served.json);
        assert_eq!(served.u64_field("selected_tuples"), Some(expected.selected_tuples as u64));
        assert_eq!(
            served.str_field("mark").as_deref(),
            Some(
                medshield_core::watermark::Mark::from_bits(expected.mark.clone())
                    .to_string()
                    .as_str()
            )
        );
        assert_eq!(served.f64_field("mark_loss"), Some(0.0));
    }
    sleeper.join().unwrap();
    let pong = client.ping().unwrap();
    assert!(
        pong.u64_field("batched_detects").unwrap_or(0) >= 2,
        "expected a micro-batch of detects, got {}",
        pong.json
    );
    handle.shutdown();
}

#[test]
fn shutdown_is_not_wedged_by_a_stalled_partial_frame() {
    use std::io::Write;
    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();
    // A misbehaving client: send half a length prefix, then go silent
    // without closing the socket.
    let mut stalled = std::net::TcpStream::connect(addr).unwrap();
    stalled.write_all(&[0u8, 0]).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // Shutdown must still complete within the connection grace period.
    let start = std::time::Instant::now();
    handle.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown took {:?} — wedged on the stalled connection",
        start.elapsed()
    );
    drop(stalled);
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    let ds = dataset(150);
    let reply = client.protect(&csv::to_csv(&ds.table)).unwrap();
    assert!(reply.is_ok(), "{}", reply.json);
    handle.shutdown();
    // After shutdown the port no longer serves: either the connection is
    // refused outright or the request fails.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.ping().is_err(), "the server must be gone after shutdown"),
    }
}

#[test]
fn resolve_without_an_ownership_proof_is_a_structured_code() {
    // Protect WITHOUT mark-from-statistic: the release carries no proof, so
    // the dispute protocol cannot run — the claimant must get the dedicated
    // machine-readable code, not a panic, an empty body or a generic
    // bad-request.
    let config = ServeConfig {
        engine: ProtectionConfig::builder().k(4).eta(5).duplication(2).build(),
        workers: 1,
        ..ServeConfig::default()
    };
    let handle = serve(config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let ds = dataset(200);
    let reply = client.protect(&csv::to_csv(&ds.table)).unwrap();
    assert!(reply.is_ok(), "{}", reply.json);
    assert_eq!(reply.bool_field("has_ownership_proof"), Some(false), "{}", reply.json);
    let release_id = reply.release_id().unwrap();

    let verdict = client.resolve_ownership(&release_id, reply.body.as_deref().unwrap()).unwrap();
    assert!(!verdict.is_ok(), "{}", verdict.json);
    assert_eq!(verdict.code().as_deref(), Some("no-ownership-proof"), "{}", verdict.json);
    assert!(verdict.message().unwrap().contains("mark-from-statistic"), "{}", verdict.json);
    // The connection survives and the release still answers detect.
    let detect = client.detect(&release_id, reply.body.as_deref().unwrap()).unwrap();
    assert!(detect.is_ok(), "{}", detect.json);
    handle.shutdown();
}

#[test]
fn a_poisoned_store_lock_does_not_cascade_to_other_requests() {
    // The debug `panic poison=store` command panics *while holding the
    // release-store lock*, poisoning it. Before the serving layer recovered
    // poisoned locks with `into_inner`, every later request touching the
    // store would die in `.expect("poisoned")` — one sick worker taking
    // down unrelated connections.
    let config = ServeConfig { workers: 2, debug_hooks: true, ..serve_config() };
    let handle = serve(config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let poisoned = client.call(&Request::new(Command::Panic).param("poison", "store")).unwrap();
    assert_eq!(poisoned.code().as_deref(), Some("engine"), "{}", poisoned.json);

    // A fresh connection still protects, pings and detects: the store's
    // plain-map state is consistent, so the poison is recovered, not fatal.
    let mut second = Client::connect(handle.addr()).unwrap();
    let ds = dataset(150);
    let reply = second.protect(&csv::to_csv(&ds.table)).unwrap();
    assert!(reply.is_ok(), "protect after poison failed: {}", reply.json);
    let release_id = reply.release_id().unwrap();
    let detect = second.detect(&release_id, reply.body.as_deref().unwrap()).unwrap();
    assert!(detect.is_ok(), "detect after poison failed: {}", detect.json);
    let pong = second.ping().unwrap();
    assert_eq!(pong.u64_field("releases"), Some(1), "{}", pong.json);

    // A bare panic (no lock held) is likewise absorbed by the guard.
    let plain = second.call(&Request::new(Command::Panic)).unwrap();
    assert_eq!(plain.code().as_deref(), Some("engine"), "{}", plain.json);
    assert!(second.ping().unwrap().is_ok());
    handle.shutdown();
}

#[test]
fn debug_commands_stay_disabled_by_default() {
    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    for request in
        [Request::new(Command::Panic).param("poison", "store"), Request::new(Command::Sleep)]
    {
        let reply = client.call(&request).unwrap();
        assert_eq!(reply.code().as_deref(), Some("unknown-command"), "{}", reply.json);
    }
    handle.shutdown();
}

#[test]
fn protect_for_list_recipients_and_resolve_leaker_trace_the_leak() {
    use medshield_attacks::{Attack, CollusionAttack, SubsetAlteration};

    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let ds = dataset(400);
    let reply = client.protect(&csv::to_csv(&ds.table)).unwrap();
    assert!(reply.is_ok(), "{}", reply.json);
    let release_id = reply.release_id().unwrap();
    let release_csv = reply.body.clone().unwrap();

    // Before any copy is issued, tracing has nothing to rank against.
    let bare = client.resolve_leaker(&release_id, &release_csv).unwrap();
    assert_eq!(bare.code().as_deref(), Some("no-recipients"), "{}", bare.json);
    let list = client.list_recipients(&release_id).unwrap();
    assert_eq!(list.u64_field("count"), Some(0), "{}", list.json);

    // Issue three per-recipient copies of the same release.
    let names = ["clinic-a", "clinic-b", "clinic-c"];
    let mut copies = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let copy = client.protect_for_release(&release_id, name, &release_csv).unwrap();
        assert!(copy.is_ok(), "{}", copy.json);
        assert_eq!(copy.str_field("recipient").as_deref(), Some(*name), "{}", copy.json);
        assert_eq!(copy.u64_field("recipients"), Some(i as u64 + 1), "{}", copy.json);
        copies.push(copy.body.clone().unwrap());
    }
    for i in 0..copies.len() {
        for j in i + 1..copies.len() {
            assert_ne!(copies[i], copies[j], "copies {i} and {j} are identical");
        }
    }
    // Re-issuing to a known recipient is idempotent: same copy, same count.
    let again = client.protect_for_release(&release_id, "clinic-a", &release_csv).unwrap();
    assert!(again.is_ok(), "{}", again.json);
    assert_eq!(again.u64_field("recipients"), Some(3), "{}", again.json);
    assert_eq!(again.body.as_deref(), Some(copies[0].as_str()));
    let list = client.list_recipients(&release_id).unwrap();
    assert_eq!(list.u64_field("count"), Some(3), "{}", list.json);
    assert_eq!(
        list.str_array_field("recipients"),
        Some(names.iter().map(std::string::ToString::to_string).collect()),
        "{}",
        list.json
    );

    // A clean leak of clinic-b's copy traces to clinic-b exactly.
    let verdict = client.resolve_leaker(&release_id, &copies[1]).unwrap();
    assert!(verdict.is_ok(), "{}", verdict.json);
    assert_eq!(verdict.str_field("leaker").as_deref(), Some("clinic-b"), "{}", verdict.json);
    assert_eq!(verdict.f64_field("leaker_score"), Some(1.0), "{}", verdict.json);
    assert_eq!(verdict.u64_field("candidates"), Some(3), "{}", verdict.json);
    assert_eq!(
        verdict.str_array_field("ranking").and_then(|r| r.first().cloned()).as_deref(),
        Some("clinic-b")
    );

    // …and still traces after a subset deletion of the leaked copy…
    let deleted = drop_tail_rows(&copies[1], 80);
    let verdict = client.resolve_leaker(&release_id, &deleted).unwrap();
    assert!(verdict.is_ok(), "{}", verdict.json);
    assert_eq!(verdict.str_field("leaker").as_deref(), Some("clinic-b"), "{}", verdict.json);

    // …and after a subset alteration.
    let copy_b = csv::from_csv(&copies[1], &medshield_serve::MEDICAL_ROLES).unwrap();
    let altered = SubsetAlteration::new(0.15, 7).apply(&copy_b);
    let verdict = client.resolve_leaker(&release_id, &csv::to_csv(&altered)).unwrap();
    assert!(verdict.is_ok(), "{}", verdict.json);
    assert_eq!(verdict.str_field("leaker").as_deref(), Some("clinic-b"), "{}", verdict.json);

    // A 2-party collusion of clinic-b and clinic-c majority-mixing their
    // copies must still convict a member of the colluding set, never the
    // innocent clinic-a.
    let copy_c = csv::from_csv(&copies[2], &medshield_serve::MEDICAL_ROLES).unwrap();
    let mixed = CollusionAttack::new(vec![copy_c], 11).apply(&copy_b);
    let verdict = client.resolve_leaker(&release_id, &csv::to_csv(&mixed)).unwrap();
    assert!(verdict.is_ok(), "{}", verdict.json);
    let leaker = verdict.str_field("leaker").unwrap();
    assert!(
        leaker == "clinic-b" || leaker == "clinic-c",
        "collusion must convict a colluder, got {leaker}: {}",
        verdict.json
    );

    // The suspects filter narrows the candidate set…
    let verdict = client
        .call(
            &Request::new(Command::ResolveLeaker)
                .param("release", release_id.as_str())
                .param("suspects", "clinic-a,clinic-b")
                .body(copies[1].as_str()),
        )
        .unwrap();
    assert!(verdict.is_ok(), "{}", verdict.json);
    assert_eq!(verdict.u64_field("candidates"), Some(2), "{}", verdict.json);
    assert_eq!(verdict.str_field("leaker").as_deref(), Some("clinic-b"), "{}", verdict.json);
    // …and an unregistered suspect is a structured error.
    let unknown = client
        .call(
            &Request::new(Command::ResolveLeaker)
                .param("release", release_id.as_str())
                .param("suspects", "clinic-z")
                .body(copies[1].as_str()),
        )
        .unwrap();
    assert_eq!(unknown.code().as_deref(), Some("unknown-recipient"), "{}", unknown.json);

    // A missing recipient parameter on protect-for is a structured error too.
    let missing = client
        .call(
            &Request::new(Command::ProtectFor)
                .param("release", release_id.as_str())
                .body(release_csv.as_str()),
        )
        .unwrap();
    assert_eq!(missing.code().as_deref(), Some("missing-parameter"), "{}", missing.json);
    handle.shutdown();
}

#[test]
fn one_shot_protect_for_creates_the_release_and_registers_the_recipient() {
    let handle = serve(serve_config(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let ds = dataset(300);
    let reply = client.protect_for("clinic-x", &csv::to_csv(&ds.table)).unwrap();
    assert!(reply.is_ok(), "{}", reply.json);
    let release_id = reply.release_id().unwrap();
    assert_eq!(reply.str_field("recipient").as_deref(), Some("clinic-x"), "{}", reply.json);
    assert_eq!(reply.u64_field("recipients"), Some(1), "{}", reply.json);
    assert_eq!(reply.bool_field("has_ownership_proof"), Some(true), "{}", reply.json);
    let copy_csv = reply.body.clone().unwrap();

    // The copy carries clinic-x's fingerprint: tracing names it.
    let verdict = client.resolve_leaker(&release_id, &copy_csv).unwrap();
    assert!(verdict.is_ok(), "{}", verdict.json);
    assert_eq!(verdict.str_field("leaker").as_deref(), Some("clinic-x"), "{}", verdict.json);
    assert_eq!(verdict.f64_field("leaker_score"), Some(1.0), "{}", verdict.json);

    // The detection structure over the copy matches the owner's release: the
    // same tuples are selected by the owner key.
    let detect = client.detect(&release_id, &copy_csv).unwrap();
    assert!(detect.is_ok(), "{}", detect.json);
    assert!(detect.u64_field("selected_tuples").unwrap_or(0) > 0, "{}", detect.json);
    handle.shutdown();
}

#[test]
fn durable_server_restart_serves_byte_identical_replies_and_fresh_ids() {
    let dir =
        std::env::temp_dir().join(format!("medshield-loopback-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable_config = || ServeConfig {
        data_dir: Some(dir.clone()),
        // Large interval: the releases live in the WAL only, modelling a
        // death between append and snapshot.
        snapshot_every: 10_000,
        ..serve_config()
    };

    // First server lifetime: protect two tables, capture the exact replies
    // a client saw.
    let handle = serve(durable_config(), "127.0.0.1:0").unwrap();
    assert!(handle.is_durable());
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut stored = Vec::new();
    for n in [160usize, 220] {
        let ds = dataset(n);
        let reply = client.protect(&csv::to_csv(&ds.table)).unwrap();
        assert!(reply.is_ok(), "{}", reply.json);
        let id = reply.release_id().unwrap();
        let release_csv = reply.body.clone().unwrap();
        let detect = client.detect(&id, &release_csv).unwrap();
        assert!(detect.is_ok(), "{}", detect.json);
        let resolve = client.resolve_ownership(&id, &release_csv).unwrap();
        assert!(resolve.is_ok(), "{}", resolve.json);
        // Register a recipient copy: the recipient record must survive the
        // restart exactly like the release record.
        let copy = client.protect_for_release(&id, "clinic-durable", &release_csv).unwrap();
        assert!(copy.is_ok(), "{}", copy.json);
        stored.push((id, release_csv, detect, resolve, copy.body.clone().unwrap()));
    }
    // Drop WITHOUT graceful shutdown semantics mattering for the store: the
    // replies above were only released after their records were fsynced.
    handle.shutdown();

    // Second lifetime, same data dir: every stored release answers with the
    // byte-identical reply, and new ids never collide with old ones.
    let handle = serve(durable_config(), "127.0.0.1:0").unwrap();
    assert_eq!(handle.releases(), 2, "recovery must restore both releases");
    let mut client = Client::connect(handle.addr()).unwrap();
    for (id, release_csv, detect_before, resolve_before, copy_csv) in &stored {
        let detect_after = client.detect(id, release_csv).unwrap();
        assert_eq!(&detect_after, detect_before, "detect reply changed across restart");
        let resolve_after = client.resolve_ownership(id, release_csv).unwrap();
        assert_eq!(&resolve_after, resolve_before, "resolve reply changed across restart");
        // Recipient records recovered: listing and tracing still work.
        let list = client.list_recipients(id).unwrap();
        assert_eq!(list.u64_field("count"), Some(1), "{}", list.json);
        let verdict = client.resolve_leaker(id, copy_csv).unwrap();
        assert!(verdict.is_ok(), "{}", verdict.json);
        assert_eq!(
            verdict.str_field("leaker").as_deref(),
            Some("clinic-durable"),
            "{}",
            verdict.json
        );
    }
    let ds = dataset(140);
    let reply = client.protect(&csv::to_csv(&ds.table)).unwrap();
    assert!(reply.is_ok(), "{}", reply.json);
    let new_id = reply.release_id().unwrap();
    assert!(stored.iter().all(|(id, ..)| id != &new_id), "restart reissued release id {new_id}");
    let pong = client.ping().unwrap();
    assert_eq!(pong.bool_field("durable"), Some(true), "{}", pong.json);
    assert_eq!(pong.u64_field("releases"), Some(3), "{}", pong.json);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

//! Property tests over loopback TCP: a `protect` round-trip is
//! byte-identical to the in-process engine whatever the table size or seed,
//! and pipelined replies match their request ids under random interleavings
//! of in-flight counts, worker counts and reply-claiming orders.

use medshield_core::{ProtectionConfig, ProtectionEngine};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use medshield_relation::csv;
use medshield_serve::{serve, Client, Command, PipelinedClient, Request, ServeConfig};
use proptest::prelude::*;

fn engine_config() -> ProtectionConfig {
    ProtectionConfig::builder().k(3).eta(4).duplication(2).mark_text("prop-owner").build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn served_protect_is_byte_identical_to_in_process(
        rows in 0usize..160,
        seed in 0u64..1_000,
    ) {
        let handle = serve(
            ServeConfig { engine: engine_config(), workers: 2, ..ServeConfig::default() },
            "127.0.0.1:0",
        )
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let ds = MedicalDataset::generate(&DatasetConfig {
            num_tuples: rows,
            seed,
            zipf_exponent: 0.8,
        });
        let table_csv = csv::to_csv(&ds.table);

        let reply = client.protect(&table_csv).unwrap();
        prop_assert!(reply.is_ok(), "{}", reply.json);

        let engine = ProtectionEngine::new(engine_config(), 1).unwrap();
        let expected = engine.protect_per_attribute(&ds.table, &ds.trees).unwrap();
        let expected_csv = csv::to_csv(&expected.table);
        let expected_mark = expected.mark.to_string();
        let served_mark = reply.str_field("mark");
        prop_assert_eq!(reply.body.as_deref(), Some(expected_csv.as_str()));
        prop_assert_eq!(reply.u64_field("rows"), Some(expected.table.len() as u64));
        prop_assert_eq!(served_mark.as_deref(), Some(expected_mark.as_str()));

        // And the release detects its own mark through the same channel.
        if rows > 0 {
            let release_id = reply.release_id().unwrap();
            let detect = client.detect(&release_id, reply.body.as_deref().unwrap()).unwrap();
            prop_assert!(detect.is_ok(), "{}", detect.json);
            let expected_detection = engine
                .detect(&expected.table, &expected.binning.columns, &ds.trees)
                .unwrap();
            prop_assert_eq!(
                detect.u64_field("selected_tuples"),
                Some(expected_detection.selected_tuples as u64)
            );
        }
        handle.shutdown();
    }

    #[test]
    fn pipelined_replies_match_request_ids_under_random_interleavings(
        n in 1usize..24,
        perm_seed in 0u64..10_000,
        workers in 1usize..4,
    ) {
        // Every request sleeps a unique number of milliseconds and the reply
        // echoes it, so a reply delivered to the wrong id is unmissable.
        // Workers finish in data-dependent order; replies are then claimed
        // in a seed-randomized order, forcing `wait` to park and re-match.
        let handle = serve(
            ServeConfig {
                engine: engine_config(),
                workers,
                debug_hooks: true,
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let mut client = PipelinedClient::connect(handle.addr()).unwrap();
        let mut ids: Vec<(u64, u64)> = Vec::new();
        for i in 0..n as u64 {
            let id = client
                .submit(&Request::new(Command::Sleep).param("ms", i.to_string()))
                .unwrap();
            ids.push((id, i));
        }
        // Fisher–Yates with an LCG: an arbitrary reply-claiming order.
        let mut state = perm_seed;
        for i in (1..ids.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            ids.swap(i, j);
        }
        for (id, ms) in ids {
            let reply = client.wait(id).unwrap();
            prop_assert!(reply.is_ok(), "{}", reply.json);
            prop_assert!(
                reply.u64_field("slept_ms") == Some(ms),
                "reply for id {} answers a different request: {}",
                id,
                reply.json
            );
        }
        prop_assert_eq!(client.pending(), 0);
        handle.shutdown();
    }
}

//! Property test: a `protect` round-trip over loopback TCP is byte-identical
//! to the in-process engine, whatever the table size (including 0 rows) or
//! generator seed.

use medshield_core::{ProtectionConfig, ProtectionEngine};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use medshield_relation::csv;
use medshield_serve::{serve, Client, ServeConfig};
use proptest::prelude::*;

fn engine_config() -> ProtectionConfig {
    ProtectionConfig::builder().k(3).eta(4).duplication(2).mark_text("prop-owner").build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn served_protect_is_byte_identical_to_in_process(
        rows in 0usize..160,
        seed in 0u64..1_000,
    ) {
        let handle = serve(
            ServeConfig { engine: engine_config(), workers: 2, ..ServeConfig::default() },
            "127.0.0.1:0",
        )
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let ds = MedicalDataset::generate(&DatasetConfig {
            num_tuples: rows,
            seed,
            zipf_exponent: 0.8,
        });
        let table_csv = csv::to_csv(&ds.table);

        let reply = client.protect(&table_csv).unwrap();
        prop_assert!(reply.is_ok(), "{}", reply.json);

        let engine = ProtectionEngine::new(engine_config(), 1).unwrap();
        let expected = engine.protect_per_attribute(&ds.table, &ds.trees).unwrap();
        let expected_csv = csv::to_csv(&expected.table);
        let expected_mark = expected.mark.to_string();
        let served_mark = reply.str_field("mark");
        prop_assert_eq!(reply.body.as_deref(), Some(expected_csv.as_str()));
        prop_assert_eq!(reply.u64_field("rows"), Some(expected.table.len() as u64));
        prop_assert_eq!(served_mark.as_deref(), Some(expected_mark.as_str()));

        // And the release detects its own mark through the same channel.
        if rows > 0 {
            let release_id = reply.release_id().unwrap();
            let detect = client.detect(&release_id, reply.body.as_deref().unwrap()).unwrap();
            prop_assert!(detect.is_ok(), "{}", detect.json);
            let expected_detection = engine
                .detect(&expected.table, &expected.binning.columns, &ds.trees)
                .unwrap();
            prop_assert_eq!(
                detect.u64_field("selected_tuples"),
                Some(expected_detection.selected_tuples as u64)
            );
        }
        handle.shutdown();
    }
}

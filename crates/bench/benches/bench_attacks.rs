//! Criterion micro-benchmarks of the attack models and of detection under
//! attack (the inner loop of the Fig. 12 experiments).

use criterion::{criterion_group, criterion_main, Criterion};
use medshield_attacks::{Attack, GeneralizationAttack, SubsetAlteration, SubsetDeletion};
use medshield_core::{ProtectedRelease, ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};

const BENCH_TUPLES: usize = 2_000;

fn protected() -> (MedicalDataset, ProtectionPipeline, ProtectedRelease) {
    let ds = MedicalDataset::generate(&DatasetConfig {
        num_tuples: BENCH_TUPLES,
        seed: 0xBE9C,
        zipf_exponent: 0.8,
    });
    let pipeline = ProtectionPipeline::new(
        ProtectionConfig::builder().k(10).eta(20).duplication(4).mark_text("bench-owner").build(),
    );
    let release = pipeline.protect(&ds.table, &ds.trees).unwrap();
    (ds, pipeline, release)
}

fn bench_attacks(c: &mut Criterion) {
    let (ds, _pipeline, release) = protected();
    c.bench_function("subset_alteration_50pct", |b| {
        let attack = SubsetAlteration::new(0.5, 1);
        b.iter(|| attack.apply(&release.table));
    });
    c.bench_function("subset_deletion_ranges_50pct", |b| {
        let attack = SubsetDeletion::ranges(0.5, 2, "ssn");
        b.iter(|| attack.apply(&release.table));
    });
    c.bench_function("generalization_attack_1_level", |b| {
        let attack = GeneralizationAttack::new(1, ds.trees.clone());
        b.iter(|| attack.apply(&release.table));
    });
}

fn bench_detection_under_attack(c: &mut Criterion) {
    let (ds, pipeline, release) = protected();
    let attacked = SubsetAlteration::new(0.5, 3).apply(&release.table);
    c.bench_function("detection_under_50pct_alteration", |b| {
        b.iter(|| pipeline.detect(&attacked, &release.binning.columns, &ds.trees).unwrap());
    });
}

criterion_group!(benches, bench_attacks, bench_detection_under_attack);
criterion_main!(benches);

//! Criterion micro-benchmarks of the watermarking agent (the Fig. 12/13
//! machinery): hierarchical embedding, detection, and the single-level
//! baseline, at several η values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medshield_binning::{BinningAgent, BinningConfig, BinningOutcome};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use medshield_dht::GeneralizationSet;
use medshield_watermark::{
    HierarchicalWatermarker, Mark, SingleLevelWatermarker, WatermarkConfig, WatermarkKey,
};
use std::collections::BTreeMap;

const BENCH_TUPLES: usize = 2_000;

fn binned() -> (MedicalDataset, BinningOutcome) {
    let ds = MedicalDataset::generate(&DatasetConfig {
        num_tuples: BENCH_TUPLES,
        seed: 0xBE9C,
        zipf_exponent: 0.8,
    });
    let maximal: BTreeMap<String, GeneralizationSet> =
        ds.trees.iter().map(|(n, t)| (n.clone(), GeneralizationSet::at_depth(t, 0))).collect();
    let outcome =
        BinningAgent::new(BinningConfig::with_k(10)).bin(&ds.table, &ds.trees, &maximal).unwrap();
    (ds, outcome)
}

fn watermarker(eta: u64) -> HierarchicalWatermarker {
    let mut config = WatermarkConfig::new(WatermarkKey::from_master(b"bench-owner", eta));
    config.duplication = 4;
    HierarchicalWatermarker::new(config)
}

fn bench_embedding(c: &mut Criterion) {
    let (ds, outcome) = binned();
    let mark = Mark::from_bytes(b"bench-mark", 20);
    let mut group = c.benchmark_group("hierarchical_embedding");
    for eta in [10u64, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(eta), &eta, |b, &eta| {
            let wm = watermarker(eta);
            b.iter(|| wm.embed(&outcome, &ds.trees, &mark).unwrap());
        });
    }
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let (ds, outcome) = binned();
    let mark = Mark::from_bytes(b"bench-mark", 20);
    let mut group = c.benchmark_group("hierarchical_detection");
    for eta in [10u64, 50, 100] {
        let wm = watermarker(eta);
        let (marked, _) = wm.embed(&outcome, &ds.trees, &mark).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(eta), &eta, |b, _| {
            b.iter(|| wm.detect(&marked, &outcome.columns, &ds.trees, mark.len()).unwrap());
        });
    }
    group.finish();
}

fn bench_single_level(c: &mut Criterion) {
    let (ds, outcome) = binned();
    let mark = Mark::from_bytes(b"bench-mark", 20);
    let mut config = WatermarkConfig::new(WatermarkKey::from_master(b"bench-owner", 50));
    config.duplication = 4;
    let wm = SingleLevelWatermarker::new(config);
    c.bench_function("single_level_embedding", |b| {
        b.iter(|| wm.embed(&outcome, &ds.trees, &mark).unwrap());
    });
}

criterion_group!(benches, bench_embedding, bench_detection, bench_single_level);
criterion_main!(benches);

//! Criterion micro-benchmarks of the binning agent (the Fig. 11 machinery):
//! mono-attribute binning, multi-attribute binning and the full Binning step,
//! at several k values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medshield_binning::{mono, BinningAgent, BinningConfig};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use medshield_dht::GeneralizationSet;
use std::collections::BTreeMap;

const BENCH_TUPLES: usize = 2_000;

fn dataset() -> MedicalDataset {
    MedicalDataset::generate(&DatasetConfig {
        num_tuples: BENCH_TUPLES,
        seed: 0xBE9C,
        zipf_exponent: 0.8,
    })
}

fn root_metrics(ds: &MedicalDataset) -> BTreeMap<String, GeneralizationSet> {
    ds.trees.iter().map(|(n, t)| (n.clone(), GeneralizationSet::at_depth(t, 0))).collect()
}

fn bench_mono_attribute(c: &mut Criterion) {
    let ds = dataset();
    let mut group = c.benchmark_group("mono_attribute_binning");
    for k in [5usize, 25, 100] {
        group.bench_with_input(BenchmarkId::new("symptom", k), &k, |b, &k| {
            let tree = &ds.trees["symptom"];
            let maximal = GeneralizationSet::root_only(tree);
            b.iter(|| {
                mono::generate_minimal_nodes(
                    &ds.table,
                    "symptom",
                    tree,
                    &maximal,
                    k,
                    Default::default(),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_full_binning(c: &mut Criterion) {
    let ds = dataset();
    let maximal = root_metrics(&ds);
    let mut group = c.benchmark_group("full_binning");
    group.sample_size(10);
    for k in [5usize, 25, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let agent = BinningAgent::new(BinningConfig::with_k(k));
            b.iter(|| agent.bin(&ds.table, &ds.trees, &maximal).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mono_attribute, bench_full_binning);
criterion_main!(benches);

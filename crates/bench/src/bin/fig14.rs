//! Figure 14 — effect of watermarking on binning: per attribute and per k,
//! the total number of bins, the number of bins whose size changed, and the
//! number of bins whose size fell below k. Also prints the analytic Lemma 1/2
//! probabilities for reference.

#![forbid(unsafe_code)]

use medshield_bench::{experiment_dataset, print_figure_header, protect_per_attribute};
use medshield_core::{analytic_interference, measure_interference};

fn main() {
    let dataset = experiment_dataset();
    print_figure_header(
        "Figure 14",
        "effect of watermarking on binning (total bins / bins changed / bins below k)",
    );

    let ks = [10usize, 20, 45, 100];
    let columns = ["age", "zip_code", "doctor", "symptom", "prescription"];

    println!(
        "{:>5} | {:^20} | {:^20} | {:^20} | {:^20} | {:^20}",
        "k", columns[0], columns[1], columns[2], columns[3], columns[4]
    );
    for &k in &ks {
        let (_pipeline, release) = protect_per_attribute(&dataset, k, 100);
        let reports = measure_interference(&release.binning.table, &release.table, k)
            .expect("interference measurable");
        let by_name: std::collections::BTreeMap<_, _> = reports.into_iter().collect();
        let mut row = format!("{k:>5} |");
        for column in &columns {
            let r = &by_name[*column];
            row.push_str(&format!(" {:>6} {:>6} {:>6} |", r.total_bins, r.changed_bins, r.below_k));
        }
        println!("{row}");
    }
    println!();
    println!("cell format: total bins / bins with changed size / bins with size < k");
    println!("paper shape: many bins change size, essentially none drop below k.");

    // Analytic §6 probabilities (Lemmas 1 and 2) for the k = 10 run.
    let (_pipeline, release) = protect_per_attribute(&dataset, 10, 100);
    println!("\nLemma 1/2 (k=10): per column, probability that one bit-embedding shrinks");
    println!("(Pr-) or grows (Pr+) a particular bin — equal by the seamlessness argument:");
    for a in analytic_interference(&release.binning.columns, &dataset.trees) {
        println!(
            "  {:<13} maximal nodes {:>3}, ultimate nodes {:>3}, Pr- = Pr+ = {:.4}",
            a.column, a.maximal_nodes, a.ultimate_nodes, a.pr_minus
        );
    }
}

//! Bench-regression guard for CI: compare freshly generated `BENCH_*.json`
//! files against the baselines committed under `crates/bench/baselines/` and
//! fail when single-thread throughput drops by more than the tolerance.
//!
//! ```text
//! check-regression [FRESH.json ...]
//! ```
//!
//! With no arguments, every `BENCH_*.json` in the current directory that has
//! a committed baseline of the same file name is checked (at least one must
//! exist). The guard reads the 1-thread/1-worker entry — `rows_per_sec` for
//! the engine and binning benches, `requests_per_sec` for the serving-layer
//! bench — because the sharding speedup depends on the host's core count,
//! while single-thread throughput is the stable per-commit signal the
//! trajectory is tracked by. The serving-layer bench additionally guards
//! its durable-store axis (`durable_requests_per_sec`), the
//! 1024-connection point of its connections axis, and the 16-recipient
//! point of its recipients axis (`protect_for_per_sec` /
//! `resolve_leaker_per_sec`), so neither the fsync path, the multiplexed
//! I/O core, nor the traitor-tracing path can regress behind the in-memory
//! metric. Files that record a `layout` axis (the table layout the bench
//! ran against, `columnar` since the column-store refactor) must match
//! their baseline's layout, and a baseline layout can never silently
//! disappear from the fresh file. Every bench also records the host's
//! logical-CPU count (`host_parallelism`); a fresh file generated on a
//! host with a different core count than the baseline is refused outright —
//! the floors are calibrated per host and a cross-core comparison would
//! quietly turn the guard into noise.
//!
//! Environment:
//!
//! * `MEDSHIELD_BASELINE_DIR` — baseline directory (default
//!   `crates/bench/baselines`).
//! * `MEDSHIELD_REGRESSION_TOLERANCE` — allowed fractional drop (default
//!   `0.25`, i.e. fail below 75% of the baseline).

#![forbid(unsafe_code)]

use medshield_bench::benchjson;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn baseline_dir() -> PathBuf {
    std::env::var("MEDSHIELD_BASELINE_DIR")
        .unwrap_or_else(|_| "crates/bench/baselines".into())
        .into()
}

fn tolerance() -> f64 {
    std::env::var("MEDSHIELD_REGRESSION_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25)
}

/// Check one fresh bench file against its baseline; `Ok(line)` describes the
/// comparison, `Err(line)` a regression or an unreadable file.
fn check(fresh_path: &Path, baseline_path: &Path, tolerance: f64) -> Result<String, String> {
    let fresh = std::fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read fresh bench file {}: {e}", fresh_path.display()))?;
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let name = benchjson::benchmark_name(&fresh).unwrap_or("unknown-benchmark").to_string();
    // A throughput comparison is only meaningful over the same workload:
    // different rows/k/candidate counts shift rows_per_sec for workload
    // reasons and would silently mask (or fake) real regressions.
    for field in ["rows", "k", "candidates", "tables", "detect_rounds", "conn_requests"] {
        let (f, b) =
            (benchjson::top_metric(&fresh, field), benchjson::top_metric(&baseline, field));
        if let (Some(f), Some(b)) = (f, b) {
            if f != b {
                return Err(format!(
                    "{name}: workload mismatch — fresh {field}={f} vs baseline {field}={b}; \
                     regenerate the baseline with the same bench parameters"
                ));
            }
        }
    }
    // The host's core count is part of the calibration: thread scheduling,
    // group-commit batching and the readiness loop all price differently
    // across core counts, so the floors only mean something against a
    // baseline regenerated on the same class of host. A baseline that
    // records the count while the fresh file reports none means the bench
    // stopped recording it — the guard must never deactivate silently.
    match (
        benchjson::top_metric(&fresh, "host_parallelism"),
        benchjson::top_metric(&baseline, "host_parallelism"),
    ) {
        (Some(f), Some(b)) if f != b => {
            return Err(format!(
                "{name}: host core-count mismatch — fresh host_parallelism={f} vs baseline \
                 host_parallelism={b}; throughput floors are not comparable across core \
                 counts, regenerate the baseline on this host"
            ));
        }
        (None, Some(b)) => {
            return Err(format!(
                "{name}: the baseline records host_parallelism={b} but the fresh file \
                 reports none — the bench stopped recording the host core count"
            ));
        }
        _ => {}
    }
    // The table layout is part of the workload: columnar rows/s are only
    // comparable against a columnar baseline. A baseline that records a
    // layout the fresh file no longer reports means the layout axis stopped
    // reporting — the guard must never deactivate silently.
    match (benchjson::top_string(&fresh, "layout"), benchjson::top_string(&baseline, "layout")) {
        (Some(f), Some(b)) if f != b => {
            return Err(format!(
                "{name}: layout mismatch — fresh \"{f}\" vs baseline \"{b}\"; the throughput \
                 floors below are calibrated per layout, regenerate the baseline"
            ));
        }
        (None, Some(b)) => {
            return Err(format!(
                "{name}: the baseline records a \"{b}\" table layout but the fresh file \
                 reports none — the layout axis of the bench stopped reporting"
            ));
        }
        _ => {}
    }
    // Engine/binning benches report rows_per_sec; the serving-layer bench
    // reports requests_per_sec. Guard whichever the file carries.
    let (metric, unit) = ["rows_per_sec", "requests_per_sec"]
        .iter()
        .find(|m| benchjson::thread_metric(&fresh, 1, m).is_some())
        .map(|&m| (m, if m == "rows_per_sec" { "rows/s" } else { "req/s" }))
        .ok_or_else(|| {
            format!("{name}: fresh file has no 1-thread rows_per_sec or requests_per_sec entry")
        })?;
    let fresh_1t = benchjson::thread_metric(&fresh, 1, metric)
        .ok_or_else(|| format!("{name}: fresh file has no 1-thread {metric} entry"))?;
    let base_1t = benchjson::thread_metric(&baseline, 1, metric)
        .ok_or_else(|| format!("{name}: baseline has no 1-thread {metric} entry"))?;
    let floor = base_1t * (1.0 - tolerance);
    let ratio = fresh_1t / base_1t;
    let mut line = format!(
        "{name}: 1-thread {fresh_1t:.0} {unit} vs baseline {base_1t:.0} {unit} \
         ({:.0}% of baseline, floor {floor:.0})",
        ratio * 100.0
    );
    if fresh_1t < floor {
        return Err(format!("REGRESSION — {line}"));
    }
    // The serving-layer bench also carries a durable-store axis; hold the
    // fsync-batched path to the same trajectory so a persistence-layer
    // slowdown cannot hide behind the in-memory metric. A baseline that
    // carries the metric while the fresh file does not is itself a failure:
    // the guard must never deactivate silently.
    let durable = "durable_requests_per_sec";
    match (
        benchjson::thread_metric(&fresh, 1, durable),
        benchjson::thread_metric(&baseline, 1, durable),
    ) {
        (Some(fresh_d), Some(base_d)) => {
            let floor_d = base_d * (1.0 - tolerance);
            line.push_str(&format!(
                "; durable {fresh_d:.0} vs {base_d:.0} ({:.0}%, floor {floor_d:.0})",
                fresh_d / base_d * 100.0
            ));
            if fresh_d < floor_d {
                return Err(format!("REGRESSION (durable axis) — {line}"));
            }
        }
        (None, Some(_)) => {
            return Err(format!(
                "{name}: the baseline carries a 1-thread {durable} entry but the fresh \
                 file does not — the persistence axis of the bench stopped reporting"
            ));
        }
        _ => {}
    }
    // The serving-layer bench also carries a connections axis: the
    // 1024-connection throughput is the readiness loop's at-scale signal,
    // held to the same trajectory so a multiplexing slowdown cannot hide
    // behind the per-worker metrics. As with the durable axis, a baseline
    // that carries the entry while the fresh file does not is a failure.
    match (
        benchjson::axis_metric(&fresh, "connections", 1024, "requests_per_sec"),
        benchjson::axis_metric(&baseline, "connections", 1024, "requests_per_sec"),
    ) {
        (Some(fresh_c), Some(base_c)) => {
            let floor_c = base_c * (1.0 - tolerance);
            line.push_str(&format!(
                "; 1024-conn {fresh_c:.0} vs {base_c:.0} ({:.0}%, floor {floor_c:.0})",
                fresh_c / base_c * 100.0
            ));
            if fresh_c < floor_c {
                return Err(format!("REGRESSION (connections axis) — {line}"));
            }
        }
        (None, Some(_)) => {
            return Err(format!(
                "{name}: the baseline carries a 1024-connection requests_per_sec entry but \
                 the fresh file does not — the connections axis of the bench stopped reporting"
            ));
        }
        _ => {}
    }
    // The serving-layer bench also carries a recipients axis: protect-for
    // and resolve-leaker throughput at 16 registered recipients is the
    // traitor-tracing path's at-scale signal — fingerprint scoring grows
    // with the candidate set, and a slowdown there must not hide behind the
    // single-mark metrics. Same rule as above: a baseline that carries the
    // entries while the fresh file does not is itself a failure.
    for tracing_metric in ["protect_for_per_sec", "resolve_leaker_per_sec"] {
        match (
            benchjson::axis_metric(&fresh, "recipients", 16, tracing_metric),
            benchjson::axis_metric(&baseline, "recipients", 16, tracing_metric),
        ) {
            (Some(fresh_r), Some(base_r)) => {
                let floor_r = base_r * (1.0 - tolerance);
                line.push_str(&format!(
                    "; 16-recipient {tracing_metric} {fresh_r:.0} vs {base_r:.0} \
                     ({:.0}%, floor {floor_r:.0})",
                    fresh_r / base_r * 100.0
                ));
                if fresh_r < floor_r {
                    return Err(format!("REGRESSION (recipients axis) — {line}"));
                }
            }
            (None, Some(_)) => {
                return Err(format!(
                    "{name}: the baseline carries a 16-recipient {tracing_metric} entry but \
                     the fresh file does not — the recipients axis of the bench stopped \
                     reporting"
                ));
            }
            _ => {}
        }
    }
    Ok(line)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fresh_files: Vec<PathBuf> = if args.is_empty() {
        ["BENCH_binning.json", "BENCH_serve.json", "BENCH_throughput.json"]
            .iter()
            .map(PathBuf::from)
            .filter(|p| p.exists())
            .collect()
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    if fresh_files.is_empty() {
        eprintln!(
            "error: no fresh BENCH_*.json found — run `bench --bin binning` or \
             `bench --bin throughput` first, or pass the files explicitly"
        );
        return ExitCode::FAILURE;
    }

    let dir = baseline_dir();
    let tolerance = tolerance();
    let mut failed = false;
    for fresh in &fresh_files {
        let file_name = fresh.file_name().expect("bench paths name a file");
        let baseline = dir.join(file_name);
        match check(fresh, &baseline, tolerance) {
            Ok(line) => println!("ok: {line}"),
            Err(line) => {
                eprintln!("error: {line}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!(
            "throughput fell more than {:.0}% below the committed baseline; \
             refresh crates/bench/baselines/ if the drop is intended",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

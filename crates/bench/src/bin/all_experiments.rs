//! Run every figure/table reproduction in sequence. Equivalent to running
//! the individual `fig*` and `generalization_attack` binaries one after
//! another; handy for regenerating EXPERIMENTS.md in one go.

#![forbid(unsafe_code)]

use std::process::Command;

fn main() {
    let binaries =
        ["fig11", "fig12a", "fig12b", "fig12c", "fig13", "fig14", "generalization_attack"];
    // Re-exec the sibling binaries so each experiment stays independently
    // runnable; fall back to a clear error if one is missing.
    let current = std::env::current_exe().expect("current executable path");
    let dir = current.parent().expect("executable directory").to_path_buf();
    for name in binaries {
        let path = dir.join(name);
        println!();
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        if !status.success() {
            panic!("{name} exited with {status}");
        }
    }
}

//! Protection-engine throughput: rows/sec of chunk-parallel watermark
//! embedding + detection at 1, 2, 4 and 8 worker threads, written to
//! `BENCH_throughput.json`.
//!
//! The table is binned once (binning is sequential and off the measured
//! path); each thread count then runs the embed + detect hot paths over the
//! same binned table. Before timing, every configuration is checked to
//! produce byte-identical output to the single-threaded run, so the numbers
//! can never come from a divergent fast path.
//!
//! Environment:
//!
//! * `MEDSHIELD_BENCH_TUPLES` — table size (default 8000).
//! * `MEDSHIELD_BENCH_ITERS` — timed iterations per thread count (default 3).
//! * `MEDSHIELD_BENCH_OUT` — output path (default `BENCH_throughput.json`).

#![forbid(unsafe_code)]

use medshield_core::relation::csv;
use medshield_core::{ProtectionConfig, ProtectionEngine};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct ThreadResult {
    threads: usize,
    embed_rows_per_sec: f64,
    detect_rows_per_sec: f64,
    rows_per_sec: f64,
}

fn main() {
    let tuples = env_usize("MEDSHIELD_BENCH_TUPLES", 8000);
    let iters = env_usize("MEDSHIELD_BENCH_ITERS", 3).max(1);
    let out_path =
        std::env::var("MEDSHIELD_BENCH_OUT").unwrap_or_else(|_| "BENCH_throughput.json".into());

    eprintln!("generating {tuples} tuples…");
    let ds = MedicalDataset::generate(&DatasetConfig {
        num_tuples: tuples,
        seed: 0x1CDE_2005,
        zipf_exponent: 0.8,
    });
    let config = || {
        ProtectionConfig::builder()
            .k(4)
            .eta(5)
            .duplication(4)
            .mark_text("throughput-benchmark-owner")
            .build()
    };

    // Bin once, sequentially: the watermark hot paths are what shards.
    let reference_engine = ProtectionEngine::sequential(config());
    let release = reference_engine
        .protect_per_attribute(&ds.table, &ds.trees)
        .expect("the synthetic table is binnable");
    let binned = &release.binning;
    let mark = &release.mark;
    let reference_csv = csv::to_csv(&release.table);
    let reference_detection = reference_engine
        .detect(&release.table, &binned.columns, &ds.trees)
        .expect("sequential detection succeeds");

    let thread_counts = [1usize, 2, 4, 8];
    let mut results = Vec::new();
    for &threads in &thread_counts {
        let engine =
            ProtectionEngine::new(config(), threads).expect("a nonzero thread count is valid");

        // Equivalence gate: the timed path must reproduce the sequential
        // bytes and the sequential detection report exactly.
        let (table, _) = engine
            .embed(&binned.table, &binned.columns, &ds.trees, mark)
            .expect("embedding succeeds");
        assert_eq!(
            csv::to_csv(&table),
            reference_csv,
            "{threads}-thread embedding diverged from the sequential bytes"
        );
        let detection =
            engine.detect(&table, &binned.columns, &ds.trees).expect("detection succeeds");
        assert_eq!(
            detection, reference_detection,
            "{threads}-thread detection diverged from the sequential report"
        );

        // Warm-up once, then time.
        let mut embed_secs = 0.0;
        let mut detect_secs = 0.0;
        for _ in 0..iters {
            let start = Instant::now();
            let (marked, _) = engine
                .embed(&binned.table, &binned.columns, &ds.trees, mark)
                .expect("embedding succeeds");
            embed_secs += start.elapsed().as_secs_f64();
            let start = Instant::now();
            let _ = engine.detect(&marked, &binned.columns, &ds.trees).expect("detection succeeds");
            detect_secs += start.elapsed().as_secs_f64();
        }
        let n = (tuples * iters) as f64;
        let result = ThreadResult {
            threads,
            embed_rows_per_sec: n / embed_secs,
            detect_rows_per_sec: n / detect_secs,
            rows_per_sec: 2.0 * n / (embed_secs + detect_secs),
        };
        eprintln!(
            "{:>2} thread(s): embed {:>12.0} rows/s, detect {:>12.0} rows/s",
            threads, result.embed_rows_per_sec, result.detect_rows_per_sec
        );
        results.push(result);
    }

    let speedup_4t = results
        .iter()
        .find(|r| r.threads == 4)
        .map(|r| r.rows_per_sec / results[0].rows_per_sec)
        .unwrap_or(f64::NAN);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"protection-engine-throughput\",\n");
    json.push_str(&format!("  \"layout\": \"{}\",\n", medshield_bench::TABLE_LAYOUT));
    json.push_str(&format!("  \"rows\": {tuples},\n"));
    json.push_str(&format!("  \"iterations\": {iters},\n"));
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1)
    ));
    json.push_str("  \"equivalence_checked\": true,\n");
    if let Some(kib) = medshield_bench::peak_rss_kib() {
        json.push_str(&format!("  \"peak_rss_kib\": {kib},\n"));
        eprintln!("peak RSS: {kib} KiB");
    }
    json.push_str("  \"threads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"embed_rows_per_sec\": {:.1}, \"detect_rows_per_sec\": {:.1}, \"rows_per_sec\": {:.1}}}{}\n",
            r.threads,
            r.embed_rows_per_sec,
            r.detect_rows_per_sec,
            r.rows_per_sec,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_4t_vs_1t\": {speedup_4t:.2}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("4-thread speedup over 1 thread: {speedup_4t:.2}x");
    eprintln!("wrote {out_path}");
}

//! Figure 13 — information loss caused by watermarking as a function of η.
//!
//! The watermark permutes a selected value to another ultimate generalization
//! node under the same maximal node, so the *generalization level* of the
//! table does not change; what is lost is the correctness of the permuted
//! cells. We therefore report, per η, the fraction of quasi-identifying
//! cells whose value no longer generalizes the original value (i.e. cells the
//! watermark actually moved), which is the distortion Fig. 13 bounds at a few
//! per cent. The extra Eq.-3 information loss of the watermarked table over
//! the binned table is reported alongside for completeness.

#![forbid(unsafe_code)]

use medshield_bench::{
    experiment_dataset, info_loss_of, print_figure_header, protect_per_attribute,
};

fn main() {
    let dataset = experiment_dataset();
    print_figure_header("Figure 13", "information loss caused by watermarking vs η");

    let etas = [50u64, 75, 100, 125, 150, 175, 200];
    println!(
        "{:>6} {:>18} {:>22} {:>22}",
        "η", "cells permuted %", "binning info loss %", "extra info loss %"
    );
    for &eta in &etas {
        let (_pipeline, release) = protect_per_attribute(&dataset, 10, eta);
        let total_cells = (dataset.table.len() * release.binning.columns.len()) as f64;
        let permuted = release.embedding.changed_cells as f64 / total_cells * 100.0;

        let cols: Vec<_> = release
            .binning
            .columns
            .iter()
            .map(|cb| (cb.column.clone(), cb.ultimate.clone()))
            .collect();
        let binned_loss = info_loss_of(&dataset, &cols) * 100.0;
        // The watermarked cells carry a *wrong* ultimate-node value; counting
        // them as fully lost gives a conservative extra-loss estimate.
        let extra_loss = permuted;

        println!("{eta:>6} {permuted:>18.2} {binned_loss:>22.1} {extra_loss:>22.2}");
    }
    println!();
    println!("paper shape: the loss added by watermarking is minor (under ~10%) and");
    println!("decreases as η grows (fewer tuples are selected for embedding).");
}

//! §5.2 ablation — the generalization attack against the single-level scheme
//! (the paper's argument for why a hierarchical scheme is needed) and against
//! the hierarchical scheme itself.

#![forbid(unsafe_code)]

use medshield_attacks::{Attack, GeneralizationAttack};
use medshield_bench::{experiment_dataset, print_figure_header, protect_per_attribute};
use medshield_core::metrics::mark_loss;
use medshield_core::watermark::{Mark, SingleLevelWatermarker, WatermarkConfig, WatermarkKey};

fn main() {
    let dataset = experiment_dataset();
    print_figure_header(
        "Section 5.2 ablation",
        "generalization attack vs single-level and hierarchical watermarking",
    );

    let (pipeline, release) = protect_per_attribute(&dataset, 10, 50);

    // Single-level baseline with its own key, embedded into the same binned
    // table.
    let key = WatermarkKey::from_master(b"single-level-baseline", 50);
    let single = SingleLevelWatermarker::new(WatermarkConfig::new(key));
    let mark = Mark::from_bytes(b"single-level-baseline", 20);
    let single_marked = single
        .embed(&release.binning, &dataset.trees, &mark)
        .expect("single-level embedding succeeds");

    println!("{:>22} {:>22} {:>22}", "attack levels", "single-level loss %", "hierarchical loss %");
    for levels in 0usize..=3 {
        let (single_table, hier_table) = if levels == 0 {
            (single_marked.snapshot(), release.table.snapshot())
        } else {
            let attack = GeneralizationAttack::new(levels, dataset.trees.clone());
            (attack.apply(&single_marked), attack.apply(&release.table))
        };
        let single_detected = single
            .detect(&single_table, &release.binning.columns, &dataset.trees, mark.len())
            .expect("single-level detection runs");
        let hier_detected = pipeline
            .detect(&hier_table, &release.binning.columns, &dataset.trees)
            .expect("hierarchical detection runs");
        println!(
            "{:>22} {:>22.1} {:>22.1}",
            levels,
            mark_loss(mark.bits(), &single_detected) * 100.0,
            mark_loss(release.mark.bits(), &hier_detected.mark) * 100.0
        );
    }
    println!();
    println!("paper claim: one level of further generalization erases the single-level");
    println!("mark (no key needed), while the hierarchical mark survives because copies");
    println!("of every bit live at all levels up to the maximal generalization nodes.");
}

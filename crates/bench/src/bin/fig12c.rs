//! Figure 12(c) — robustness to Subset Deletion: percentage of deleted tuples
//! vs mark loss, for η ∈ {50, 75, 100}. Deletions are issued as SQL range
//! deletes over the (encrypted) identifier, like the paper's
//! `DELETE FROM R WHERE SSN > lval AND SSN < uval`.

#![forbid(unsafe_code)]

use medshield_attacks::{Attack, SubsetDeletion};
use medshield_bench::{experiment_dataset, print_figure_header, protect_per_attribute};
use medshield_core::metrics::mark_loss;

fn main() {
    let dataset = experiment_dataset();
    print_figure_header(
        "Figure 12(c)",
        "robustness of hierarchical watermarking to Subset Deletion",
    );

    let etas = [50u64, 75, 100];
    let fractions = [0.0f64, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.98];

    println!("{:>16} {:>8} {:>8} {:>8}", "data deletion %", "η=50", "η=75", "η=100");
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); fractions.len()];
    for &eta in &etas {
        let (pipeline, release) = protect_per_attribute(&dataset, 10, eta);
        for (fi, &fraction) in fractions.iter().enumerate() {
            let attacked =
                SubsetDeletion::ranges(fraction, 777 + fi as u64, "ssn").apply(&release.table);
            let detection = pipeline
                .detect(&attacked, &release.binning.columns, &dataset.trees)
                .expect("detection runs on attacked data");
            rows[fi].push(mark_loss(release.mark.bits(), &detection.mark) * 100.0);
        }
    }
    for (fi, &fraction) in fractions.iter().enumerate() {
        println!(
            "{:>16.0} {:>8.1} {:>8.1} {:>8.1}",
            fraction * 100.0,
            rows[fi][0],
            rows[fi][1],
            rows[fi][2]
        );
    }
    println!();
    println!("paper shape: mark loss increases roughly linearly with the amount of deleted");
    println!("data, and smaller η (more redundancy) is more resilient.");
}

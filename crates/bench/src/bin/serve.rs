//! Serving-layer throughput: requests/sec through the loopback TCP stack at
//! 1, 2, 4 and 8 pool workers, written to `BENCH_serve.json`.
//!
//! The workload is the paper's deployment model in miniature: many small
//! hospital submissions (`protect`) followed by detection traffic
//! (`detect`) against the stored releases. Before any timing, **every**
//! served protect response is checked byte-for-byte against the in-process
//! `ProtectionEngine` on the same table, and every served detect report
//! against the in-process detection — the numbers can never come from a
//! divergent fast path.
//!
//! Each worker count is measured on **two persistence axes**: the in-memory
//! release store (`requests_per_sec`, the committed trajectory metric) and
//! the durable WAL-backed store (`durable_requests_per_sec`), which prices
//! the fsync-per-protect barrier and its cross-worker group commit. The
//! durable axis carries its own gate: the server is shut down and reopened
//! on the same data directory before timing, and the recovered store must
//! answer a detect byte-identically to the pre-restart reply.
//!
//! After the worker axis, a **connections axis** prices the readiness loop
//! at scale: one fixed-pool server answers the same fixed number of
//! pipelined `detect` requests driven through 1, 64 and 1024 concurrent
//! connections. The promise of the multiplexed I/O core is *flatness* —
//! 1024 mostly-idle connections must not tax the 64-connection figure —
//! reported as `flatness_1024_vs_64` and guarded by `check-regression`.
//!
//! After the connections axis, a **recipients axis** prices the
//! traitor-tracing path: one release with 1, 4 and 16 registered
//! recipients, measuring `protect-for` (fingerprinted copy issuance) and
//! `resolve-leaker` (ranking every recipient against a leaked copy)
//! throughput at each count. Before any timing, a leaked copy must resolve
//! to its true recipient — the numbers can never come from a tracer that
//! stopped tracing. The 16-recipient point is guarded by
//! `check-regression`.
//!
//! Environment:
//!
//! * `MEDSHIELD_SERVE_TABLES` — number of submitted tables (default 12,
//!   matching the committed baseline so the local `check-regression` flow
//!   works without env vars).
//! * `MEDSHIELD_SERVE_ROWS` — rows per table (default 120, same reason).
//! * `MEDSHIELD_SERVE_DETECT_ROUNDS` — detect requests per release in the
//!   timed phase (default 2).
//! * `MEDSHIELD_SERVE_CONN_REQUESTS` — total detect requests per point of
//!   the connections axis (default 4096: enough steady state that the
//!   one-time cost of reading the initial burst amortizes away).
//! * `MEDSHIELD_SERVE_RECIPIENT_REQUESTS` — timed requests per command per
//!   point of the recipients axis (default 48).
//! * `MEDSHIELD_BENCH_OUT` — output path (default `BENCH_serve.json`).

#![forbid(unsafe_code)]

use medshield_core::{ProtectionConfig, ProtectionEngine};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use medshield_relation::csv;
use medshield_serve::{serve, Client, Command, PipelinedClient, Request, ServeConfig};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// One timed client request.
type BenchJob = Box<dyn FnOnce(&mut Client) + Send>;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn engine_config() -> ProtectionConfig {
    ProtectionConfig::builder()
        .k(4)
        .eta(5)
        .duplication(2)
        .mark_text("serve-benchmark-owner")
        .build()
}

/// Per-connection pipeline depth in the connections axis: enough to keep
/// the worker pool busy from a single connection, small enough that 1024
/// connections cannot flood the request queue.
const CONN_PIPELINE_DEPTH: usize = 4;

/// Driver threads for the connections axis; each owns a fleet of pipelined
/// connections and round-robins submissions and reply polling across them.
const CONN_DRIVER_THREADS: usize = 16;

struct ConnResult {
    connections: usize,
    requests_per_sec: f64,
}

struct RecipientResult {
    recipients: usize,
    protect_for_per_sec: f64,
    resolve_leaker_per_sec: f64,
}

struct WorkerResult {
    workers: usize,
    protect_requests_per_sec: f64,
    detect_requests_per_sec: f64,
    requests_per_sec: f64,
    durable_protect_requests_per_sec: f64,
    durable_detect_requests_per_sec: f64,
    durable_requests_per_sec: f64,
}

/// Fan `jobs` out over `clients` connections, one thread per connection.
/// Returns the wall-clock seconds for the whole fan-out.
fn run_phase(addr: std::net::SocketAddr, clients: usize, jobs: Vec<BenchJob>) -> f64 {
    let mut shards: Vec<Vec<BenchJob>> = (0..clients).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        shards[i % clients].push(job);
    }
    let start = Instant::now();
    std::thread::scope(|scope| {
        for shard in shards {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect to the bench server");
                for job in shard {
                    job(&mut client);
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

/// One point of the connections axis: drive `total` detect requests against
/// the gated releases through `connections` pipelined v2 connections, at
/// most [`CONN_PIPELINE_DEPTH`] in flight per connection. Every reply is
/// checked against the in-process mark for its own release — a reply routed
/// to the wrong request id cannot go unnoticed. Before the clock starts,
/// every socket is connected AND answered a warm-up ping (so the I/O core
/// has registered all of them): the axis measures steady-state
/// multiplexing, not the connect storm. Returns the wall-clock seconds of
/// the drive.
fn run_connections_phase(
    addr: std::net::SocketAddr,
    connections: usize,
    total: usize,
    release_ids: &[String],
    expectations: &[(String, String)],
) -> f64 {
    // Job i targets release i % tables; jobs round-robin over connections.
    // With fewer jobs than connections the surplus sockets stay connected
    // but idle — exactly the load shape the readiness loop must not tax.
    let mut shards: Vec<VecDeque<usize>> = (0..connections).map(|_| VecDeque::new()).collect();
    for i in 0..total {
        shards[i % connections].push_back(i % release_ids.len());
    }
    let drivers = connections.min(CONN_DRIVER_THREADS);
    let mut fleet_shards: Vec<Vec<VecDeque<usize>>> = (0..drivers).map(|_| Vec::new()).collect();
    for (i, jobs) in shards.into_iter().enumerate() {
        fleet_shards[i % drivers].push(jobs);
    }
    // Drivers connect and warm up their fleets, then meet the timing thread
    // at the barrier; only the drive itself is on the clock.
    let barrier = std::sync::Barrier::new(drivers + 1);
    let mut start = Instant::now();
    std::thread::scope(|scope| {
        for jobs_list in fleet_shards {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut fleet: Vec<(PipelinedClient, VecDeque<usize>)> = jobs_list
                    .into_iter()
                    .map(|jobs| {
                        (PipelinedClient::connect(addr).expect("connect a pipelined client"), jobs)
                    })
                    .collect();
                let warm_ups: Vec<u64> = fleet
                    .iter_mut()
                    .map(|(client, _)| {
                        client.submit(&Request::new(Command::Ping)).expect("submit a warm-up ping")
                    })
                    .collect();
                for ((client, _), id) in fleet.iter_mut().zip(warm_ups) {
                    let pong = client.wait(id).expect("warm-up pong");
                    assert!(pong.is_ok(), "warm-up ping failed: {}", pong.json);
                }
                barrier.wait();
                // Round-robin the fleet: keep every connection filled to
                // depth, claim exactly one reply per visit with a BLOCKING
                // wait. Blocking (rather than timeout-polling) costs the
                // driver no CPU while replies are in the server — the drive
                // measures the I/O core, not driver scheduling.
                let mut in_flight: Vec<BTreeMap<u64, usize>> =
                    (0..fleet.len()).map(|_| BTreeMap::new()).collect();
                let mut outstanding = 0usize;
                let mut remaining: usize = fleet.iter().map(|(_, jobs)| jobs.len()).sum();
                while outstanding > 0 || remaining > 0 {
                    for (slot, (client, jobs)) in fleet.iter_mut().enumerate() {
                        while in_flight[slot].len() < CONN_PIPELINE_DEPTH {
                            let Some(job) = jobs.pop_front() else { break };
                            let id = client
                                .submit(
                                    &Request::new(Command::Detect)
                                        .param("release", &release_ids[job])
                                        .body(&expectations[job].0),
                                )
                                .expect("submit a pipelined detect");
                            in_flight[slot].insert(id, job);
                            outstanding += 1;
                            remaining -= 1;
                        }
                        let Some((&id, &job)) = in_flight[slot].first_key_value() else {
                            continue;
                        };
                        // `wait` parks replies for this connection's other
                        // ids; later visits claim them without touching the
                        // wire.
                        let reply = client.wait(id).expect("pipelined detect reply");
                        in_flight[slot].remove(&id);
                        assert!(reply.is_ok(), "connections-axis detect failed: {}", reply.json);
                        assert_eq!(
                            reply.str_field("mark").as_deref(),
                            Some(expectations[job].1.as_str()),
                            "connections-axis reply for id {id} diverged from the \
                             in-process mark of its own release"
                        );
                        outstanding -= 1;
                    }
                }
            });
        }
        barrier.wait();
        start = Instant::now();
    });
    start.elapsed().as_secs_f64()
}

fn main() {
    let tables = env_usize("MEDSHIELD_SERVE_TABLES", 12).max(1);
    let rows = env_usize("MEDSHIELD_SERVE_ROWS", 120).max(1);
    let detect_rounds = env_usize("MEDSHIELD_SERVE_DETECT_ROUNDS", 2).max(1);
    let conn_requests = env_usize("MEDSHIELD_SERVE_CONN_REQUESTS", 4096).max(1);
    let recipient_requests = env_usize("MEDSHIELD_SERVE_RECIPIENT_REQUESTS", 48).max(1);
    let out_path =
        std::env::var("MEDSHIELD_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());

    eprintln!("generating {tables} tables of {rows} rows…");
    let datasets: Vec<MedicalDataset> = (0..tables)
        .map(|i| {
            MedicalDataset::generate(&DatasetConfig {
                num_tuples: rows,
                seed: 0x5E12_7E00 + i as u64,
                zipf_exponent: 0.8,
            })
        })
        .collect();
    let submissions: Vec<String> = datasets.iter().map(|ds| csv::to_csv(&ds.table)).collect();

    // In-process expectations: the byte-equivalence gate compares every
    // served response against these.
    let engine = ProtectionEngine::new(engine_config(), 1).expect("1 thread is valid");
    eprintln!("computing in-process reference releases…");
    let expectations: Vec<(String, String)> = datasets
        .iter()
        .map(|ds| {
            let release =
                engine.protect_per_attribute(&ds.table, &ds.trees).expect("binnable table");
            let detection = engine
                .detect(&release.table, &release.binning.columns, &ds.trees)
                .expect("detection succeeds");
            (
                csv::to_csv(&release.table),
                medshield_core::watermark::Mark::from_bits(detection.mark).to_string(),
            )
        })
        .collect();

    // Untimed equivalence gate: every served release must be the in-process
    // bytes and every detection the in-process mark. Returns the release
    // ids the gate stored.
    let gate_equivalence = |addr: std::net::SocketAddr, workers: usize, axis: &str| {
        let mut gate = Client::connect(addr).expect("connect");
        let mut release_ids = Vec::with_capacity(tables);
        for (submission, (expected_csv, expected_mark)) in
            submissions.iter().zip(expectations.iter())
        {
            let reply = gate.protect(submission).expect("protect reply");
            assert!(reply.is_ok(), "served protect failed: {}", reply.json);
            assert_eq!(
                reply.body.as_deref(),
                Some(expected_csv.as_str()),
                "{workers}-worker {axis} served release diverged from the in-process bytes"
            );
            let release_id = reply.release_id().expect("release id");
            let detect = gate.detect(&release_id, expected_csv).expect("detect reply");
            assert!(detect.is_ok(), "served detect failed: {}", detect.json);
            assert_eq!(
                detect.str_field("mark").as_deref(),
                Some(expected_mark.as_str()),
                "{workers}-worker {axis} served detection diverged from the in-process mark"
            );
            release_ids.push(release_id);
        }
        release_ids
    };

    // Timed phases shared by both persistence axes: protect traffic, then
    // detect traffic against the gated releases. Returns
    // (protect_secs, detect_secs, detect_count).
    let timed_phases = |addr: std::net::SocketAddr, clients: usize, release_ids: &[String]| {
        let protect_jobs: Vec<BenchJob> = submissions
            .iter()
            .map(|submission| {
                let submission = submission.clone();
                Box::new(move |client: &mut Client| {
                    let reply = client.protect(&submission).expect("protect reply");
                    assert!(reply.is_ok(), "timed protect failed: {}", reply.json);
                }) as BenchJob
            })
            .collect();
        let protect_secs = run_phase(addr, clients, protect_jobs);

        let detect_jobs: Vec<BenchJob> = (0..detect_rounds)
            .flat_map(|_| {
                release_ids.iter().zip(expectations.iter()).map(|(id, (expected_csv, _))| {
                    let id = id.clone();
                    let suspect = expected_csv.clone();
                    Box::new(move |client: &mut Client| {
                        let reply = client.detect(&id, &suspect).expect("detect reply");
                        assert!(reply.is_ok(), "timed detect failed: {}", reply.json);
                    }) as BenchJob
                })
            })
            .collect();
        let detect_count = detect_jobs.len();
        let detect_secs = run_phase(addr, clients, detect_jobs);
        (protect_secs, detect_secs, detect_count)
    };

    let worker_counts = [1usize, 2, 4, 8];
    let mut results = Vec::new();
    for &workers in &worker_counts {
        let clients = workers.max(1);

        // Axis 1: the in-memory store (the committed trajectory metric).
        let config = ServeConfig { engine: engine_config(), workers, ..ServeConfig::default() };
        let handle = serve(config, "127.0.0.1:0").expect("bind the bench server");
        let addr = handle.addr();
        // The releases the timed protects store land alongside the gate's,
        // which is fine — ids are never reused.
        let release_ids = gate_equivalence(addr, workers, "in-memory");
        let (protect_secs, detect_secs, detect_count) = timed_phases(addr, clients, &release_ids);
        handle.shutdown();

        // Axis 2: the durable WAL-backed store, on a fresh data directory.
        let data_dir = std::env::temp_dir()
            .join(format!("medshield-bench-serve-{}-{workers}w", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let durable_config = || ServeConfig {
            engine: engine_config(),
            workers,
            data_dir: Some(data_dir.clone()),
            ..ServeConfig::default()
        };
        let handle = serve(durable_config(), "127.0.0.1:0").expect("bind the durable server");
        let addr = handle.addr();
        let release_ids = gate_equivalence(addr, workers, "durable");
        // Recovery gate: reopen the same data directory and require a
        // byte-identical detect reply from the recovered store before any
        // durable timing is trusted.
        let mut gate = Client::connect(addr).expect("connect");
        let before = gate.detect(&release_ids[0], &expectations[0].0).expect("pre-restart detect");
        assert!(before.is_ok(), "pre-restart detect failed: {}", before.json);
        drop(gate);
        handle.shutdown();
        let handle = serve(durable_config(), "127.0.0.1:0").expect("reopen the durable server");
        let addr = handle.addr();
        let mut gate = Client::connect(addr).expect("reconnect");
        let after = gate.detect(&release_ids[0], &expectations[0].0).expect("post-restart detect");
        assert_eq!(after, before, "{workers}-worker durable detect diverged across the restart");
        drop(gate);
        let (durable_protect_secs, durable_detect_secs, durable_detect_count) =
            timed_phases(addr, clients, &release_ids);
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&data_dir);

        let result = WorkerResult {
            workers,
            protect_requests_per_sec: tables as f64 / protect_secs,
            detect_requests_per_sec: detect_count as f64 / detect_secs,
            requests_per_sec: (tables + detect_count) as f64 / (protect_secs + detect_secs),
            durable_protect_requests_per_sec: tables as f64 / durable_protect_secs,
            durable_detect_requests_per_sec: durable_detect_count as f64 / durable_detect_secs,
            durable_requests_per_sec: (tables + durable_detect_count) as f64
                / (durable_protect_secs + durable_detect_secs),
        };
        eprintln!(
            "{:>2} worker(s): protect {:>8.1} req/s, detect {:>8.1} req/s \
             (durable: {:>8.1} / {:>8.1})",
            workers,
            result.protect_requests_per_sec,
            result.detect_requests_per_sec,
            result.durable_protect_requests_per_sec,
            result.durable_detect_requests_per_sec,
        );
        results.push(result);
    }

    // Connections axis: one fixed-pool server, the same request total driven
    // through 1, 64 and 1024 pipelined connections. The queue is deepened and
    // the connection limit raised so the axis measures the I/O core, not the
    // backpressure replies.
    let conn_counts = [1usize, 64, 1024];
    let conn_workers = 4usize;
    let config = ServeConfig {
        engine: engine_config(),
        workers: conn_workers,
        queue_depth: 8192,
        max_connections: 2048,
        ..ServeConfig::default()
    };
    let handle = serve(config, "127.0.0.1:0").expect("bind the connections-axis server");
    let addr = handle.addr();
    let release_ids = gate_equivalence(addr, conn_workers, "connections-axis");
    let mut conn_results = Vec::new();
    for &connections in &conn_counts {
        let secs =
            run_connections_phase(addr, connections, conn_requests, &release_ids, &expectations);
        let requests_per_sec = conn_requests as f64 / secs;
        eprintln!("{connections:>4} connection(s): {requests_per_sec:>8.1} detect req/s");
        conn_results.push(ConnResult { connections, requests_per_sec });
    }
    handle.shutdown();
    let conn_metric = |count: usize| {
        conn_results
            .iter()
            .find(|r| r.connections == count)
            .map(|r| r.requests_per_sec)
            .unwrap_or(f64::NAN)
    };
    let flatness_1024_vs_64 = conn_metric(1024) / conn_metric(64);

    // Recipients axis: the traitor-tracing path at 1, 4 and 16 registered
    // recipients of one release. protect-for prices fingerprinted copy
    // issuance (roughly flat in the recipient count: one derivation + one
    // embed per request), resolve-leaker prices the full trace (one detect
    // plus a fingerprint scoring per registered recipient, so the candidate
    // set is the load knob). Each point gates on correctness before the
    // clock starts: a leaked copy must resolve to its true recipient.
    let recipient_counts = [1usize, 4, 16];
    let recipient_workers = 4usize;
    let mut recipient_results = Vec::new();
    for &recipients in &recipient_counts {
        let config = ServeConfig {
            engine: engine_config(),
            workers: recipient_workers,
            ..ServeConfig::default()
        };
        let handle = serve(config, "127.0.0.1:0").expect("bind the recipients-axis server");
        let addr = handle.addr();
        let mut setup = Client::connect(addr).expect("connect");
        let reply = setup.protect(&submissions[0]).expect("protect reply");
        assert!(reply.is_ok(), "recipients-axis protect failed: {}", reply.json);
        let release_id = reply.release_id().expect("release id");
        let released_csv = reply.body.clone().expect("release body");
        // Register the N recipients (untimed) and keep each copy's bytes —
        // re-issuing a registered recipient's copy is idempotent, so the
        // timed protect-for phase below holds the recipient set at exactly N.
        let names: Vec<String> = (0..recipients).map(|i| format!("clinic-{i:02}")).collect();
        let mut copies = Vec::with_capacity(recipients);
        for name in &names {
            let issued = setup
                .protect_for_release(&release_id, name, &released_csv)
                .expect("protect-for reply");
            assert!(issued.is_ok(), "recipients-axis protect-for failed: {}", issued.json);
            copies.push(issued.body.clone().expect("copy body"));
        }
        // Correctness gate: a leaked copy traces to its true recipient.
        let leaked_index = recipients / 2;
        let verdict =
            setup.resolve_leaker(&release_id, &copies[leaked_index]).expect("resolve-leaker reply");
        assert!(verdict.is_ok(), "recipients-axis resolve-leaker failed: {}", verdict.json);
        assert_eq!(
            verdict.str_field("leaker").as_deref(),
            Some(names[leaked_index].as_str()),
            "{recipients}-recipient axis traced the wrong leaker"
        );
        drop(setup);

        let protect_for_jobs: Vec<BenchJob> = (0..recipient_requests)
            .map(|i| {
                let release_id = release_id.clone();
                let name = names[i % names.len()].clone();
                let released = released_csv.clone();
                Box::new(move |client: &mut Client| {
                    let reply = client
                        .protect_for_release(&release_id, &name, &released)
                        .expect("timed protect-for reply");
                    assert!(reply.is_ok(), "timed protect-for failed: {}", reply.json);
                }) as BenchJob
            })
            .collect();
        let protect_for_secs = run_phase(addr, recipient_workers, protect_for_jobs);

        let resolve_jobs: Vec<BenchJob> = (0..recipient_requests)
            .map(|i| {
                let release_id = release_id.clone();
                let leaked = copies[i % copies.len()].clone();
                let expected = names[i % names.len()].clone();
                Box::new(move |client: &mut Client| {
                    let reply = client
                        .resolve_leaker(&release_id, &leaked)
                        .expect("timed resolve-leaker reply");
                    assert!(reply.is_ok(), "timed resolve-leaker failed: {}", reply.json);
                    assert_eq!(
                        reply.str_field("leaker").as_deref(),
                        Some(expected.as_str()),
                        "timed resolve-leaker traced the wrong recipient"
                    );
                }) as BenchJob
            })
            .collect();
        let resolve_secs = run_phase(addr, recipient_workers, resolve_jobs);
        handle.shutdown();

        let result = RecipientResult {
            recipients,
            protect_for_per_sec: recipient_requests as f64 / protect_for_secs,
            resolve_leaker_per_sec: recipient_requests as f64 / resolve_secs,
        };
        eprintln!(
            "{:>2} recipient(s): protect-for {:>8.1} req/s, resolve-leaker {:>8.1} req/s",
            recipients, result.protect_for_per_sec, result.resolve_leaker_per_sec,
        );
        recipient_results.push(result);
    }

    let speedup_4w = results
        .iter()
        .find(|r| r.workers == 4)
        .map(|r| r.requests_per_sec / results[0].requests_per_sec)
        .unwrap_or(f64::NAN);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"serve-throughput\",\n");
    json.push_str(&format!("  \"tables\": {tables},\n"));
    json.push_str(&format!("  \"rows\": {rows},\n"));
    json.push_str(&format!("  \"detect_rounds\": {detect_rounds},\n"));
    json.push_str(&format!("  \"conn_requests\": {conn_requests},\n"));
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1)
    ));
    json.push_str("  \"equivalence_checked\": true,\n");
    json.push_str("  \"persistence_axis\": true,\n");
    json.push_str("  \"threads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"requests_per_sec\": {:.1}, \"protect_requests_per_sec\": {:.1}, \"detect_requests_per_sec\": {:.1}, \"durable_requests_per_sec\": {:.1}, \"durable_protect_requests_per_sec\": {:.1}, \"durable_detect_requests_per_sec\": {:.1}}}{}\n",
            r.workers,
            r.requests_per_sec,
            r.protect_requests_per_sec,
            r.detect_requests_per_sec,
            r.durable_requests_per_sec,
            r.durable_protect_requests_per_sec,
            r.durable_detect_requests_per_sec,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"connections\": [\n");
    for (i, r) in conn_results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"connections\": {}, \"requests_per_sec\": {:.1}}}{}\n",
            r.connections,
            r.requests_per_sec,
            if i + 1 == conn_results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"recipients\": [\n");
    for (i, r) in recipient_results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"recipients\": {}, \"protect_for_per_sec\": {:.1}, \"resolve_leaker_per_sec\": {:.1}}}{}\n",
            r.recipients,
            r.protect_for_per_sec,
            r.resolve_leaker_per_sec,
            if i + 1 == recipient_results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"flatness_1024_vs_64\": {flatness_1024_vs_64:.3},\n"));
    json.push_str(&format!("  \"speedup_4w_vs_1w\": {speedup_4w:.2}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("4-worker speedup over 1 worker: {speedup_4w:.2}x");
    eprintln!("1024-connection flatness vs 64 connections: {flatness_1024_vs_64:.3}");
    eprintln!("wrote {out_path}");
}

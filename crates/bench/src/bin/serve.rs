//! Serving-layer throughput: requests/sec through the loopback TCP stack at
//! 1, 2, 4 and 8 pool workers, written to `BENCH_serve.json`.
//!
//! The workload is the paper's deployment model in miniature: many small
//! hospital submissions (`protect`) followed by detection traffic
//! (`detect`) against the stored releases. Before any timing, **every**
//! served protect response is checked byte-for-byte against the in-process
//! `ProtectionEngine` on the same table, and every served detect report
//! against the in-process detection — the numbers can never come from a
//! divergent fast path.
//!
//! Each worker count is measured on **two persistence axes**: the in-memory
//! release store (`requests_per_sec`, the committed trajectory metric) and
//! the durable WAL-backed store (`durable_requests_per_sec`), which prices
//! the fsync-per-protect barrier and its cross-worker group commit. The
//! durable axis carries its own gate: the server is shut down and reopened
//! on the same data directory before timing, and the recovered store must
//! answer a detect byte-identically to the pre-restart reply.
//!
//! Environment:
//!
//! * `MEDSHIELD_SERVE_TABLES` — number of submitted tables (default 12,
//!   matching the committed baseline so the local `check-regression` flow
//!   works without env vars).
//! * `MEDSHIELD_SERVE_ROWS` — rows per table (default 120, same reason).
//! * `MEDSHIELD_SERVE_DETECT_ROUNDS` — detect requests per release in the
//!   timed phase (default 2).
//! * `MEDSHIELD_BENCH_OUT` — output path (default `BENCH_serve.json`).

#![forbid(unsafe_code)]

use medshield_core::{ProtectionConfig, ProtectionEngine};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use medshield_relation::csv;
use medshield_serve::{serve, Client, ServeConfig};
use std::time::Instant;

/// One timed client request.
type BenchJob = Box<dyn FnOnce(&mut Client) + Send>;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn engine_config() -> ProtectionConfig {
    ProtectionConfig::builder()
        .k(4)
        .eta(5)
        .duplication(2)
        .mark_text("serve-benchmark-owner")
        .build()
}

struct WorkerResult {
    workers: usize,
    protect_requests_per_sec: f64,
    detect_requests_per_sec: f64,
    requests_per_sec: f64,
    durable_protect_requests_per_sec: f64,
    durable_detect_requests_per_sec: f64,
    durable_requests_per_sec: f64,
}

/// Fan `jobs` out over `clients` connections, one thread per connection.
/// Returns the wall-clock seconds for the whole fan-out.
fn run_phase(addr: std::net::SocketAddr, clients: usize, jobs: Vec<BenchJob>) -> f64 {
    let mut shards: Vec<Vec<BenchJob>> = (0..clients).map(|_| Vec::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        shards[i % clients].push(job);
    }
    let start = Instant::now();
    std::thread::scope(|scope| {
        for shard in shards {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect to the bench server");
                for job in shard {
                    job(&mut client);
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

fn main() {
    let tables = env_usize("MEDSHIELD_SERVE_TABLES", 12).max(1);
    let rows = env_usize("MEDSHIELD_SERVE_ROWS", 120).max(1);
    let detect_rounds = env_usize("MEDSHIELD_SERVE_DETECT_ROUNDS", 2).max(1);
    let out_path =
        std::env::var("MEDSHIELD_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());

    eprintln!("generating {tables} tables of {rows} rows…");
    let datasets: Vec<MedicalDataset> = (0..tables)
        .map(|i| {
            MedicalDataset::generate(&DatasetConfig {
                num_tuples: rows,
                seed: 0x5E12_7E00 + i as u64,
                zipf_exponent: 0.8,
            })
        })
        .collect();
    let submissions: Vec<String> = datasets.iter().map(|ds| csv::to_csv(&ds.table)).collect();

    // In-process expectations: the byte-equivalence gate compares every
    // served response against these.
    let engine = ProtectionEngine::new(engine_config(), 1).expect("1 thread is valid");
    eprintln!("computing in-process reference releases…");
    let expectations: Vec<(String, String)> = datasets
        .iter()
        .map(|ds| {
            let release =
                engine.protect_per_attribute(&ds.table, &ds.trees).expect("binnable table");
            let detection = engine
                .detect(&release.table, &release.binning.columns, &ds.trees)
                .expect("detection succeeds");
            (
                csv::to_csv(&release.table),
                medshield_core::watermark::Mark::from_bits(detection.mark).to_string(),
            )
        })
        .collect();

    // Untimed equivalence gate: every served release must be the in-process
    // bytes and every detection the in-process mark. Returns the release
    // ids the gate stored.
    let gate_equivalence = |addr: std::net::SocketAddr, workers: usize, axis: &str| {
        let mut gate = Client::connect(addr).expect("connect");
        let mut release_ids = Vec::with_capacity(tables);
        for (submission, (expected_csv, expected_mark)) in
            submissions.iter().zip(expectations.iter())
        {
            let reply = gate.protect(submission).expect("protect reply");
            assert!(reply.is_ok(), "served protect failed: {}", reply.json);
            assert_eq!(
                reply.body.as_deref(),
                Some(expected_csv.as_str()),
                "{workers}-worker {axis} served release diverged from the in-process bytes"
            );
            let release_id = reply.release_id().expect("release id");
            let detect = gate.detect(&release_id, expected_csv).expect("detect reply");
            assert!(detect.is_ok(), "served detect failed: {}", detect.json);
            assert_eq!(
                detect.str_field("mark").as_deref(),
                Some(expected_mark.as_str()),
                "{workers}-worker {axis} served detection diverged from the in-process mark"
            );
            release_ids.push(release_id);
        }
        release_ids
    };

    // Timed phases shared by both persistence axes: protect traffic, then
    // detect traffic against the gated releases. Returns
    // (protect_secs, detect_secs, detect_count).
    let timed_phases = |addr: std::net::SocketAddr, clients: usize, release_ids: &[String]| {
        let protect_jobs: Vec<BenchJob> = submissions
            .iter()
            .map(|submission| {
                let submission = submission.clone();
                Box::new(move |client: &mut Client| {
                    let reply = client.protect(&submission).expect("protect reply");
                    assert!(reply.is_ok(), "timed protect failed: {}", reply.json);
                }) as BenchJob
            })
            .collect();
        let protect_secs = run_phase(addr, clients, protect_jobs);

        let detect_jobs: Vec<BenchJob> = (0..detect_rounds)
            .flat_map(|_| {
                release_ids.iter().zip(expectations.iter()).map(|(id, (expected_csv, _))| {
                    let id = id.clone();
                    let suspect = expected_csv.clone();
                    Box::new(move |client: &mut Client| {
                        let reply = client.detect(&id, &suspect).expect("detect reply");
                        assert!(reply.is_ok(), "timed detect failed: {}", reply.json);
                    }) as BenchJob
                })
            })
            .collect();
        let detect_count = detect_jobs.len();
        let detect_secs = run_phase(addr, clients, detect_jobs);
        (protect_secs, detect_secs, detect_count)
    };

    let worker_counts = [1usize, 2, 4, 8];
    let mut results = Vec::new();
    for &workers in &worker_counts {
        let clients = workers.max(1);

        // Axis 1: the in-memory store (the committed trajectory metric).
        let config = ServeConfig { engine: engine_config(), workers, ..ServeConfig::default() };
        let handle = serve(config, "127.0.0.1:0").expect("bind the bench server");
        let addr = handle.addr();
        // The releases the timed protects store land alongside the gate's,
        // which is fine — ids are never reused.
        let release_ids = gate_equivalence(addr, workers, "in-memory");
        let (protect_secs, detect_secs, detect_count) = timed_phases(addr, clients, &release_ids);
        handle.shutdown();

        // Axis 2: the durable WAL-backed store, on a fresh data directory.
        let data_dir = std::env::temp_dir()
            .join(format!("medshield-bench-serve-{}-{workers}w", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let durable_config = || ServeConfig {
            engine: engine_config(),
            workers,
            data_dir: Some(data_dir.clone()),
            ..ServeConfig::default()
        };
        let handle = serve(durable_config(), "127.0.0.1:0").expect("bind the durable server");
        let addr = handle.addr();
        let release_ids = gate_equivalence(addr, workers, "durable");
        // Recovery gate: reopen the same data directory and require a
        // byte-identical detect reply from the recovered store before any
        // durable timing is trusted.
        let mut gate = Client::connect(addr).expect("connect");
        let before = gate.detect(&release_ids[0], &expectations[0].0).expect("pre-restart detect");
        assert!(before.is_ok(), "pre-restart detect failed: {}", before.json);
        drop(gate);
        handle.shutdown();
        let handle = serve(durable_config(), "127.0.0.1:0").expect("reopen the durable server");
        let addr = handle.addr();
        let mut gate = Client::connect(addr).expect("reconnect");
        let after = gate.detect(&release_ids[0], &expectations[0].0).expect("post-restart detect");
        assert_eq!(after, before, "{workers}-worker durable detect diverged across the restart");
        drop(gate);
        let (durable_protect_secs, durable_detect_secs, durable_detect_count) =
            timed_phases(addr, clients, &release_ids);
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&data_dir);

        let result = WorkerResult {
            workers,
            protect_requests_per_sec: tables as f64 / protect_secs,
            detect_requests_per_sec: detect_count as f64 / detect_secs,
            requests_per_sec: (tables + detect_count) as f64 / (protect_secs + detect_secs),
            durable_protect_requests_per_sec: tables as f64 / durable_protect_secs,
            durable_detect_requests_per_sec: durable_detect_count as f64 / durable_detect_secs,
            durable_requests_per_sec: (tables + durable_detect_count) as f64
                / (durable_protect_secs + durable_detect_secs),
        };
        eprintln!(
            "{:>2} worker(s): protect {:>8.1} req/s, detect {:>8.1} req/s \
             (durable: {:>8.1} / {:>8.1})",
            workers,
            result.protect_requests_per_sec,
            result.detect_requests_per_sec,
            result.durable_protect_requests_per_sec,
            result.durable_detect_requests_per_sec,
        );
        results.push(result);
    }

    let speedup_4w = results
        .iter()
        .find(|r| r.workers == 4)
        .map(|r| r.requests_per_sec / results[0].requests_per_sec)
        .unwrap_or(f64::NAN);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"serve-throughput\",\n");
    json.push_str(&format!("  \"tables\": {tables},\n"));
    json.push_str(&format!("  \"rows\": {rows},\n"));
    json.push_str(&format!("  \"detect_rounds\": {detect_rounds},\n"));
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1)
    ));
    json.push_str("  \"equivalence_checked\": true,\n");
    json.push_str("  \"persistence_axis\": true,\n");
    json.push_str("  \"threads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"requests_per_sec\": {:.1}, \"protect_requests_per_sec\": {:.1}, \"detect_requests_per_sec\": {:.1}, \"durable_requests_per_sec\": {:.1}, \"durable_protect_requests_per_sec\": {:.1}, \"durable_detect_requests_per_sec\": {:.1}}}{}\n",
            r.workers,
            r.requests_per_sec,
            r.protect_requests_per_sec,
            r.detect_requests_per_sec,
            r.durable_requests_per_sec,
            r.durable_protect_requests_per_sec,
            r.durable_detect_requests_per_sec,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_4w_vs_1w\": {speedup_4w:.2}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("4-worker speedup over 1 worker: {speedup_4w:.2}x");
    eprintln!("wrote {out_path}");
}

//! Figure 12(a) — robustness to Subset Alteration: percentage of altered data
//! vs mark loss, for η ∈ {50, 75, 100}.

#![forbid(unsafe_code)]

use medshield_attacks::{Attack, SubsetAlteration};
use medshield_bench::{experiment_dataset, print_figure_header, protect_per_attribute};
use medshield_core::metrics::mark_loss;

fn main() {
    let dataset = experiment_dataset();
    print_figure_header(
        "Figure 12(a)",
        "robustness of hierarchical watermarking to Subset Alteration",
    );

    let etas = [50u64, 75, 100];
    let fractions = [0.0f64, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];

    println!("{:>16} {:>8} {:>8} {:>8}", "data alteration %", "η=50", "η=75", "η=100");
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); fractions.len()];
    for &eta in &etas {
        let (pipeline, release) = protect_per_attribute(&dataset, 10, eta);
        for (fi, &fraction) in fractions.iter().enumerate() {
            let attacked = SubsetAlteration::new(fraction, 2005 + fi as u64).apply(&release.table);
            let detection = pipeline
                .detect(&attacked, &release.binning.columns, &dataset.trees)
                .expect("detection runs on attacked data");
            rows[fi].push(mark_loss(release.mark.bits(), &detection.mark) * 100.0);
        }
    }
    for (fi, &fraction) in fractions.iter().enumerate() {
        println!(
            "{:>16.0} {:>8.1} {:>8.1} {:>8.1}",
            fraction * 100.0,
            rows[fi][0],
            rows[fi][1],
            rows[fi][2]
        );
    }
    println!();
    println!("paper shape: mark loss grows slowly with the altered fraction (≈30% loss");
    println!("at 70%+ alteration) and smaller η (more embedded copies) is more resilient.");
}

//! Figure 11 — k vs. information loss (%), mono-attribute vs multi-attribute
//! binning, plus the minimal-node-strategy ablation mentioned in §4.2/§7.1.

#![forbid(unsafe_code)]

use medshield_bench::{experiment_dataset, info_loss_of, print_figure_header, root_usage_metrics};
use medshield_binning::{BinningAgent, BinningConfig, MinimalNodeStrategy};

fn main() {
    let dataset = experiment_dataset();
    let maximal = root_usage_metrics(&dataset);
    print_figure_header(
        "Figure 11",
        "k vs. information loss for mono-attribute and multi-attribute binning",
    );

    let ks = [5usize, 10, 25, 50, 75, 100, 150, 200, 250, 300, 350];
    println!(
        "{:>5} {:>22} {:>23} {:>26}",
        "k", "mono-attribute loss %", "multi-attribute loss %", "mono (aggressive) loss %"
    );
    for &k in &ks {
        let conservative = BinningAgent::new(BinningConfig::with_k(k))
            .bin(&dataset.table, &dataset.trees, &maximal)
            .expect("binnable");
        let mono_cols: Vec<_> =
            conservative.columns.iter().map(|cb| (cb.column.clone(), cb.minimal.clone())).collect();
        let multi_cols: Vec<_> = conservative
            .columns
            .iter()
            .map(|cb| (cb.column.clone(), cb.ultimate.clone()))
            .collect();
        let mono_loss = info_loss_of(&dataset, &mono_cols);
        let multi_loss = info_loss_of(&dataset, &multi_cols);

        // Ablation: the "more aggressive strategy" for minimal nodes (§4.2.1).
        let mut aggressive_cfg = BinningConfig::with_k(k);
        aggressive_cfg.minimal_strategy = MinimalNodeStrategy::Aggressive;
        let aggressive = BinningAgent::new(aggressive_cfg)
            .bin(&dataset.table, &dataset.trees, &maximal)
            .expect("binnable");
        let aggressive_cols: Vec<_> =
            aggressive.columns.iter().map(|cb| (cb.column.clone(), cb.minimal.clone())).collect();
        let aggressive_loss = info_loss_of(&dataset, &aggressive_cols);

        println!(
            "{:>5} {:>22.1} {:>23.1} {:>26.1}",
            k,
            mono_loss * 100.0,
            multi_loss * 100.0,
            aggressive_loss * 100.0
        );
    }
    println!();
    println!("paper shape: multi-attribute loss is well above mono-attribute loss,");
    println!("both grow with k and saturate once k reaches a few hundred.");
}

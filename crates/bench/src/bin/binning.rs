//! Multi-attribute binning search throughput: rows/sec and candidates/sec of
//! the sharded exhaustive `GenUltiNd` search at 1, 2, 4 and 8 worker
//! threads, written to `BENCH_binning.json`.
//!
//! The workload pins the **exhaustive** search mode (the paper's `EnumGen` +
//! `Selection`, the expensive stage the engine shards): a synthetic table at
//! a k large enough that the per-column minimal→maximal gaps multiply to a
//! few tens of thousands of candidate combinations, all of which every
//! configuration scores. Before timing, every thread count is checked to
//! produce a `BinningOutcome` byte-identical to the single-threaded run
//! (binned-table CSV plus the maximal/minimal/ultimate node sets), so the
//! numbers can never come from a divergent fast path.
//!
//! Environment:
//!
//! * `MEDSHIELD_BENCH_TUPLES` — table size (default 2000).
//! * `MEDSHIELD_BENCH_K` — k-anonymity parameter (default 128; larger k
//!   narrows the gap and shrinks the candidate space).
//! * `MEDSHIELD_BENCH_ITERS` — timed iterations per thread count (default 1).
//! * `MEDSHIELD_BENCH_OUT` — output path (default `BENCH_binning.json`).

#![forbid(unsafe_code)]

use medshield_core::binning::{BinningAgent, BinningConfig, BinningOutcome, SearchMode};
use medshield_core::dht::GeneralizationSet;
use medshield_core::relation::csv;
use medshield_datagen::{DatasetConfig, MedicalDataset};
use std::collections::BTreeMap;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct ThreadResult {
    threads: usize,
    rows_per_sec: f64,
    candidates_per_sec: f64,
}

/// One column's fingerprint: name plus the maximal/minimal/ultimate node ids.
type ColumnPrint = (String, Vec<u32>, Vec<u32>, Vec<u32>);

/// The comparable fingerprint of a binning outcome: the binned-table bytes
/// plus every per-column node set.
fn fingerprint(outcome: &BinningOutcome) -> (String, Vec<ColumnPrint>) {
    let nodes = |g: &GeneralizationSet| g.nodes().iter().map(|n| n.0).collect::<Vec<u32>>();
    (
        csv::to_csv(&outcome.table),
        outcome
            .columns
            .iter()
            .map(|c| (c.column.clone(), nodes(&c.maximal), nodes(&c.minimal), nodes(&c.ultimate)))
            .collect(),
    )
}

fn main() {
    let tuples = env_usize("MEDSHIELD_BENCH_TUPLES", 2000);
    let k = env_usize("MEDSHIELD_BENCH_K", 128);
    let iters = env_usize("MEDSHIELD_BENCH_ITERS", 1).max(1);
    let out_path =
        std::env::var("MEDSHIELD_BENCH_OUT").unwrap_or_else(|_| "BENCH_binning.json".into());

    eprintln!("generating {tuples} tuples…");
    let ds = MedicalDataset::generate(&DatasetConfig {
        num_tuples: tuples,
        seed: 0x1CDE_2005,
        zipf_exponent: 0.8,
    });
    // Usage metrics allow the full trees; a large k keeps the minimal→maximal
    // gap narrow enough for the exhaustive mode to engage.
    let maximal: BTreeMap<String, GeneralizationSet> =
        ds.trees.iter().map(|(n, t)| (n.clone(), GeneralizationSet::root_only(t))).collect();
    let config = |threads: usize| {
        let mut c = BinningConfig::with_k(k);
        c.exhaustive_limit = 500_000;
        c.threads = threads;
        c
    };

    // Reference run + candidate-space size.
    let reference_agent = BinningAgent::new(config(1));
    let reference =
        reference_agent.bin(&ds.table, &ds.trees, &maximal).expect("the synthetic table bins");
    assert_eq!(
        reference.mode,
        SearchMode::Exhaustive,
        "the bench workload must exercise the exhaustive search \
         (raise MEDSHIELD_BENCH_K or the exhaustive limit)"
    );
    let reference_print = fingerprint(&reference);
    let mut candidates: usize = 1;
    for cb in &reference.columns {
        let n = GeneralizationSet::count_between(&ds.trees[&cb.column], &cb.minimal, &cb.maximal)
            .expect("count_between succeeds");
        candidates = candidates.saturating_mul(n);
    }
    eprintln!(
        "k={k}: {candidates} candidate combinations over {} columns",
        reference.columns.len()
    );

    let thread_counts = [1usize, 2, 4, 8];
    let mut results = Vec::new();
    for &threads in &thread_counts {
        let agent = BinningAgent::new(config(threads));

        // Equivalence gate: the timed path must reproduce the sequential
        // outcome exactly — binned bytes and all three node sets per column.
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).expect("binning succeeds");
        assert_eq!(
            fingerprint(&outcome),
            reference_print,
            "{threads}-thread binning diverged from the sequential outcome"
        );

        let mut secs = 0.0;
        for _ in 0..iters {
            let start = Instant::now();
            let _ = agent.bin(&ds.table, &ds.trees, &maximal).expect("binning succeeds");
            secs += start.elapsed().as_secs_f64();
        }
        let result = ThreadResult {
            threads,
            rows_per_sec: (tuples * iters) as f64 / secs,
            candidates_per_sec: (candidates * iters) as f64 / secs,
        };
        eprintln!(
            "{:>2} thread(s): {:>10.0} rows/s, {:>12.0} candidates/s",
            threads, result.rows_per_sec, result.candidates_per_sec
        );
        results.push(result);
    }

    let speedup_4t = results
        .iter()
        .find(|r| r.threads == 4)
        .map(|r| r.rows_per_sec / results[0].rows_per_sec)
        .unwrap_or(f64::NAN);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"binning-search-throughput\",\n");
    json.push_str(&format!("  \"layout\": \"{}\",\n", medshield_bench::TABLE_LAYOUT));
    json.push_str(&format!("  \"rows\": {tuples},\n"));
    json.push_str(&format!("  \"k\": {k},\n"));
    json.push_str(&format!("  \"candidates\": {candidates},\n"));
    json.push_str(&format!("  \"iterations\": {iters},\n"));
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1)
    ));
    json.push_str("  \"mode\": \"exhaustive\",\n");
    json.push_str("  \"equivalence_checked\": true,\n");
    if let Some(kib) = medshield_bench::peak_rss_kib() {
        json.push_str(&format!("  \"peak_rss_kib\": {kib},\n"));
        eprintln!("peak RSS: {kib} KiB");
    }
    json.push_str("  \"threads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"rows_per_sec\": {:.1}, \"candidates_per_sec\": {:.1}}}{}\n",
            r.threads,
            r.rows_per_sec,
            r.candidates_per_sec,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_4t_vs_1t\": {speedup_4t:.2}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    eprintln!("4-thread speedup over 1 thread: {speedup_4t:.2}x");
    eprintln!("wrote {out_path}");
}

//! Shared experiment harness for regenerating the figures and tables of the
//! paper's evaluation section (§7).
//!
//! Every binary in `src/bin/` drives one experiment:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig11` | Fig. 11 — k vs. information loss, mono- vs multi-attribute binning |
//! | `fig12a` | Fig. 12(a) — mark loss under subset alteration, η ∈ {50, 75, 100} |
//! | `fig12b` | Fig. 12(b) — mark loss under subset addition |
//! | `fig12c` | Fig. 12(c) — mark loss under subset deletion |
//! | `fig13` | Fig. 13 — information loss caused by watermarking vs η |
//! | `fig14` | Fig. 14 — effect of watermarking on binning (bin statistics) |
//! | `generalization_attack` | §5.2 ablation — single-level vs hierarchical under the generalization attack |
//! | `all_experiments` | runs everything above in sequence |
//! | `throughput` | engine throughput at 1/2/4/8 threads → `BENCH_throughput.json` |
//! | `binning` | sharded `GenUltiNd` search throughput at 1/2/4/8 threads → `BENCH_binning.json` |
//! | `serve` | loopback serving-layer requests/sec at 1/2/4/8 pool workers, 1/64/1024 pipelined connections and 1/4/16 registered recipients → `BENCH_serve.json` |
//! | `check-regression` | CI guard: fresh `BENCH_*.json` vs `baselines/`, fails on >25% 1-thread (or 1024-connection / 16-recipient) drop, refuses cross-core-count comparisons |
//!
//! The experiments default to the paper's scale (20,000 tuples); set the
//! environment variable `MEDSHIELD_TUPLES` to run them smaller or larger.
//!
//! ```
//! use medshield_datagen::{DatasetConfig, MedicalDataset};
//!
//! let ds = MedicalDataset::generate(&DatasetConfig::small(50));
//! // "Directly given" usage metrics: one maximal node (the root) per tree.
//! let metrics = medshield_bench::root_usage_metrics(&ds);
//! assert_eq!(metrics.len(), 5);
//! assert!(metrics.values().all(|g| g.len() == 1));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use medshield_core::dht::GeneralizationSet;
use medshield_core::metrics::{table_info_loss, ColumnGeneralization};
use medshield_core::{ProtectedRelease, ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use std::collections::BTreeMap;

/// Number of tuples used by the experiments: `MEDSHIELD_TUPLES` or the
/// paper's 20,000.
pub fn experiment_tuples() -> usize {
    std::env::var("MEDSHIELD_TUPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(20_000)
}

/// The seed shared by all experiments so that every figure is generated from
/// the same synthetic hospital table.
pub const EXPERIMENT_SEED: u64 = 0x1CDE_2005;

/// Generate the experiment data set.
pub fn experiment_dataset() -> MedicalDataset {
    MedicalDataset::generate(&DatasetConfig {
        num_tuples: experiment_tuples(),
        seed: EXPERIMENT_SEED,
        zipf_exponent: 0.8,
    })
}

/// Usage metrics used throughout the experiments: the maximal generalization
/// nodes are "directly given" (§7) as the tree roots, leaving the full tree
/// height available to binning and the watermark bandwidth channel.
pub fn root_usage_metrics(dataset: &MedicalDataset) -> BTreeMap<String, GeneralizationSet> {
    dataset
        .trees
        .iter()
        .map(|(name, tree)| (name.clone(), GeneralizationSet::at_depth(tree, 0)))
        .collect()
}

/// Build the standard pipeline used by the watermarking experiments.
pub fn experiment_pipeline(k: usize, eta: u64) -> ProtectionPipeline {
    ProtectionPipeline::new(
        ProtectionConfig::builder()
            .k(k)
            .epsilon(2)
            .eta(eta)
            .duplication(4)
            .mark_len(20)
            .mark_text("MedShield experiment owner")
            .build(),
    )
}

/// Protect the experiment data set with the standard pipeline (full
/// multi-attribute k-anonymity).
pub fn protect(
    dataset: &MedicalDataset,
    k: usize,
    eta: u64,
) -> (ProtectionPipeline, ProtectedRelease) {
    let pipeline = experiment_pipeline(k, eta);
    let release = pipeline
        .protect(&dataset.table, &dataset.trees)
        .expect("the synthetic experiment data are binnable");
    (pipeline, release)
}

/// Protect the experiment data set enforcing k-anonymity per attribute only —
/// the granularity at which the paper's §6 analysis and its Fig. 12–14
/// experiments operate (each attribute's bins hold ≥ k records). This leaves
/// the watermark the wide bandwidth channel the paper's robustness numbers
/// assume.
pub fn protect_per_attribute(
    dataset: &MedicalDataset,
    k: usize,
    eta: u64,
) -> (ProtectionPipeline, ProtectedRelease) {
    let pipeline = experiment_pipeline(k, eta);
    let release = pipeline
        .protect_per_attribute(&dataset.table, &dataset.trees)
        .expect("the synthetic experiment data are binnable per attribute");
    (pipeline, release)
}

/// Normalized information loss (Eq. 3) of a set of per-column generalizations
/// measured against the original table.
pub fn info_loss_of(dataset: &MedicalDataset, columns: &[(String, GeneralizationSet)]) -> f64 {
    let cgs: Vec<ColumnGeneralization<'_>> = columns
        .iter()
        .map(|(name, g)| ColumnGeneralization {
            column: name,
            tree: &dataset.trees[name],
            generalization: g,
        })
        .collect();
    table_info_loss(&dataset.table, &cgs).expect("experiment columns are measurable")
}

/// Print a two-column header for a figure reproduction.
pub fn print_figure_header(figure: &str, caption: &str) {
    println!("==================================================================");
    println!("{figure}: {caption}");
    println!("dataset: {} tuples (seed {EXPERIMENT_SEED:#x})", experiment_tuples());
    println!("==================================================================");
}

/// The table layout the benches run against, recorded as the `layout` axis
/// of every `BENCH_*.json` so regression checks never compare columnar
/// numbers against a row-major baseline (or vice versa).
pub const TABLE_LAYOUT: &str = "columnar";

/// Peak resident set size of this process in KiB, read from
/// `/proc/self/status` (`VmHWM`). `None` where procfs is unavailable
/// (non-Linux hosts); the benches then omit the field.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Minimal readers for the `BENCH_*.json` files the bench binaries emit.
///
/// The workspace is hermetic (no serde_json), and the files are produced by
/// our own binaries in a fixed shape, so a small field scanner is all the
/// regression guard (`bench --bin check-regression`) needs.
pub mod benchjson {
    /// The numeric value of `"field": <number>` inside `block`.
    fn field_number(block: &str, field: &str) -> Option<f64> {
        let needle = format!("\"{field}\":");
        let at = block.find(&needle)? + needle.len();
        let rest = block[at..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    /// The value of `field` in the object of the top-level `"<axis>": [...]`
    /// array whose `"<axis>"` key equals `key` — the `"threads"` array is
    /// keyed by worker count, the serving bench's `"connections"` array by
    /// connection count.
    pub fn axis_metric(json: &str, axis: &str, key: usize, field: &str) -> Option<f64> {
        let needle = format!("\"{axis}\": [");
        let start = json.find(&needle)?;
        let array = &json[start..];
        let end = array.find(']')?;
        let array = &array[..end];
        let mut rest = array;
        while let Some(open) = rest.find('{') {
            let close = rest[open..].find('}')? + open;
            let block = &rest[open..=close];
            if field_number(block, axis) == Some(key as f64) {
                return field_number(block, field);
            }
            rest = &rest[close + 1..];
        }
        None
    }

    /// The value of `field` in the object of the top-level `"threads": [...]`
    /// array whose `"threads"` count equals `threads`.
    pub fn thread_metric(json: &str, threads: usize, field: &str) -> Option<f64> {
        axis_metric(json, "threads", threads, field)
    }

    /// A top-level numeric field (e.g. `"rows"`, `"k"`, `"candidates"`),
    /// read from the prefix before the `"threads"` array so per-thread
    /// fields can never shadow it.
    pub fn top_metric(json: &str, field: &str) -> Option<f64> {
        let end = json.find("\"threads\": [").unwrap_or(json.len());
        field_number(&json[..end], field)
    }

    /// A top-level string field (e.g. `"layout"`), read from the prefix
    /// before the `"threads"` array so per-thread fields can never shadow
    /// it.
    pub fn top_string<'a>(json: &'a str, field: &str) -> Option<&'a str> {
        let end = json.find("\"threads\": [").unwrap_or(json.len());
        let head = &json[..end];
        let needle = format!("\"{field}\":");
        let at = head.find(&needle)? + needle.len();
        let rest = head[at..].trim_start().strip_prefix('"')?;
        rest.split('"').next()
    }

    /// The benchmark name (`"benchmark": "..."`), for log messages.
    pub fn benchmark_name(json: &str) -> Option<&str> {
        let at = json.find("\"benchmark\":")? + "\"benchmark\":".len();
        let rest = json[at..].trim_start().strip_prefix('"')?;
        rest.split('"').next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_tuples_honours_env_override() {
        // Not setting the variable yields the paper default.
        std::env::remove_var("MEDSHIELD_TUPLES");
        assert_eq!(experiment_tuples(), 20_000);
    }

    #[test]
    fn root_usage_metrics_cover_every_quasi_column() {
        let ds = MedicalDataset::generate(&DatasetConfig::small(50));
        let m = root_usage_metrics(&ds);
        assert_eq!(m.len(), 5);
        for g in m.values() {
            assert_eq!(g.len(), 1);
        }
    }

    #[test]
    fn info_loss_of_root_generalization_is_high() {
        let ds = MedicalDataset::generate(&DatasetConfig::small(200));
        let columns: Vec<(String, GeneralizationSet)> =
            ds.trees.iter().map(|(n, t)| (n.clone(), GeneralizationSet::root_only(t))).collect();
        let loss = info_loss_of(&ds, &columns);
        assert!(loss > 0.9);
    }

    #[test]
    fn benchjson_reads_the_emitted_shape() {
        let json = r#"{
  "benchmark": "binning-search-throughput",
  "layout": "columnar",
  "rows": 2000,
  "threads": [
    {"threads": 1, "rows_per_sec": 700.5, "candidates_per_sec": 17000.0},
    {"threads": 4, "rows_per_sec": 2800.0, "candidates_per_sec": 68000.0}
  ],
  "connections": [
    {"connections": 64, "requests_per_sec": 410.0},
    {"connections": 1024, "requests_per_sec": 395.5}
  ],
  "speedup_4t_vs_1t": 4.00
}
"#;
        assert_eq!(benchjson::benchmark_name(json), Some("binning-search-throughput"));
        // A second axis keyed by its own field resolves independently of the
        // threads array.
        assert_eq!(
            benchjson::axis_metric(json, "connections", 1024, "requests_per_sec"),
            Some(395.5)
        );
        assert_eq!(
            benchjson::axis_metric(json, "connections", 64, "requests_per_sec"),
            Some(410.0)
        );
        assert_eq!(benchjson::axis_metric(json, "connections", 2, "requests_per_sec"), None);
        assert_eq!(benchjson::axis_metric(json, "nope", 1, "requests_per_sec"), None);
        // Top-level fields resolve from the prefix only: "rows" is found,
        // while the per-thread "rows_per_sec" entries cannot shadow it.
        assert_eq!(benchjson::top_metric(json, "rows"), Some(2000.0));
        assert_eq!(benchjson::top_metric(json, "k"), None);
        assert_eq!(benchjson::thread_metric(json, 1, "rows_per_sec"), Some(700.5));
        assert_eq!(benchjson::thread_metric(json, 4, "candidates_per_sec"), Some(68000.0));
        assert_eq!(benchjson::thread_metric(json, 2, "rows_per_sec"), None);
        assert_eq!(benchjson::thread_metric(json, 1, "nope"), None);
        assert_eq!(benchjson::thread_metric("not json", 1, "rows_per_sec"), None);
        assert_eq!(benchjson::benchmark_name("{}"), None);
        // String fields resolve from the prefix only, like top_metric.
        assert_eq!(benchjson::top_string(json, "layout"), Some("columnar"));
        assert_eq!(benchjson::top_string(json, "benchmark"), Some("binning-search-throughput"));
        assert_eq!(benchjson::top_string(json, "rows"), None);
        assert_eq!(benchjson::top_string(json, "nope"), None);
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        // The CI hosts are Linux, where /proc/self/status always carries a
        // VmHWM line; elsewhere the benches simply omit the field.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kib().unwrap() > 0);
        }
    }
}

//! Bin statistics for the interference analysis (Fig. 14).
//!
//! Figure 14 of the paper reports, per quasi-identifying attribute and per
//! value of k: the total number of bins, the number of bins whose size changed
//! because of watermarking, and the number of bins whose size dropped below k.
//! [`column_bin_report`] computes exactly those three numbers by comparing the
//! binned table with the binned-and-watermarked table.

use medshield_relation::{stats, RelationError, Table};
use serde::{Deserialize, Serialize};

/// The Fig. 14 triple for one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinReport {
    /// Total number of bins of the attribute after watermarking (distinct
    /// values present in either table).
    pub total_bins: usize,
    /// Number of bins whose size differs between the two tables.
    pub changed_bins: usize,
    /// Number of bins whose size is below `k` after watermarking.
    pub below_k: usize,
}

/// Compare the bins of `column` before (`binned`) and after (`watermarked`)
/// watermarking, under anonymity parameter `k`.
pub fn column_bin_report(
    binned: &Table,
    watermarked: &Table,
    column: &str,
    k: usize,
) -> Result<BinReport, RelationError> {
    let before = stats::value_counts(binned, column)?;
    let after = stats::value_counts(watermarked, column)?;

    let mut all_values: std::collections::BTreeSet<_> = before.keys().cloned().collect();
    all_values.extend(after.keys().cloned());

    let mut changed = 0usize;
    let mut below_k = 0usize;
    for v in &all_values {
        let b = before.get(v).copied().unwrap_or(0);
        let a = after.get(v).copied().unwrap_or(0);
        if a != b {
            changed += 1;
        }
        if a < k {
            below_k += 1;
        }
    }
    Ok(BinReport { total_bins: all_values.len(), changed_bins: changed, below_k })
}

/// Reports for every quasi-identifying column of the schema, in schema order.
pub fn quasi_bin_reports(
    binned: &Table,
    watermarked: &Table,
    k: usize,
) -> Result<Vec<(String, BinReport)>, RelationError> {
    let names: Vec<String> =
        binned.schema().quasi_names().into_iter().map(std::string::ToString::to_string).collect();
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let report = column_bin_report(binned, watermarked, &name, k)?;
        out.push((name, report));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_relation::{ColumnDef, ColumnRole, Schema, TupleId, Value};

    fn base_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("doctor", ColumnRole::QuasiCategorical),
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for (doc, age) in [
            ("Doctor", 30),
            ("Doctor", 30),
            ("Doctor", 30),
            ("Paramedic", 30),
            ("Paramedic", 30),
            ("Paramedic", 40),
        ] {
            t.insert(vec![Value::text(doc), Value::int(age)]).unwrap();
        }
        t
    }

    #[test]
    fn identical_tables_report_no_change() {
        let t = base_table();
        let r = column_bin_report(&t, &t, "doctor", 2).unwrap();
        assert_eq!(r, BinReport { total_bins: 2, changed_bins: 0, below_k: 0 });
    }

    #[test]
    fn permutation_between_bins_changes_both() {
        let binned = base_table();
        let mut marked = binned.snapshot();
        // Move one Doctor to Paramedic — both bins change size, none below 2.
        marked.set_value(TupleId(0), "doctor", Value::text("Paramedic")).unwrap();
        let r = column_bin_report(&binned, &marked, "doctor", 2).unwrap();
        assert_eq!(r.total_bins, 2);
        assert_eq!(r.changed_bins, 2);
        assert_eq!(r.below_k, 0);
    }

    #[test]
    fn below_k_counts_small_bins_after_watermarking() {
        let binned = base_table();
        let mut marked = binned.snapshot();
        // Shrink the Paramedic/age-40 situation: k = 2 over the age column.
        // Move the single 40-year-old to 30 → the 40 bin disappears (size 0 <
        // 2 is only counted if the value still exists somewhere).
        marked.set_value(TupleId(5), "age", Value::int(30)).unwrap();
        let r = column_bin_report(&binned, &marked, "age", 2).unwrap();
        // Bins: 30 (changed 5→6) and 40 (changed 1→0, now below k).
        assert_eq!(r.total_bins, 2);
        assert_eq!(r.changed_bins, 2);
        assert_eq!(r.below_k, 1);
    }

    #[test]
    fn new_value_in_watermarked_table_is_counted() {
        let binned = base_table();
        let mut marked = binned.snapshot();
        marked.set_value(TupleId(0), "doctor", Value::text("Nurse")).unwrap();
        let r = column_bin_report(&binned, &marked, "doctor", 2).unwrap();
        // Bins: Doctor (3→2), Paramedic (3→3), Nurse (0→1, below k).
        assert_eq!(r.total_bins, 3);
        assert_eq!(r.changed_bins, 2);
        assert_eq!(r.below_k, 1);
    }

    #[test]
    fn quasi_reports_cover_all_quasi_columns() {
        let t = base_table();
        let reports = quasi_bin_reports(&t, &t, 3).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].0, "doctor");
        assert_eq!(reports[1].0, "age");
        // age bins are {30:5, 40:1} → one below 3.
        assert_eq!(reports[1].1.below_k, 1);
    }

    #[test]
    fn unknown_column_errors() {
        let t = base_table();
        assert!(column_bin_report(&t, &t, "nope", 2).is_err());
    }
}

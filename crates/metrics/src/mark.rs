//! Mark loss — the y-axis of the robustness experiments (Fig. 12).
//!
//! Mark loss is the fraction of mark bits that differ between the mark the
//! owner embedded and the mark recovered from the (possibly attacked) table.

/// Fraction of differing bits between `original` and `recovered`, in `[0,1]`.
///
/// If `recovered` is shorter than `original` the missing bits count as lost;
/// extra bits in `recovered` are ignored. An empty original mark has zero
/// loss by convention.
pub fn mark_loss(original: &[bool], recovered: &[bool]) -> f64 {
    if original.is_empty() {
        return 0.0;
    }
    let mut lost = 0usize;
    for (i, &bit) in original.iter().enumerate() {
        match recovered.get(i) {
            Some(&r) if r == bit => {}
            _ => lost += 1,
        }
    }
    lost as f64 / original.len() as f64
}

/// Bit-level accuracy, `1 − mark_loss`.
pub fn mark_accuracy(original: &[bool], recovered: &[bool]) -> f64 {
    1.0 - mark_loss(original, recovered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_marks_have_zero_loss() {
        let m = vec![true, false, true, true];
        assert_eq!(mark_loss(&m, &m), 0.0);
        assert_eq!(mark_accuracy(&m, &m), 1.0);
    }

    #[test]
    fn completely_flipped_mark_is_total_loss() {
        let m = vec![true, false, true, false];
        let r: Vec<bool> = m.iter().map(|b| !b).collect();
        assert_eq!(mark_loss(&m, &r), 1.0);
    }

    #[test]
    fn partial_loss() {
        let m = vec![true, true, true, true];
        let r = vec![true, false, true, false];
        assert!((mark_loss(&m, &r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn short_recovered_mark_counts_missing_bits_as_lost() {
        let m = vec![true, true, true, true];
        let r = vec![true, true];
        assert!((mark_loss(&m, &r) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn extra_recovered_bits_are_ignored() {
        let m = vec![true, false];
        let r = vec![true, false, true, true, false];
        assert_eq!(mark_loss(&m, &r), 0.0);
    }

    #[test]
    fn empty_original_is_zero_loss() {
        assert_eq!(mark_loss(&[], &[true]), 0.0);
    }
}

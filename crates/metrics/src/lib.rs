//! # medshield-metrics
//!
//! Usage metrics and measurement utilities for the MedShield framework
//! (Bertino et al., ICDE 2005).
//!
//! The paper constrains both binning and watermarking by *usage metrics*: a
//! set of maximal allowable information-loss bounds beyond which the data are
//! assumed useless for their intended purpose (§4.1). This crate implements:
//!
//! * [`info_loss`] — per-column information loss for categorical (Eq. 1) and
//!   numeric (Eq. 2) attributes, the normalized table-level loss (Eq. 3), and
//!   specificity loss (§4.2.2).
//! * [`usage`] — the bound form of the metrics (Eq. 4) and checking.
//! * [`anonymity`] — k-anonymity verification over quasi-identifier
//!   combinations and per single attribute.
//! * [`bin_stats`] — the Fig. 14 statistics: per attribute, total bins, bins
//!   whose size changed after watermarking, bins that fell below k.
//! * [`mark`] — mark-loss (fraction of mark bits destroyed), the y-axis of
//!   Fig. 12.
//!
//! ```
//! use medshield_metrics::mark_loss;
//!
//! let embedded = [true, false, true, false];
//! let recovered = [true, false, false, false];
//! assert_eq!(mark_loss(&embedded, &recovered), 0.25);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod anonymity;
pub mod bin_stats;
pub mod info_loss;
pub mod mark;
pub mod usage;

pub use anonymity::{column_satisfies_k, satisfies_k_anonymity, undersized_rows, violating_bins};
pub use bin_stats::{column_bin_report, BinReport};
pub use info_loss::{column_info_loss, table_info_loss, ColumnGeneralization};
pub use mark::mark_loss;
pub use usage::{UsageBounds, UsageCheck};

//! k-anonymity verification.
//!
//! A table satisfies k-anonymity over its quasi-identifying columns when every
//! record is indistinguishable from at least k−1 others, i.e. every bin
//! (group of records sharing the same quasi-identifier combination) has size
//! at least k (§2).

use medshield_relation::{stats, RelationError, Table, Value};

/// True if every bin over `columns` has at least `k` members. An empty table
/// vacuously satisfies any `k`.
pub fn satisfies_k_anonymity(
    table: &Table,
    columns: &[&str],
    k: usize,
) -> Result<bool, RelationError> {
    Ok(violating_bins(table, columns, k)?.is_empty())
}

/// True if every bin over the single column `column` has at least `k`
/// members — the mono-attribute check used during mono-attribute binning.
pub fn column_satisfies_k(table: &Table, column: &str, k: usize) -> Result<bool, RelationError> {
    satisfies_k_anonymity(table, &[column], k)
}

/// The bins over `columns` whose size is below `k`, with their sizes.
pub fn violating_bins(
    table: &Table,
    columns: &[&str],
    k: usize,
) -> Result<Vec<(Vec<Value>, usize)>, RelationError> {
    let bins = stats::bin_sizes(table, columns)?;
    Ok(bins.into_iter().filter(|(_, size)| *size < k).collect())
}

/// Convenience: check k-anonymity over every quasi-identifying column of the
/// table's schema (the full multi-attribute requirement).
pub fn satisfies_k_anonymity_quasi(table: &Table, k: usize) -> Result<bool, RelationError> {
    let names = table.schema().quasi_names();
    satisfies_k_anonymity(table, &names, k)
}

/// Row indices falling into bins of size below `k`, given one bin key per
/// row (row index = position in the iterator). Returned indices are sorted.
///
/// This is the bin-cardinality primitive shared by the table-level checks
/// above and by the binning search, which scores candidate generalizations by
/// the bins they *would* produce without materializing a generalized table.
pub fn undersized_rows<K: Eq + std::hash::Hash>(
    keys: impl IntoIterator<Item = K>,
    k: usize,
) -> Vec<usize> {
    let mut bins: std::collections::HashMap<K, Vec<usize>> = std::collections::HashMap::new();
    for (row, key) in keys.into_iter().enumerate() {
        bins.entry(key).or_default().push(row);
    }
    let mut out = Vec::new();
    for members in bins.values() {
        if members.len() < k {
            out.extend_from_slice(members);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_relation::{ColumnDef, ColumnRole, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
            ColumnDef::new("doctor", ColumnRole::QuasiCategorical),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        let rows = [
            (30, "Surgeon"),
            (30, "Surgeon"),
            (30, "Surgeon"),
            (40, "Nurse"),
            (40, "Nurse"),
            (40, "Surgeon"),
        ];
        for (age, doc) in rows {
            t.insert(vec![Value::int(age), Value::text(doc)]).unwrap();
        }
        t
    }

    #[test]
    fn mono_attribute_checks() {
        let t = table();
        // age: bins {30:3, 40:3} → 3-anonymous per column.
        assert!(column_satisfies_k(&t, "age", 3).unwrap());
        assert!(!column_satisfies_k(&t, "age", 4).unwrap());
        // doctor: bins {Surgeon:4, Nurse:2}.
        assert!(column_satisfies_k(&t, "doctor", 2).unwrap());
        assert!(!column_satisfies_k(&t, "doctor", 3).unwrap());
    }

    #[test]
    fn multi_attribute_is_stricter_than_mono() {
        // This is the paper's §4.2 motivating point: each attribute may be
        // k-anonymous while the combination is not.
        let t = table();
        assert!(column_satisfies_k(&t, "age", 3).unwrap());
        assert!(column_satisfies_k(&t, "doctor", 2).unwrap());
        // Combination bins: (30,Surgeon):3, (40,Nurse):2, (40,Surgeon):1.
        assert!(!satisfies_k_anonymity(&t, &["age", "doctor"], 2).unwrap());
        let violations = violating_bins(&t, &["age", "doctor"], 2).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].1, 1);
        assert_eq!(violations[0].0, vec![Value::int(40), Value::text("Surgeon")]);
    }

    #[test]
    fn quasi_shortcut_uses_schema() {
        let t = table();
        assert!(satisfies_k_anonymity_quasi(&t, 1).unwrap());
        assert!(!satisfies_k_anonymity_quasi(&t, 2).unwrap());
    }

    #[test]
    fn empty_table_is_vacuously_anonymous() {
        let schema = Schema::new(vec![ColumnDef::new("age", ColumnRole::QuasiNumeric)]).unwrap();
        let t = Table::new(schema);
        assert!(satisfies_k_anonymity(&t, &["age"], 100).unwrap());
    }

    #[test]
    fn k_of_one_always_holds_for_nonempty() {
        let t = table();
        assert!(satisfies_k_anonymity(&t, &["age", "doctor"], 1).unwrap());
    }

    #[test]
    fn unknown_column_is_error() {
        let t = table();
        assert!(satisfies_k_anonymity(&t, &["nope"], 2).is_err());
    }

    #[test]
    fn undersized_rows_finds_small_bins_in_sorted_order() {
        // Keys: a a b a c c → bins a:{0,1,3} b:{2} c:{4,5}; k=2 → b only.
        let keys = ["a", "a", "b", "a", "c", "c"];
        assert_eq!(undersized_rows(keys, 2), vec![2]);
        // k=3 → b and c rows, sorted.
        assert_eq!(undersized_rows(keys, 3), vec![2, 4, 5]);
        // k=1 → nothing; empty input → nothing.
        assert!(undersized_rows(keys, 1).is_empty());
        assert!(undersized_rows(Vec::<u64>::new(), 10).is_empty());
    }
}

//! Usage metrics in bound form (Eq. 4) and their evaluation.
//!
//! ```text
//! InfLoss_i ≤ bd_i   for every generalized column i
//! InfLoss   ≤ bd_avg
//! ```
//!
//! The paper enforces these bounds *off-line*, translating them once into a
//! set of maximal generalization nodes per tree (that translation lives in
//! `medshield-binning::maximal`). The bound form is still useful to verify a
//! finished binning/watermarking run and is what the Fig. 13 experiment
//! reports against.

use crate::info_loss::{column_info_loss, ColumnGeneralization, MetricsError};
use medshield_relation::Table;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Maximal allowable information loss, per column and on average (Eq. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageBounds {
    /// Per-column bounds `bd_i`, keyed by column name. Columns without an
    /// entry are bounded only by `bd_avg`.
    pub per_column: BTreeMap<String, f64>,
    /// Bound on the normalized (average) information loss `bd_avg`.
    pub average: f64,
}

impl UsageBounds {
    /// Uniform bounds: the same `bound` for every listed column and for the
    /// average.
    pub fn uniform(columns: &[&str], bound: f64) -> Self {
        UsageBounds {
            per_column: columns.iter().map(|c| (c.to_string(), bound)).collect(),
            average: bound,
        }
    }

    /// Unconstrained metrics (every loss allowed) — useful in tests and when
    /// the maximal generalization nodes are given directly, which is the
    /// simplification the paper's own experiments make (§7).
    pub fn unconstrained() -> Self {
        UsageBounds { per_column: BTreeMap::new(), average: 1.0 }
    }

    /// The bound for a column, defaulting to the average bound.
    pub fn bound_for(&self, column: &str) -> f64 {
        *self.per_column.get(column).unwrap_or(&self.average)
    }

    /// Evaluate the bounds against a table and its per-column
    /// generalizations. Returns a full per-column report.
    pub fn check(
        &self,
        table: &Table,
        columns: &[ColumnGeneralization<'_>],
    ) -> Result<UsageCheck, MetricsError> {
        let mut per_column = BTreeMap::new();
        let mut sum = 0.0;
        for cg in columns {
            let loss = column_info_loss(table, cg)?;
            sum += loss;
            let bound = self.bound_for(cg.column);
            per_column.insert(
                cg.column.to_string(),
                ColumnCheck { loss, bound, ok: loss <= bound + EPS },
            );
        }
        let average_loss = if columns.is_empty() { 0.0 } else { sum / columns.len() as f64 };
        Ok(UsageCheck {
            per_column,
            average_loss,
            average_bound: self.average,
            average_ok: average_loss <= self.average + EPS,
        })
    }
}

/// Numerical slack for bound comparisons.
const EPS: f64 = 1e-9;

/// Loss vs bound for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnCheck {
    /// Measured information loss.
    pub loss: f64,
    /// The applicable bound.
    pub bound: f64,
    /// `loss ≤ bound`.
    pub ok: bool,
}

/// Result of evaluating [`UsageBounds`] over a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageCheck {
    /// Per-column results.
    pub per_column: BTreeMap<String, ColumnCheck>,
    /// Measured normalized loss (Eq. 3).
    pub average_loss: f64,
    /// The average bound.
    pub average_bound: f64,
    /// `average_loss ≤ average_bound`.
    pub average_ok: bool,
}

impl UsageCheck {
    /// True when every per-column bound and the average bound hold.
    pub fn all_ok(&self) -> bool {
        self.average_ok && self.per_column.values().all(|c| c.ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info_loss::ColumnGeneralization;
    use medshield_dht::builder::CategoricalNodeSpec;
    use medshield_dht::GeneralizationSet;
    use medshield_relation::{ColumnDef, ColumnRole, Schema, Value};

    fn tree() -> medshield_dht::DomainHierarchyTree {
        CategoricalNodeSpec::internal(
            "root",
            vec![
                CategoricalNodeSpec::internal(
                    "left",
                    vec![CategoricalNodeSpec::leaf("a"), CategoricalNodeSpec::leaf("b")],
                ),
                CategoricalNodeSpec::internal(
                    "right",
                    vec![CategoricalNodeSpec::leaf("c"), CategoricalNodeSpec::leaf("d")],
                ),
            ],
        )
        .build("col")
        .unwrap()
    }

    fn table() -> Table {
        let schema =
            Schema::new(vec![ColumnDef::new("col", ColumnRole::QuasiCategorical)]).unwrap();
        let mut t = Table::new(schema);
        for v in ["a", "b", "c", "d"] {
            t.insert(vec![Value::text(v)]).unwrap();
        }
        t
    }

    #[test]
    fn bound_for_falls_back_to_average() {
        let b = UsageBounds::uniform(&["x"], 0.3);
        assert_eq!(b.bound_for("x"), 0.3);
        assert_eq!(b.bound_for("unlisted"), 0.3);
        let u = UsageBounds::unconstrained();
        assert_eq!(u.bound_for("anything"), 1.0);
    }

    #[test]
    fn check_passes_within_bounds() {
        let tr = tree();
        let t = table();
        let left = tr.node_by_label("left").unwrap();
        let right = tr.node_by_label("right").unwrap();
        let g = GeneralizationSet::new(&tr, vec![left, right]).unwrap();
        let cols = [ColumnGeneralization { column: "col", tree: &tr, generalization: &g }];
        // Loss = (4·1/4)/4 = 0.25
        let bounds = UsageBounds::uniform(&["col"], 0.3);
        let check = bounds.check(&t, &cols).unwrap();
        assert!(check.all_ok());
        assert!((check.average_loss - 0.25).abs() < 1e-12);
        assert!(check.per_column["col"].ok);
    }

    #[test]
    fn check_fails_beyond_bounds() {
        let tr = tree();
        let t = table();
        let g = GeneralizationSet::root_only(&tr);
        let cols = [ColumnGeneralization { column: "col", tree: &tr, generalization: &g }];
        // Loss = 3/4 = 0.75 > 0.3
        let bounds = UsageBounds::uniform(&["col"], 0.3);
        let check = bounds.check(&t, &cols).unwrap();
        assert!(!check.all_ok());
        assert!(!check.per_column["col"].ok);
        assert!(!check.average_ok);
    }

    #[test]
    fn boundary_value_counts_as_ok() {
        let tr = tree();
        let t = table();
        let left = tr.node_by_label("left").unwrap();
        let right = tr.node_by_label("right").unwrap();
        let g = GeneralizationSet::new(&tr, vec![left, right]).unwrap();
        let cols = [ColumnGeneralization { column: "col", tree: &tr, generalization: &g }];
        let bounds = UsageBounds::uniform(&["col"], 0.25);
        assert!(bounds.check(&t, &cols).unwrap().all_ok());
    }

    #[test]
    fn empty_column_list_is_trivially_ok() {
        let bounds = UsageBounds::unconstrained();
        let check = bounds.check(&table(), &[]).unwrap();
        assert!(check.all_ok());
        assert_eq!(check.average_loss, 0.0);
    }
}

//! Information loss: Equations (1), (2) and (3) of the paper.
//!
//! For a categorical column `c` whose generalization produced nodes
//! `{p_1..p_M}` with `S_i` the leaves under `p_i` and `n_i` the number of
//! entries of `c` falling in `S_i`:
//!
//! ```text
//!              Σ_i  n_i · (|S_i| − 1) / |S|
//! InfLoss_c =  ───────────────────────────          (Eq. 1)
//!                       Σ_i  n_i
//! ```
//!
//! For a numeric column generalized into intervals `[L_i, U_i)` over the
//! domain `[L, U)`:
//!
//! ```text
//!              Σ_i  n_i · (U_i − L_i) / (U − L)
//! InfLoss_c =  ────────────────────────────────     (Eq. 2)
//!                       Σ_i  n_i
//! ```
//!
//! The normalized loss of the whole table is the average over the generalized
//! columns (Eq. 3).

use medshield_dht::{DhtError, DhtKind, DomainHierarchyTree, GeneralizationSet};
use medshield_relation::{RelationError, Table};

/// Errors from information-loss computation.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricsError {
    /// Underlying relational error (unknown column, …).
    Relation(RelationError),
    /// Underlying DHT error (value out of domain, …).
    Dht(DhtError),
    /// The column has no entries, so the loss is undefined.
    EmptyColumn(String),
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::Relation(e) => write!(f, "relation error: {e}"),
            MetricsError::Dht(e) => write!(f, "dht error: {e}"),
            MetricsError::EmptyColumn(c) => write!(f, "column {c} has no entries"),
        }
    }
}

impl std::error::Error for MetricsError {}

impl From<RelationError> for MetricsError {
    fn from(e: RelationError) -> Self {
        MetricsError::Relation(e)
    }
}

impl From<DhtError> for MetricsError {
    fn from(e: DhtError) -> Self {
        MetricsError::Dht(e)
    }
}

/// A column together with the tree and generalization applied to it — the
/// unit over which information loss is defined.
#[derive(Debug, Clone)]
pub struct ColumnGeneralization<'a> {
    /// Column name in the table.
    pub column: &'a str,
    /// Domain hierarchy tree for the column.
    pub tree: &'a DomainHierarchyTree,
    /// The generalization whose loss is being measured.
    pub generalization: &'a GeneralizationSet,
}

/// Information loss of one column under a generalization (Eq. 1 for
/// categorical trees, Eq. 2 for numeric trees). The table may hold either the
/// original specific values or already-binned values; both are mapped to
/// their covering generalization node.
pub fn column_info_loss(table: &Table, cg: &ColumnGeneralization<'_>) -> Result<f64, MetricsError> {
    let values = table.column_values(cg.column)?;
    if values.is_empty() {
        return Err(MetricsError::EmptyColumn(cg.column.to_string()));
    }

    // n_i per generalization node.
    let mut counts: std::collections::HashMap<medshield_dht::NodeId, usize> =
        std::collections::HashMap::new();
    for v in &values {
        let node = cg.generalization.node_for_value(cg.tree, v)?;
        *counts.entry(node).or_insert(0) += 1;
    }

    let total: usize = counts.values().sum();
    let loss_sum: f64 = match cg.tree.kind() {
        DhtKind::Categorical => {
            let s_total = cg.tree.leaf_count() as f64;
            counts
                .iter()
                .map(|(&node, &n_i)| {
                    let s_i = cg.tree.leaf_count_under(node).unwrap_or(1) as f64;
                    n_i as f64 * (s_i - 1.0) / s_total
                })
                .sum()
        }
        DhtKind::Numeric => {
            let (dom_lo, dom_hi) = cg
                .tree
                .node(cg.tree.root())
                .map_err(MetricsError::Dht)?
                .interval
                .expect("numeric root has an interval");
            let span = (dom_hi - dom_lo) as f64;
            counts
                .iter()
                .map(|(&node, &n_i)| {
                    let (lo, hi) = cg
                        .tree
                        .node(node)
                        .expect("node exists")
                        .interval
                        .expect("numeric node has an interval");
                    n_i as f64 * ((hi - lo) as f64) / span
                })
                .sum()
        }
    };
    Ok(loss_sum / total as f64)
}

/// Normalized information loss of the table: the average of the per-column
/// losses over all generalized columns (Eq. 3).
pub fn table_info_loss(
    table: &Table,
    columns: &[ColumnGeneralization<'_>],
) -> Result<f64, MetricsError> {
    if columns.is_empty() {
        return Ok(0.0);
    }
    let mut sum = 0.0;
    for cg in columns {
        sum += column_info_loss(table, cg)?;
    }
    Ok(sum / columns.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_dht::builder::{numeric_binary_tree, CategoricalNodeSpec};
    use medshield_dht::GeneralizationSet;
    use medshield_relation::{ColumnDef, ColumnRole, Schema, Value};

    fn role_tree() -> DomainHierarchyTree {
        CategoricalNodeSpec::internal(
            "Person",
            vec![
                CategoricalNodeSpec::internal(
                    "Doctor",
                    vec![
                        CategoricalNodeSpec::leaf("Surgeon"),
                        CategoricalNodeSpec::leaf("Physician"),
                    ],
                ),
                CategoricalNodeSpec::internal(
                    "Paramedic",
                    vec![
                        CategoricalNodeSpec::leaf("Pharmacist"),
                        CategoricalNodeSpec::leaf("Nurse"),
                        CategoricalNodeSpec::leaf("Consultant"),
                    ],
                ),
            ],
        )
        .build("role")
        .unwrap()
    }

    fn table_with(values: &[&str]) -> Table {
        let schema =
            Schema::new(vec![ColumnDef::new("role", ColumnRole::QuasiCategorical)]).unwrap();
        let mut t = Table::new(schema);
        for v in values {
            t.insert(vec![Value::text(*v)]).unwrap();
        }
        t
    }

    #[test]
    fn categorical_loss_zero_when_ungeneralized() {
        let tree = role_tree();
        let table = table_with(&["Surgeon", "Nurse", "Pharmacist"]);
        let g = GeneralizationSet::all_leaves(&tree);
        let cg = ColumnGeneralization { column: "role", tree: &tree, generalization: &g };
        assert!((column_info_loss(&table, &cg).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn categorical_loss_matches_eq1_by_hand() {
        // Generalization {Doctor, Paramedic}: |S| = 5 leaves total.
        // Doctor covers 2 leaves (|S_1|-1 = 1), Paramedic covers 3 (|S_2|-1 = 2).
        // With 4 Surgeon entries and 6 Nurse entries:
        //   InfLoss = (4·1/5 + 6·2/5) / 10 = (0.8 + 2.4) / 10 = 0.32
        let tree = role_tree();
        let mut entries = vec!["Surgeon"; 4];
        entries.extend(vec!["Nurse"; 6]);
        let table = table_with(&entries);
        let doctor = tree.node_by_label("Doctor").unwrap();
        let paramedic = tree.node_by_label("Paramedic").unwrap();
        let g = GeneralizationSet::new(&tree, vec![doctor, paramedic]).unwrap();
        let cg = ColumnGeneralization { column: "role", tree: &tree, generalization: &g };
        let loss = column_info_loss(&table, &cg).unwrap();
        assert!((loss - 0.32).abs() < 1e-12, "loss = {loss}");
    }

    #[test]
    fn categorical_loss_mixed_levels() {
        // Broader generalization: Surgeon and Physician stay as leaves
        // (|S_i|=1 → zero contribution), Paramedic generalizes its 3 leaves.
        let tree = role_tree();
        let table = table_with(&["Surgeon", "Physician", "Nurse", "Consultant"]);
        let surgeon = tree.node_by_label("Surgeon").unwrap();
        let physician = tree.node_by_label("Physician").unwrap();
        let paramedic = tree.node_by_label("Paramedic").unwrap();
        let g = GeneralizationSet::new(&tree, vec![surgeon, physician, paramedic]).unwrap();
        let cg = ColumnGeneralization { column: "role", tree: &tree, generalization: &g };
        // (1·0 + 1·0 + 2·(3-1)/5) / 4 = 0.8/4 = 0.2
        let loss = column_info_loss(&table, &cg).unwrap();
        assert!((loss - 0.2).abs() < 1e-12, "loss = {loss}");
    }

    #[test]
    fn categorical_loss_works_on_already_binned_values() {
        let tree = role_tree();
        // Values already generalized to the internal labels.
        let table = table_with(&["Doctor", "Paramedic", "Paramedic"]);
        let doctor = tree.node_by_label("Doctor").unwrap();
        let paramedic = tree.node_by_label("Paramedic").unwrap();
        let g = GeneralizationSet::new(&tree, vec![doctor, paramedic]).unwrap();
        let cg = ColumnGeneralization { column: "role", tree: &tree, generalization: &g };
        // (1·1/5 + 2·2/5)/3 = (0.2+0.8)/3 = 1/3
        let loss = column_info_loss(&table, &cg).unwrap();
        assert!((loss - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn numeric_loss_matches_eq2_by_hand() {
        // Domain [0,100) in four leaves of width 25, generalization
        // {[0,50), [50,100)}. Three entries in [0,50), one in [50,100):
        //   InfLoss = (3·50/100 + 1·50/100) / 4 = 0.5
        let tree = numeric_binary_tree("age", &[(0, 25), (25, 50), (50, 75), (75, 100)]).unwrap();
        let schema = Schema::new(vec![ColumnDef::new("age", ColumnRole::QuasiNumeric)]).unwrap();
        let mut table = Table::new(schema);
        for v in [10, 30, 40, 80] {
            table.insert(vec![Value::int(v)]).unwrap();
        }
        let lo = tree.node_for_value(&Value::interval(0, 50)).unwrap();
        let hi = tree.node_for_value(&Value::interval(50, 100)).unwrap();
        let g = GeneralizationSet::new(&tree, vec![lo, hi]).unwrap();
        let cg = ColumnGeneralization { column: "age", tree: &tree, generalization: &g };
        let loss = column_info_loss(&table, &cg).unwrap();
        assert!((loss - 0.5).abs() < 1e-12, "loss = {loss}");
    }

    #[test]
    fn numeric_loss_of_leaf_generalization_is_leaf_width_fraction() {
        let tree = numeric_binary_tree("age", &[(0, 25), (25, 50), (50, 75), (75, 100)]).unwrap();
        let schema = Schema::new(vec![ColumnDef::new("age", ColumnRole::QuasiNumeric)]).unwrap();
        let mut table = Table::new(schema);
        for v in [10, 30, 80] {
            table.insert(vec![Value::int(v)]).unwrap();
        }
        let g = GeneralizationSet::all_leaves(&tree);
        let cg = ColumnGeneralization { column: "age", tree: &tree, generalization: &g };
        // Every leaf has width 25 over a 100-wide domain → 0.25 each.
        let loss = column_info_loss(&table, &cg).unwrap();
        assert!((loss - 0.25).abs() < 1e-12);
    }

    #[test]
    fn table_loss_is_average_of_columns() {
        let role = role_tree();
        let age = numeric_binary_tree("age", &[(0, 50), (50, 100)]).unwrap();
        let schema = Schema::new(vec![
            ColumnDef::new("role", ColumnRole::QuasiCategorical),
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
        ])
        .unwrap();
        let mut table = Table::new(schema);
        table.insert(vec![Value::text("Surgeon"), Value::int(20)]).unwrap();
        table.insert(vec![Value::text("Nurse"), Value::int(70)]).unwrap();

        let g_role = GeneralizationSet::root_only(&role);
        let g_age = GeneralizationSet::all_leaves(&age);
        let cols = [
            ColumnGeneralization { column: "role", tree: &role, generalization: &g_role },
            ColumnGeneralization { column: "age", tree: &age, generalization: &g_age },
        ];
        // role loss = (5-1)/5 = 0.8 for every entry; age loss = 0.5 each.
        let loss = table_info_loss(&table, &cols).unwrap();
        assert!((loss - (0.8 + 0.5) / 2.0).abs() < 1e-12, "loss = {loss}");
    }

    #[test]
    fn empty_column_is_an_error_and_empty_spec_is_zero() {
        let tree = role_tree();
        let table = table_with(&[]);
        let g = GeneralizationSet::all_leaves(&tree);
        let cg = ColumnGeneralization { column: "role", tree: &tree, generalization: &g };
        assert!(matches!(column_info_loss(&table, &cg), Err(MetricsError::EmptyColumn(_))));
        assert_eq!(table_info_loss(&table, &[]).unwrap(), 0.0);
    }

    #[test]
    fn out_of_domain_value_is_an_error() {
        let tree = role_tree();
        let table = table_with(&["Astronaut"]);
        let g = GeneralizationSet::all_leaves(&tree);
        let cg = ColumnGeneralization { column: "role", tree: &tree, generalization: &g };
        assert!(matches!(column_info_loss(&table, &cg), Err(MetricsError::Dht(_))));
    }

    #[test]
    fn loss_is_monotone_in_generalization_height() {
        let tree = role_tree();
        let table = table_with(&["Surgeon", "Nurse", "Pharmacist", "Physician"]);
        let leaves = GeneralizationSet::all_leaves(&tree);
        let doctor = tree.node_by_label("Doctor").unwrap();
        let paramedic = tree.node_by_label("Paramedic").unwrap();
        let mid = GeneralizationSet::new(&tree, vec![doctor, paramedic]).unwrap();
        let root = GeneralizationSet::root_only(&tree);
        fn mk<'a>(
            tree: &'a DomainHierarchyTree,
            g: &'a GeneralizationSet,
        ) -> ColumnGeneralization<'a> {
            ColumnGeneralization { column: "role", tree, generalization: g }
        }
        let l0 = column_info_loss(&table, &mk(&tree, &leaves)).unwrap();
        let l1 = column_info_loss(&table, &mk(&tree, &mid)).unwrap();
        let l2 = column_info_loss(&table, &mk(&tree, &root)).unwrap();
        assert!(l0 < l1 && l1 < l2, "{l0} < {l1} < {l2}");
    }
}

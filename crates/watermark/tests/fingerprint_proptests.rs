//! Property tests for the per-recipient fingerprint model.
//!
//! The release/copy refinement only works if two things hold for *every*
//! choice of recipients and mark length:
//!
//! 1. **Pairwise distinct** — different recipients always get different
//!    fingerprints, so their copies are tellable apart;
//! 2. **Detection-equivalent for the owner** — every copy is detected with
//!    the owner key exactly like a single-mark release: the same tuples are
//!    selected, the same positions are covered, and a clean detect pass
//!    recovers that recipient's bits exactly.

use medshield_binning::{BinningAgent, BinningConfig, BinningOutcome};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use medshield_dht::GeneralizationSet;
use medshield_watermark::{
    FingerprintDeriver, HierarchicalWatermarker, WatermarkConfig, WatermarkKey,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// One shared binned dataset: the binning state depends on neither the
/// recipients nor the mark length, so every proptest case reuses it.
fn binned() -> &'static (MedicalDataset, BinningOutcome) {
    static BINNED: OnceLock<(MedicalDataset, BinningOutcome)> = OnceLock::new();
    BINNED.get_or_init(|| {
        let ds = MedicalDataset::generate(&DatasetConfig::small(900));
        let agent = BinningAgent::new(BinningConfig::with_k(4));
        let maximal: BTreeMap<String, GeneralizationSet> = ds
            .trees
            .iter()
            .map(|(name, tree)| (name.clone(), GeneralizationSet::at_depth(tree, 0)))
            .collect();
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).expect("binning succeeds");
        (ds, outcome)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn per_recipient_copies_are_distinct_but_detection_equivalent(
        recipients in 2usize..5,
        mark_len in 8usize..33,
    ) {
        let (ds, binned) = binned();
        let key = WatermarkKey::from_master(b"owner-secret", 4);
        let wm = HierarchicalWatermarker::new(WatermarkConfig::new(key.clone()));
        let deriver = FingerprintDeriver::new(&key, mark_len);
        let names: Vec<String> =
            (0..recipients).map(|i| format!("recipient-{i}")).collect();
        let marks: Vec<_> = names.iter().map(|n| deriver.derive(n)).collect();

        // Pairwise distinct fingerprints.
        for i in 0..marks.len() {
            for j in i + 1..marks.len() {
                prop_assert_ne!(&marks[i], &marks[j]);
            }
        }

        // Embed each recipient's copy and detect it with the owner key.
        let mut structure = None;
        for (name, mark) in names.iter().zip(&marks) {
            let (copy, report) = wm.embed(binned, &ds.trees, mark).expect("embedding succeeds");
            prop_assert!(report.selected_tuples > 0);
            let detected =
                wm.detect(&copy, &binned.columns, &ds.trees, mark_len).expect("detection succeeds");
            // A clean detect pass recovers exactly this recipient's bits.
            prop_assert!(
                detected.mark == mark.bits(),
                "copy for {name} did not detect to its own fingerprint"
            );
            // Detection-equivalence: every copy selects the same tuples and
            // covers the same positions — the owner's one detection
            // configuration serves all copies.
            let shape = (detected.selected_tuples, detected.covered_positions, detected.wmd_len);
            match structure {
                None => structure = Some(shape),
                Some(expected) => prop_assert!(
                    shape == expected,
                    "copy for {name} has a different detection structure"
                ),
            }
        }
    }
}

//! Per-recipient fingerprints and traitor tracing.
//!
//! The paper embeds one mark per outsourced release, but a data owner who
//! hands the same table to many recipients needs to know *which* recipient
//! leaked. This module refines the release model to **one release, many
//! per-recipient copies**: every copy carries a mark derived from the owner's
//! key and the recipient's identity via the labeled PRF, so
//!
//! * no new key material is stored per recipient — the derivation label *is*
//!   the recipient id, and the owner key alone regenerates every fingerprint;
//! * all copies of a release are detection-equivalent for the owner: the same
//!   selection key, η, and binning state drive detection, so one detect pass
//!   over a leaked table recovers whichever recipient's bits it carries;
//! * the recovered bits are ranked against all registered recipients by
//!   [`score_recipients`], and the top score names the leaker (or, under
//!   collusion, a member of the colluding set — positions where colluders
//!   agree survive averaging/majority mixing, so a colluder still outranks
//!   every innocent recipient in expectation).
//!
//! Embedding a fingerprint is the ordinary columnar batch path: the derived
//! [`Mark`] feeds the same plan/kernel machinery (midstate-cached HMAC, one
//! wide PRF per (tuple, column), per-dictionary-code memoization) as a
//! single-mark release — there is no separate row-at-a-time fingerprint
//! embedder to keep columnar.

use crate::key::{Mark, WatermarkKey};
use medshield_crypto::KeyedPrf;

/// The derivation label prefix for per-recipient fingerprints. Domain
/// separation from the permutation/bit-index labels used by the embedding
/// kernels is what allows the fingerprint to be derived from `k2` without
/// correlating with the embedding positions.
const FINGERPRINT_LABEL: &str = "fingerprint";

/// Derives per-recipient fingerprint marks from one owner key.
///
/// The deriver caches the midstate-expanded HMAC of `k2` once, so deriving a
/// fleet of recipient marks (the `protect-for` batch path) costs two midstate
/// clones per digest rather than a key schedule per recipient.
#[derive(Debug, Clone)]
pub struct FingerprintDeriver {
    prf: KeyedPrf,
    mark_len: usize,
}

impl FingerprintDeriver {
    /// A deriver for `mark_len`-bit fingerprints under `key`.
    pub fn new(key: &WatermarkKey, mark_len: usize) -> Self {
        FingerprintDeriver { prf: key.permutation_prf(), mark_len }
    }

    /// The configured fingerprint length in bits.
    pub fn mark_len(&self) -> usize {
        self.mark_len
    }

    /// Derive the fingerprint mark for `recipient`. Deterministic in
    /// (key, recipient, mark_len); distinct recipients get independent bits
    /// because the recipient id is the PRF data under a dedicated label.
    pub fn derive(&self, recipient: &str) -> Mark {
        let mut bits = Vec::with_capacity(self.mark_len);
        let mut counter = 0u32;
        while bits.len() < self.mark_len {
            let mut data = recipient.as_bytes().to_vec();
            data.extend_from_slice(&counter.to_be_bytes());
            let digest = self.prf.labeled_digest(FINGERPRINT_LABEL, &data);
            'bytes: for byte in digest {
                for i in (0..8).rev() {
                    if bits.len() == self.mark_len {
                        break 'bytes;
                    }
                    bits.push((byte >> i) & 1 == 1);
                }
            }
            counter += 1;
        }
        Mark::from_bits(bits)
    }
}

/// Derive a single recipient's fingerprint mark. Convenience wrapper over
/// [`FingerprintDeriver`] for one-off derivations (e.g. re-deriving the
/// fingerprint at dispute time).
pub fn derive_recipient_mark(key: &WatermarkKey, recipient: &str, mark_len: usize) -> Mark {
    FingerprintDeriver::new(key, mark_len).derive(recipient)
}

/// The agreement between one recipient's fingerprint and the bits recovered
/// from a leaked table.
#[derive(Debug, Clone, PartialEq)]
pub struct RecipientScore {
    /// The recipient's identity (the derivation label).
    pub name: String,
    /// Fraction of compared positions where the recovered bit equals the
    /// recipient's fingerprint bit, in `[0, 1]`. An innocent recipient sits
    /// near 0.5 (independent bits); the leaker near 1.0 minus the attack's
    /// bit-flip rate.
    pub score: f64,
    /// Number of positions where the bits agree.
    pub matching_bits: usize,
    /// Number of positions compared (`min` of the two lengths).
    pub compared_bits: usize,
}

/// Rank every candidate recipient of a release against the mark bits
/// recovered from a leaked table, best match first (ties broken by name so
/// the ranking is deterministic). An empty candidate list yields an empty
/// ranking; a zero-length comparison scores 0.
pub fn score_recipients<'a, I>(recovered: &[bool], candidates: I) -> Vec<RecipientScore>
where
    I: IntoIterator<Item = (&'a str, &'a Mark)>,
{
    let mut scores: Vec<RecipientScore> = candidates
        .into_iter()
        .map(|(name, mark)| {
            let compared = recovered.len().min(mark.len());
            let matching = recovered
                .iter()
                .zip(mark.bits())
                .filter(|(recovered_bit, mark_bit)| recovered_bit == mark_bit)
                .count();
            let score = if compared == 0 { 0.0 } else { matching as f64 / compared as f64 };
            RecipientScore {
                name: name.to_string(),
                score,
                matching_bits: matching,
                compared_bits: compared,
            }
        })
        .collect();
    scores.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.name.cmp(&b.name))
    });
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> WatermarkKey {
        WatermarkKey::from_master(b"owner-secret", 10)
    }

    #[test]
    fn derivation_is_deterministic_and_length_exact() {
        for len in [1usize, 8, 20, 64, 300] {
            let m = derive_recipient_mark(&key(), "clinic-a", len);
            assert_eq!(m.len(), len);
            assert_eq!(m, derive_recipient_mark(&key(), "clinic-a", len));
            assert_eq!(m, FingerprintDeriver::new(&key(), len).derive("clinic-a"));
        }
    }

    #[test]
    fn distinct_recipients_get_distinct_marks() {
        let deriver = FingerprintDeriver::new(&key(), 20);
        assert_eq!(deriver.mark_len(), 20);
        let a = deriver.derive("clinic-a");
        let b = deriver.derive("clinic-b");
        assert_ne!(a, b);
        // Different owner keys decouple the fingerprints entirely.
        let other = WatermarkKey::from_master(b"other-owner", 10);
        assert_ne!(a, derive_recipient_mark(&other, "clinic-a", 20));
    }

    #[test]
    fn fingerprints_are_independent_of_the_embedding_labels() {
        // The fingerprint must not be predictable from the permutation PRF's
        // unlabeled values (same key, different domain-separation label).
        let k = key();
        let fp = derive_recipient_mark(&k, "clinic-a", 64);
        let raw = Mark::from_bytes(&k.permutation_prf().digest(b"clinic-a"), 64);
        assert_ne!(fp, raw);
    }

    #[test]
    fn scoring_ranks_the_exact_match_first() {
        let deriver = FingerprintDeriver::new(&key(), 20);
        let marks: Vec<(String, Mark)> = ["clinic-a", "clinic-b", "clinic-c"]
            .iter()
            .map(|n| (n.to_string(), deriver.derive(n)))
            .collect();
        let leaked = marks[1].1.bits().to_vec();
        let ranking = score_recipients(&leaked, marks.iter().map(|(n, m)| (n.as_str(), m)));
        assert_eq!(ranking.len(), 3);
        assert_eq!(ranking[0].name, "clinic-b");
        assert_eq!(ranking[0].score, 1.0);
        assert_eq!(ranking[0].matching_bits, 20);
        assert_eq!(ranking[0].compared_bits, 20);
        assert!(ranking[1].score < 1.0);
    }

    #[test]
    fn scoring_survives_bit_flips() {
        // Flip 3 of 20 bits (a 15% alteration): the true recipient must still
        // outrank the others.
        let deriver = FingerprintDeriver::new(&key(), 20);
        let names = ["clinic-a", "clinic-b", "clinic-c", "clinic-d"];
        let marks: Vec<(String, Mark)> =
            names.iter().map(|n| (n.to_string(), deriver.derive(n))).collect();
        let mut leaked = marks[2].1.bits().to_vec();
        for pos in [1usize, 7, 13] {
            leaked[pos] = !leaked[pos];
        }
        let ranking = score_recipients(&leaked, marks.iter().map(|(n, m)| (n.as_str(), m)));
        assert_eq!(ranking[0].name, "clinic-c");
        assert_eq!(ranking[0].matching_bits, 17);
    }

    #[test]
    fn scoring_is_deterministic_under_ties() {
        let m = Mark::from_bits(vec![true, false]);
        let same = Mark::from_bits(vec![true, false]);
        let ranking = score_recipients(&[true, false], [("zeta", &m), ("alpha", &same)]);
        assert_eq!(ranking[0].name, "alpha");
        assert_eq!(ranking[1].name, "zeta");
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        assert!(score_recipients(&[true], std::iter::empty()).is_empty());
        let m = Mark::from_bits(vec![true]);
        let ranking = score_recipients(&[], [("a", &m)]);
        assert_eq!(ranking[0].score, 0.0);
        assert_eq!(ranking[0].compared_bits, 0);
    }
}

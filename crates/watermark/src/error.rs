//! Error type for the watermarking agent.

use crate::voting::VotingError;
use medshield_dht::DhtError;
use medshield_relation::RelationError;

/// Errors raised while embedding or detecting a watermark.
#[derive(Debug, Clone, PartialEq)]
pub enum WatermarkError {
    /// A column to be watermarked has no domain hierarchy tree configured.
    MissingTree(String),
    /// A column to be watermarked has no binning state (maximal/ultimate
    /// generalization nodes).
    MissingBinning(String),
    /// Underlying relational error.
    Relation(RelationError),
    /// Underlying DHT error.
    Dht(DhtError),
    /// The mark is empty or otherwise unusable.
    EmptyMark,
    /// η must be at least 1.
    InvalidEta,
    /// The table exposes no identifying column and no virtual key columns
    /// were configured.
    NoIdentity,
    /// A virtual-key column list names the same column twice; the duplicate
    /// would silently weaken the tuple identity, so it is rejected.
    DuplicateIdentityColumn(String),
    /// A detection vote violated the voting contract (length mismatch,
    /// out-of-range position, unusable weight).
    Voting(VotingError),
}

impl std::fmt::Display for WatermarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatermarkError::MissingTree(c) => write!(f, "no domain hierarchy tree for column {c}"),
            WatermarkError::MissingBinning(c) => write!(f, "no binning state for column {c}"),
            WatermarkError::Relation(e) => write!(f, "relation error: {e}"),
            WatermarkError::Dht(e) => write!(f, "dht error: {e}"),
            WatermarkError::EmptyMark => write!(f, "the mark must contain at least one bit"),
            WatermarkError::InvalidEta => write!(f, "eta must be at least 1"),
            WatermarkError::NoIdentity => {
                write!(f, "no identifying columns available and no virtual key configured")
            }
            WatermarkError::DuplicateIdentityColumn(c) => {
                write!(f, "virtual key names column {c} more than once")
            }
            WatermarkError::Voting(e) => write!(f, "voting contract violated: {e}"),
        }
    }
}

impl std::error::Error for WatermarkError {}

impl From<RelationError> for WatermarkError {
    fn from(e: RelationError) -> Self {
        WatermarkError::Relation(e)
    }
}

impl From<DhtError> for WatermarkError {
    fn from(e: DhtError) -> Self {
        WatermarkError::Dht(e)
    }
}

impl From<VotingError> for WatermarkError {
    fn from(e: VotingError) -> Self {
        WatermarkError::Voting(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(WatermarkError::MissingTree("age".into()).to_string().contains("age"));
        assert!(WatermarkError::EmptyMark.to_string().contains("at least one bit"));
        assert!(WatermarkError::InvalidEta.to_string().contains("eta"));
        assert!(WatermarkError::NoIdentity.to_string().contains("identifying"));
        let e = WatermarkError::Voting(VotingError::IndexOutOfRange { index: 9, len: 3 });
        assert!(e.to_string().contains("voting contract"));
    }
}

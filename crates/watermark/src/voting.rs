//! Majority voting used by watermark detection (§5.3).
//!
//! The hierarchical scheme recovers several copies of the same bit from one
//! embedding position (one per tree level between the ultimate and maximal
//! generalization nodes) and many embedding positions per mark bit (multiple
//! embedding). Both reductions are majority votes; the per-level vote can
//! optionally weight copies from higher levels more heavily, "enforcing the
//! policy that the copy from a higher level is more reliable than that from a
//! lower level".

/// `MajorVot`: unweighted majority of a slice of bits. Ties and empty input
/// resolve to `false`.
pub fn majority(bits: &[bool]) -> bool {
    let ones = bits.iter().filter(|&&b| b).count();
    ones * 2 > bits.len()
}

/// Weighted majority. `bits[i]` carries `weights[i]` votes; missing weights
/// default to 1. Ties and empty input resolve to `false`.
pub fn weighted_majority(bits: &[bool], weights: &[f64]) -> bool {
    let mut ones = 0.0;
    let mut total = 0.0;
    for (i, &b) in bits.iter().enumerate() {
        let w = weights.get(i).copied().unwrap_or(1.0).max(0.0);
        total += w;
        if b {
            ones += w;
        }
    }
    ones * 2.0 > total
}

/// Weights for `level_count` copies collected bottom-up (index 0 is the level
/// right above the ultimate node, the last index is right below the maximal
/// node). Higher levels receive linearly larger weights.
pub fn level_weights(level_count: usize) -> Vec<f64> {
    (0..level_count).map(|i| (i + 1) as f64).collect()
}

/// An accumulator of votes for the bits of the extended mark `wmd`.
#[derive(Debug, Clone)]
pub struct VoteAccumulator {
    ones: Vec<f64>,
    totals: Vec<f64>,
}

impl VoteAccumulator {
    /// An accumulator for `len` bit positions.
    pub fn new(len: usize) -> Self {
        VoteAccumulator { ones: vec![0.0; len], totals: vec![0.0; len] }
    }

    /// Number of bit positions the accumulator tracks.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// True if the accumulator tracks no positions.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// Record a vote of weight `weight` for position `index`.
    pub fn vote(&mut self, index: usize, bit: bool, weight: f64) {
        if index >= self.totals.len() || weight <= 0.0 {
            return;
        }
        self.totals[index] += weight;
        if bit {
            self.ones[index] += weight;
        }
    }

    /// Fold another accumulator's votes into this one, position by position.
    /// Both accumulators must track the same number of positions (they come
    /// from the same detection run, split over row chunks). Vote weights are
    /// small integral counts in practice, so the floating-point sums are
    /// exact and merging chunk tallies in any order reproduces the sequential
    /// accumulation bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the accumulators have different lengths.
    pub fn merge(&mut self, other: &VoteAccumulator) {
        assert_eq!(
            self.totals.len(),
            other.totals.len(),
            "cannot merge vote accumulators of different lengths"
        );
        for (mine, theirs) in self.ones.iter_mut().zip(other.ones.iter()) {
            *mine += theirs;
        }
        for (mine, theirs) in self.totals.iter_mut().zip(other.totals.iter()) {
            *mine += theirs;
        }
    }

    /// The resolved bit at each position: `Some(bit)` where votes exist,
    /// `None` where the position received no vote.
    pub fn resolve(&self) -> Vec<Option<bool>> {
        self.ones
            .iter()
            .zip(self.totals.iter())
            .map(|(&o, &t)| if t == 0.0 { None } else { Some(o * 2.0 > t) })
            .collect()
    }

    /// Number of positions that received at least one vote.
    pub fn covered_positions(&self) -> usize {
        self.totals.iter().filter(|&&t| t > 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_basic() {
        assert!(!majority(&[]));
        assert!(majority(&[true]));
        assert!(!majority(&[false]));
        assert!(majority(&[true, true, false]));
        assert!(!majority(&[true, false]));
        assert!(!majority(&[true, false, false]));
    }

    #[test]
    fn weighted_majority_respects_weights() {
        // One heavy true vote beats two light false votes.
        assert!(weighted_majority(&[true, false, false], &[5.0, 1.0, 1.0]));
        assert!(!weighted_majority(&[true, false, false], &[1.0, 1.0, 1.0]));
        // Missing weights default to 1.
        assert!(weighted_majority(&[true, true, false], &[]));
        // Negative weights are clamped to zero.
        assert!(!weighted_majority(&[true, false], &[-3.0, 1.0]));
        assert!(!weighted_majority(&[], &[]));
    }

    #[test]
    fn level_weights_increase_with_level() {
        let w = level_weights(4);
        assert_eq!(w, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(level_weights(0).is_empty());
    }

    /// The detection threshold τ for a position is a strict majority of its
    /// votes. Exactly at the threshold (a tie) the bit must resolve to
    /// `false`; one vote above must resolve to `true`; one below, `false`.
    #[test]
    fn majority_threshold_boundary() {
        // Even vote counts: exactly τ = half the votes is NOT a majority.
        assert!(!majority(&[true, false]));
        assert!(!majority(&[true, true, false, false]));
        // One above the boundary flips the bit...
        assert!(majority(&[true, true, false]));
        assert!(majority(&[true, true, true, false, false]));
        // ...and one below keeps it off.
        assert!(!majority(&[true, false, false]));
        assert!(!majority(&[true, true, false, false, false]));
    }

    #[test]
    fn weighted_majority_threshold_boundary() {
        // Exactly at the weighted tie: 3.0 of 6.0 total → false.
        assert!(!weighted_majority(&[true, false], &[3.0, 3.0]));
        // An epsilon above the tie → true; an epsilon below → false.
        assert!(weighted_majority(&[true, false], &[3.0 + 1e-9, 3.0]));
        assert!(!weighted_majority(&[true, false], &[3.0 - 1e-9, 3.0]));
    }

    #[test]
    fn accumulator_threshold_boundary() {
        let mut acc = VoteAccumulator::new(1);
        acc.vote(0, true, 2.0);
        acc.vote(0, false, 2.0);
        // Tied at the threshold → false.
        assert_eq!(acc.resolve(), vec![Some(false)]);
        acc.vote(0, true, 1.0);
        // One vote above → true.
        assert_eq!(acc.resolve(), vec![Some(true)]);
        acc.vote(0, false, 2.0);
        // One below → false again.
        assert_eq!(acc.resolve(), vec![Some(false)]);
    }

    #[test]
    fn merge_reproduces_sequential_accumulation() {
        // Votes accumulated in one pass...
        let mut sequential = VoteAccumulator::new(4);
        let votes = [
            (0usize, true, 1.0),
            (1, false, 1.0),
            (0, true, 1.0),
            (2, true, 2.0),
            (1, true, 1.0),
            (2, false, 1.0),
            (3, false, 1.0),
        ];
        for &(i, b, w) in &votes {
            sequential.vote(i, b, w);
        }
        // ...must equal the merge of two per-chunk accumulators, in either
        // merge order.
        for split in 0..votes.len() {
            let mut left = VoteAccumulator::new(4);
            let mut right = VoteAccumulator::new(4);
            for &(i, b, w) in &votes[..split] {
                left.vote(i, b, w);
            }
            for &(i, b, w) in &votes[split..] {
                right.vote(i, b, w);
            }
            let mut forward = left.clone();
            forward.merge(&right);
            assert_eq!(forward.resolve(), sequential.resolve(), "split {split}");
            assert_eq!(forward.covered_positions(), sequential.covered_positions());
            let mut backward = right;
            backward.merge(&left);
            assert_eq!(backward.resolve(), sequential.resolve(), "split {split} reversed");
        }
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn merge_rejects_mismatched_lengths() {
        let mut a = VoteAccumulator::new(2);
        a.merge(&VoteAccumulator::new(3));
    }

    #[test]
    fn accumulator_resolves_votes() {
        let mut acc = VoteAccumulator::new(3);
        acc.vote(0, true, 1.0);
        acc.vote(0, true, 1.0);
        acc.vote(0, false, 1.0);
        acc.vote(1, false, 2.0);
        acc.vote(1, true, 1.0);
        // Position 2 gets nothing; out-of-range and zero-weight votes ignored.
        acc.vote(9, true, 1.0);
        acc.vote(2, true, 0.0);
        assert_eq!(acc.resolve(), vec![Some(true), Some(false), None]);
        assert_eq!(acc.covered_positions(), 2);
    }
}

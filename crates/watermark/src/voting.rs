//! Majority voting used by watermark detection (§5.3).
//!
//! The hierarchical scheme recovers several copies of the same bit from one
//! embedding position (one per tree level between the ultimate and maximal
//! generalization nodes) and many embedding positions per mark bit (multiple
//! embedding). Both reductions are majority votes; the per-level vote can
//! optionally weight copies from higher levels more heavily, "enforcing the
//! policy that the copy from a higher level is more reliable than that from a
//! lower level".

/// A violated voting contract. Detection feeds votes from untrusted
/// (possibly attacked) tables, so contract violations surface as errors
/// rather than silently dropped or miscounted votes — a dropped vote could
/// flip a recovered mark bit without any trace.
#[derive(Debug, Clone, PartialEq)]
pub enum VotingError {
    /// `weighted_majority` was called with a weight slice whose length does
    /// not match the bit slice; zip-truncating would silently discard votes.
    WeightLengthMismatch {
        /// Number of bits voted on.
        bits: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// A vote targeted a position outside the accumulator.
    IndexOutOfRange {
        /// The offending position.
        index: usize,
        /// Number of positions the accumulator tracks.
        len: usize,
    },
    /// A vote carried a weight that cannot count (non-positive or non-finite).
    InvalidWeight(f64),
}

impl std::fmt::Display for VotingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VotingError::WeightLengthMismatch { bits, weights } => {
                write!(f, "{bits} bits voted on with {weights} weights; lengths must match")
            }
            VotingError::IndexOutOfRange { index, len } => {
                write!(f, "vote for position {index} is outside the {len}-position accumulator")
            }
            VotingError::InvalidWeight(w) => {
                write!(f, "vote weight {w} is not a positive finite number")
            }
        }
    }
}

impl std::error::Error for VotingError {}

/// `MajorVot`: unweighted majority of a slice of bits. Ties and empty input
/// resolve to `false`.
pub fn majority(bits: &[bool]) -> bool {
    let ones = bits.iter().filter(|&&b| b).count();
    ones * 2 > bits.len()
}

/// Weighted majority: `bits[i]` carries `weights[i]` votes. Ties and empty
/// input resolve to `false`.
///
/// The slices must have the same length — a shorter weight slice used to be
/// padded with 1s and a longer one silently zip-truncated, either of which
/// miscounts votes without a trace; both are now
/// [`VotingError::WeightLengthMismatch`]. Negative or non-finite weights
/// (formerly clamped to zero) are [`VotingError::InvalidWeight`]; an explicit
/// zero weight is allowed and contributes nothing.
pub fn weighted_majority(bits: &[bool], weights: &[f64]) -> Result<bool, VotingError> {
    if bits.len() != weights.len() {
        return Err(VotingError::WeightLengthMismatch { bits: bits.len(), weights: weights.len() });
    }
    let mut ones = 0.0;
    let mut total = 0.0;
    for (&b, &w) in bits.iter().zip(weights.iter()) {
        if !w.is_finite() || w < 0.0 {
            return Err(VotingError::InvalidWeight(w));
        }
        total += w;
        if b {
            ones += w;
        }
    }
    Ok(ones * 2.0 > total)
}

/// Weights for `level_count` copies collected bottom-up (index 0 is the level
/// right above the ultimate node, the last index is right below the maximal
/// node). Higher levels receive linearly larger weights.
pub fn level_weights(level_count: usize) -> Vec<f64> {
    (0..level_count).map(|i| (i + 1) as f64).collect()
}

/// An accumulator of votes for the bits of the extended mark `wmd`.
#[derive(Debug, Clone)]
pub struct VoteAccumulator {
    ones: Vec<f64>,
    totals: Vec<f64>,
}

impl VoteAccumulator {
    /// An accumulator for `len` bit positions.
    pub fn new(len: usize) -> Self {
        VoteAccumulator { ones: vec![0.0; len], totals: vec![0.0; len] }
    }

    /// Number of bit positions the accumulator tracks.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// True if the accumulator tracks no positions.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// Record a vote of weight `weight` for position `index`.
    ///
    /// An out-of-range `index` or a non-positive / non-finite `weight` is a
    /// caller bug, not a vote: both used to be silently dropped, which could
    /// flip a recovered mark bit without any trace, and are now rejected as
    /// [`VotingError`]s.
    pub fn vote(&mut self, index: usize, bit: bool, weight: f64) -> Result<(), VotingError> {
        if index >= self.totals.len() {
            return Err(VotingError::IndexOutOfRange { index, len: self.totals.len() });
        }
        if !weight.is_finite() || weight <= 0.0 {
            return Err(VotingError::InvalidWeight(weight));
        }
        self.totals[index] += weight;
        if bit {
            self.ones[index] += weight;
        }
        Ok(())
    }

    /// Fold another accumulator's votes into this one, position by position.
    /// Both accumulators must track the same number of positions (they come
    /// from the same detection run, split over row chunks). Vote weights are
    /// small integral counts in practice, so the floating-point sums are
    /// exact and merging chunk tallies in any order reproduces the sequential
    /// accumulation bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the accumulators have different lengths.
    pub fn merge(&mut self, other: &VoteAccumulator) {
        assert_eq!(
            self.totals.len(),
            other.totals.len(),
            "cannot merge vote accumulators of different lengths"
        );
        for (mine, theirs) in self.ones.iter_mut().zip(other.ones.iter()) {
            *mine += theirs;
        }
        for (mine, theirs) in self.totals.iter_mut().zip(other.totals.iter()) {
            *mine += theirs;
        }
    }

    /// The resolved bit at each position: `Some(bit)` where votes exist,
    /// `None` where the position received no vote.
    pub fn resolve(&self) -> Vec<Option<bool>> {
        self.ones
            .iter()
            .zip(self.totals.iter())
            .map(|(&o, &t)| if t == 0.0 { None } else { Some(o * 2.0 > t) })
            .collect()
    }

    /// Number of positions that received at least one vote.
    pub fn covered_positions(&self) -> usize {
        self.totals.iter().filter(|&&t| t > 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_basic() {
        assert!(!majority(&[]));
        assert!(majority(&[true]));
        assert!(!majority(&[false]));
        assert!(majority(&[true, true, false]));
        assert!(!majority(&[true, false]));
        assert!(!majority(&[true, false, false]));
    }

    #[test]
    fn weighted_majority_respects_weights() {
        // One heavy true vote beats two light false votes.
        assert!(weighted_majority(&[true, false, false], &[5.0, 1.0, 1.0]).unwrap());
        assert!(!weighted_majority(&[true, false, false], &[1.0, 1.0, 1.0]).unwrap());
        assert!(!weighted_majority(&[], &[]).unwrap());
        // A zero weight is a vote that contributes nothing, not an error.
        assert!(weighted_majority(&[true, false], &[1.0, 0.0]).unwrap());
    }

    #[test]
    fn weighted_majority_rejects_length_mismatch() {
        // Too few weights: padding with 1s would invent votes.
        assert_eq!(
            weighted_majority(&[true, true, false], &[2.0]),
            Err(VotingError::WeightLengthMismatch { bits: 3, weights: 1 })
        );
        // Too many weights: zip-truncating would silently discard them.
        assert_eq!(
            weighted_majority(&[true], &[1.0, 9.0]),
            Err(VotingError::WeightLengthMismatch { bits: 1, weights: 2 })
        );
        // Exact lengths at the boundary are fine.
        assert!(weighted_majority(&[true], &[1.0]).unwrap());
    }

    #[test]
    fn weighted_majority_rejects_bad_weights() {
        assert_eq!(
            weighted_majority(&[true, false], &[-3.0, 1.0]),
            Err(VotingError::InvalidWeight(-3.0))
        );
        assert!(matches!(
            weighted_majority(&[true], &[f64::NAN]),
            Err(VotingError::InvalidWeight(_))
        ));
        assert!(matches!(
            weighted_majority(&[true], &[f64::INFINITY]),
            Err(VotingError::InvalidWeight(_))
        ));
    }

    #[test]
    fn level_weights_increase_with_level() {
        let w = level_weights(4);
        assert_eq!(w, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(level_weights(0).is_empty());
    }

    /// The detection threshold τ for a position is a strict majority of its
    /// votes. Exactly at the threshold (a tie) the bit must resolve to
    /// `false`; one vote above must resolve to `true`; one below, `false`.
    #[test]
    fn majority_threshold_boundary() {
        // Even vote counts: exactly τ = half the votes is NOT a majority.
        assert!(!majority(&[true, false]));
        assert!(!majority(&[true, true, false, false]));
        // One above the boundary flips the bit...
        assert!(majority(&[true, true, false]));
        assert!(majority(&[true, true, true, false, false]));
        // ...and one below keeps it off.
        assert!(!majority(&[true, false, false]));
        assert!(!majority(&[true, true, false, false, false]));
    }

    #[test]
    fn weighted_majority_threshold_boundary() {
        // Exactly at the weighted tie: 3.0 of 6.0 total → false.
        assert!(!weighted_majority(&[true, false], &[3.0, 3.0]).unwrap());
        // An epsilon above the tie → true; an epsilon below → false.
        assert!(weighted_majority(&[true, false], &[3.0 + 1e-9, 3.0]).unwrap());
        assert!(!weighted_majority(&[true, false], &[3.0 - 1e-9, 3.0]).unwrap());
    }

    #[test]
    fn accumulator_threshold_boundary() {
        let mut acc = VoteAccumulator::new(1);
        acc.vote(0, true, 2.0).unwrap();
        acc.vote(0, false, 2.0).unwrap();
        // Tied at the threshold → false.
        assert_eq!(acc.resolve(), vec![Some(false)]);
        acc.vote(0, true, 1.0).unwrap();
        // One vote above → true.
        assert_eq!(acc.resolve(), vec![Some(true)]);
        acc.vote(0, false, 2.0).unwrap();
        // One below → false again.
        assert_eq!(acc.resolve(), vec![Some(false)]);
    }

    #[test]
    fn merge_reproduces_sequential_accumulation() {
        // Votes accumulated in one pass...
        let mut sequential = VoteAccumulator::new(4);
        let votes = [
            (0usize, true, 1.0),
            (1, false, 1.0),
            (0, true, 1.0),
            (2, true, 2.0),
            (1, true, 1.0),
            (2, false, 1.0),
            (3, false, 1.0),
        ];
        for &(i, b, w) in &votes {
            sequential.vote(i, b, w).unwrap();
        }
        // ...must equal the merge of two per-chunk accumulators, in either
        // merge order.
        for split in 0..votes.len() {
            let mut left = VoteAccumulator::new(4);
            let mut right = VoteAccumulator::new(4);
            for &(i, b, w) in &votes[..split] {
                left.vote(i, b, w).unwrap();
            }
            for &(i, b, w) in &votes[split..] {
                right.vote(i, b, w).unwrap();
            }
            let mut forward = left.clone();
            forward.merge(&right);
            assert_eq!(forward.resolve(), sequential.resolve(), "split {split}");
            assert_eq!(forward.covered_positions(), sequential.covered_positions());
            let mut backward = right;
            backward.merge(&left);
            assert_eq!(backward.resolve(), sequential.resolve(), "split {split} reversed");
        }
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn merge_rejects_mismatched_lengths() {
        let mut a = VoteAccumulator::new(2);
        a.merge(&VoteAccumulator::new(3));
    }

    #[test]
    fn accumulator_resolves_votes() {
        let mut acc = VoteAccumulator::new(3);
        acc.vote(0, true, 1.0).unwrap();
        acc.vote(0, true, 1.0).unwrap();
        acc.vote(0, false, 1.0).unwrap();
        acc.vote(1, false, 2.0).unwrap();
        acc.vote(1, true, 1.0).unwrap();
        // Position 2 receives no vote and resolves to None.
        assert_eq!(acc.resolve(), vec![Some(true), Some(false), None]);
        assert_eq!(acc.covered_positions(), 2);
    }

    #[test]
    fn accumulator_rejects_invalid_votes() {
        let mut acc = VoteAccumulator::new(3);
        // The last valid index is len-1; one past it is an error.
        acc.vote(2, true, 1.0).unwrap();
        assert_eq!(acc.vote(3, true, 1.0), Err(VotingError::IndexOutOfRange { index: 3, len: 3 }));
        assert_eq!(acc.vote(9, true, 1.0), Err(VotingError::IndexOutOfRange { index: 9, len: 3 }));
        // Zero, negative and non-finite weights cannot count as votes.
        assert_eq!(acc.vote(0, true, 0.0), Err(VotingError::InvalidWeight(0.0)));
        assert_eq!(acc.vote(0, true, -1.0), Err(VotingError::InvalidWeight(-1.0)));
        assert!(matches!(acc.vote(0, true, f64::NAN), Err(VotingError::InvalidWeight(_))));
        // A rejected vote must leave the tallies untouched.
        assert_eq!(acc.resolve(), vec![None, None, Some(true)]);
        assert_eq!(acc.covered_positions(), 1);
        // An empty accumulator rejects every index.
        let mut empty = VoteAccumulator::new(0);
        assert_eq!(
            empty.vote(0, true, 1.0),
            Err(VotingError::IndexOutOfRange { index: 0, len: 0 })
        );
    }

    #[test]
    fn voting_error_display_is_informative() {
        let e = VotingError::WeightLengthMismatch { bits: 3, weights: 1 };
        assert!(e.to_string().contains("3 bits"));
        assert!(e.to_string().contains("1 weights"));
        let e = VotingError::IndexOutOfRange { index: 9, len: 3 };
        assert!(e.to_string().contains("position 9"));
        assert!(VotingError::InvalidWeight(-1.0).to_string().contains("-1"));
    }
}

//! The single-level watermarking scheme of §5.2 — the baseline that the
//! generalization attack defeats.
//!
//! The scheme permutes values only at the level of the ultimate
//! generalization nodes: the bit is carried by the parity of the chosen
//! node's index within its sorted sibling set. Because the bit lives at that
//! one level only, an attacker who further generalizes every value (which is
//! still an allowable generalization as long as the maximal nodes permit it)
//! destroys the embedded bits without knowing the watermarking key. The
//! hierarchical scheme in [`crate::hierarchical`] exists precisely to close
//! this hole; this module is kept as the comparison baseline used in the
//! ablation experiment.

use crate::error::WatermarkError;
use crate::key::{Mark, WatermarkConfig};
use crate::select::{set_parity, Selector, TupleIdentity};
use crate::voting::VoteAccumulator;
use medshield_binning::{BinningOutcome, ColumnBinning};
use medshield_dht::{DomainHierarchyTree, GeneralizationSet, NodeId};
use medshield_relation::{Table, TupleId};
use std::collections::BTreeMap;

/// The single-level watermarking agent (baseline).
#[derive(Debug, Clone)]
pub struct SingleLevelWatermarker {
    config: WatermarkConfig,
}

impl SingleLevelWatermarker {
    /// Create an agent from a configuration.
    pub fn new(config: WatermarkConfig) -> Self {
        SingleLevelWatermarker { config }
    }

    fn target_columns<'a>(&self, columns: &'a [ColumnBinning]) -> Vec<&'a ColumnBinning> {
        match &self.config.columns {
            Some(wanted) => columns.iter().filter(|c| wanted.contains(&c.column)).collect(),
            None => columns.iter().collect(),
        }
    }

    /// Embed the mark by permuting each selected value within the sibling set
    /// of its ultimate generalization node.
    pub fn embed(
        &self,
        binned: &BinningOutcome,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        mark: &Mark,
    ) -> Result<Table, WatermarkError> {
        if mark.is_empty() {
            return Err(WatermarkError::EmptyMark);
        }
        let selector = Selector::new(&self.config.key)?;
        let identity = TupleIdentity::from_virtual_columns(&self.config.virtual_key_columns);
        let wmd = mark.duplicate(self.config.duplication);
        let columns = self.target_columns(&binned.columns);
        for c in &columns {
            if !trees.contains_key(&c.column) {
                return Err(WatermarkError::MissingTree(c.column.clone()));
            }
        }

        let mut table = binned.table.snapshot();
        let mut edits: Vec<(TupleId, String, medshield_relation::Value)> = Vec::new();
        for tuple in table.iter() {
            let ident = identity.bytes(&table, tuple)?;
            if !selector.selects(&ident) {
                continue;
            }
            for cb in &columns {
                let tree = &trees[&cb.column];
                let col_idx = table.schema().index_of(&cb.column)?;
                let value = &tuple.values[col_idx];
                if value.is_null() {
                    continue;
                }
                let Ok(node) = cb.ultimate.node_for_value(tree, value) else {
                    continue;
                };
                let bit = wmd[selector.bit_index(&ident, &cb.column, wmd.len())];
                let Some(new_node) =
                    permute_at_level(tree, &cb.ultimate, node, &selector, &ident, &cb.column, bit)?
                else {
                    continue;
                };
                let new_value = tree.node_value(new_node).map_err(WatermarkError::Dht)?;
                edits.push((tuple.id, cb.column.clone(), new_value));
            }
        }
        for (id, column, value) in edits {
            table.set_value(id, &column, value)?;
        }
        Ok(table)
    }

    /// Detect the mark by reading the parity of each selected value's
    /// ultimate-node index within its sibling set. Values that are no longer
    /// ultimate generalization nodes (e.g. after a generalization attack)
    /// yield no vote — which is exactly the scheme's weakness.
    pub fn detect(
        &self,
        table: &Table,
        columns: &[ColumnBinning],
        trees: &BTreeMap<String, DomainHierarchyTree>,
        mark_len: usize,
    ) -> Result<Vec<bool>, WatermarkError> {
        if mark_len == 0 {
            return Err(WatermarkError::EmptyMark);
        }
        let selector = Selector::new(&self.config.key)?;
        let identity = TupleIdentity::from_virtual_columns(&self.config.virtual_key_columns);
        let wmd_len = mark_len * self.config.duplication.max(1);
        let columns = self.target_columns(columns);

        let mut acc = VoteAccumulator::new(wmd_len);
        for tuple in table.iter() {
            let Ok(ident) = identity.bytes(table, tuple) else { continue };
            if !selector.selects(&ident) {
                continue;
            }
            for cb in &columns {
                let Some(tree) = trees.get(&cb.column) else { continue };
                let Ok(col_idx) = table.schema().index_of(&cb.column) else { continue };
                let value = &tuple.values[col_idx];
                let Ok(node) = tree.node_for_value(value) else { continue };
                if !cb.ultimate.contains(node) {
                    // The value no longer sits at the ultimate level: the
                    // single-level bit is gone.
                    continue;
                }
                let siblings = tree.siblings(node).map_err(WatermarkError::Dht)?;
                if siblings.len() <= 1 {
                    // A singleton sibling set carries no information (the
                    // embedder skipped it too).
                    continue;
                }
                let Some(idx) = DomainHierarchyTree::index_in(node, &siblings) else { continue };
                let bit = idx % 2 == 1;
                let pos = selector.bit_index(&ident, &cb.column, wmd_len);
                acc.vote(pos, bit, 1.0);
            }
        }
        Ok(Mark::fold_majority(&acc.resolve(), mark_len))
    }
}

/// Permute `node` within its sibling set so that the chosen sibling's index
/// parity encodes `bit`; if the chosen sibling is not an ultimate
/// generalization node, continue downward among its children until one is
/// reached. Returns `None` if the sibling set is a singleton (no bandwidth).
fn permute_at_level(
    tree: &DomainHierarchyTree,
    ultimate: &GeneralizationSet,
    node: NodeId,
    selector: &Selector,
    ident: &[u8],
    column: &str,
    bit: bool,
) -> Result<Option<NodeId>, WatermarkError> {
    let siblings = tree.siblings(node).map_err(WatermarkError::Dht)?;
    if siblings.len() <= 1 {
        return Ok(None);
    }
    let raw = selector.permutation_index(ident, column, siblings.len());
    let idx = set_parity(raw, bit, siblings.len());
    let mut target = siblings[idx];
    // Descend until we land on an ultimate generalization node, so the value
    // remains a valid binned value.
    loop {
        if ultimate.contains(target) {
            return Ok(Some(target));
        }
        let children = tree.children(target).map_err(WatermarkError::Dht)?;
        if children.is_empty() {
            // The sibling's subtree holds no ultimate node (it lies above the
            // ultimate level); give up on this cell rather than emit an
            // invalid value.
            return Ok(None);
        }
        let raw = selector.permutation_index(ident, column, children.len());
        let idx = set_parity(raw, bit, children.len());
        target = children[idx];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::WatermarkKey;
    use medshield_binning::{BinningAgent, BinningConfig};
    use medshield_datagen::{DatasetConfig, MedicalDataset};
    use medshield_metrics::mark_loss;

    fn binned(n: usize, k: usize) -> (MedicalDataset, BinningOutcome) {
        let ds = MedicalDataset::generate(&DatasetConfig::small(n));
        let agent = BinningAgent::new(BinningConfig::with_k(k));
        let maximal: BTreeMap<String, GeneralizationSet> = ds
            .trees
            .iter()
            .map(|(name, tree)| (name.clone(), GeneralizationSet::at_depth(tree, 1)))
            .collect();
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        (ds, outcome)
    }

    #[test]
    fn single_level_roundtrip_without_attack() {
        let (ds, outcome) = binned(1200, 4);
        let key = WatermarkKey::from_master(b"owner", 8);
        let wm = SingleLevelWatermarker::new(WatermarkConfig::new(key));
        let mark = Mark::from_bytes(b"single-level", 20);
        let marked = wm.embed(&outcome, &ds.trees, &mark).unwrap();
        let detected = wm.detect(&marked, &outcome.columns, &ds.trees, mark.len()).unwrap();
        let loss = mark_loss(mark.bits(), &detected);
        assert!(
            loss <= 0.1,
            "clean single-level detection should mostly recover the mark (loss {loss})"
        );
    }

    #[test]
    fn values_stay_at_ultimate_level() {
        let (ds, outcome) = binned(600, 4);
        let key = WatermarkKey::from_master(b"owner", 6);
        let wm = SingleLevelWatermarker::new(WatermarkConfig::new(key));
        let mark = Mark::from_bytes(b"x", 16);
        let marked = wm.embed(&outcome, &ds.trees, &mark).unwrap();
        for cb in &outcome.columns {
            let tree = &ds.trees[&cb.column];
            for v in marked.column_values(&cb.column).unwrap() {
                let node = tree.node_for_value(v).unwrap();
                assert!(cb.ultimate.contains(node));
            }
        }
    }

    #[test]
    fn empty_mark_rejected() {
        let (ds, outcome) = binned(50, 2);
        let key = WatermarkKey::from_master(b"owner", 4);
        let wm = SingleLevelWatermarker::new(WatermarkConfig::new(key));
        assert!(matches!(
            wm.embed(&outcome, &ds.trees, &Mark::from_bits(vec![])),
            Err(WatermarkError::EmptyMark)
        ));
        assert!(matches!(
            wm.detect(&outcome.table, &outcome.columns, &ds.trees, 0),
            Err(WatermarkError::EmptyMark)
        ));
    }
}

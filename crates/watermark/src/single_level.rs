//! The single-level watermarking scheme of §5.2 — the baseline that the
//! generalization attack defeats.
//!
//! The scheme permutes values only at the level of the ultimate
//! generalization nodes: the bit is carried by the parity of the chosen
//! node's index within its sorted sibling set. Because the bit lives at that
//! one level only, an attacker who further generalizes every value (which is
//! still an allowable generalization as long as the maximal nodes permit it)
//! destroys the embedded bits without knowing the watermarking key. The
//! hierarchical scheme in [`crate::hierarchical`] exists precisely to close
//! this hole; this module is kept as the comparison baseline used in the
//! ablation experiment.

use crate::error::WatermarkError;
use crate::kernel::{single_level_cell_vote, DetectKernel, EmbedKernel, EmbedStyle};
use crate::key::{Mark, WatermarkConfig};
use crate::plan::{DetectPlan, EmbedPlan};
use medshield_binning::{BinningOutcome, ColumnBinning};
use medshield_dht::DomainHierarchyTree;
use medshield_relation::Table;
use std::collections::BTreeMap;

/// The single-level watermarking agent (baseline).
#[derive(Debug, Clone)]
pub struct SingleLevelWatermarker {
    config: WatermarkConfig,
}

impl SingleLevelWatermarker {
    /// Create an agent from a configuration.
    pub fn new(config: WatermarkConfig) -> Self {
        SingleLevelWatermarker { config }
    }

    /// Precompute the run-wide embedding state; see
    /// [`HierarchicalWatermarker::plan_embed`](crate::HierarchicalWatermarker::plan_embed).
    pub fn plan_embed<'a>(
        &self,
        schema: &medshield_relation::Schema,
        binning_columns: &'a [ColumnBinning],
        trees: &'a BTreeMap<String, DomainHierarchyTree>,
        mark: &Mark,
    ) -> Result<EmbedPlan<'a>, WatermarkError> {
        EmbedPlan::build(&self.config, schema, binning_columns, trees, mark)
    }

    /// Prepare the columnar embedding kernel; see
    /// [`HierarchicalWatermarker::prepare_embed`](crate::HierarchicalWatermarker::prepare_embed).
    pub fn prepare_embed(
        &self,
        plan: &EmbedPlan<'_>,
        table: &mut Table,
    ) -> Result<EmbedKernel, WatermarkError> {
        EmbedKernel::prepare(plan, table, EmbedStyle::SingleLevel)
    }

    /// Embed the mark by permuting each selected value within the sibling set
    /// of its ultimate generalization node.
    pub fn embed(
        &self,
        binned: &BinningOutcome,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        mark: &Mark,
    ) -> Result<Table, WatermarkError> {
        let plan = self.plan_embed(binned.table.schema(), &binned.columns, trees, mark)?;
        let mut table = binned.table.snapshot();
        let kernel = self.prepare_embed(&plan, &mut table)?;
        let chunk = kernel.run_range(&plan, &table, 0..table.len())?;
        kernel.apply(&plan, &mut table, vec![chunk])?;
        Ok(table)
    }

    /// Precompute the run-wide detection state; see
    /// [`HierarchicalWatermarker::plan_detect`](crate::HierarchicalWatermarker::plan_detect).
    pub fn plan_detect<'a>(
        &self,
        schema: &medshield_relation::Schema,
        columns: &'a [ColumnBinning],
        trees: &'a BTreeMap<String, DomainHierarchyTree>,
        mark_len: usize,
    ) -> Result<DetectPlan<'a>, WatermarkError> {
        DetectPlan::build(&self.config, schema, columns, trees, mark_len)
    }

    /// Prepare the columnar detection kernel; see
    /// [`HierarchicalWatermarker::prepare_detect`](crate::HierarchicalWatermarker::prepare_detect).
    pub fn prepare_detect(
        &self,
        plan: &DetectPlan<'_>,
        table: &Table,
    ) -> Result<DetectKernel, WatermarkError> {
        DetectKernel::prepare(plan, table, single_level_cell_vote)
    }

    /// Detect the mark by reading the parity of each selected value's
    /// ultimate-node index within its sibling set. Values that are no longer
    /// ultimate generalization nodes (e.g. after a generalization attack)
    /// yield no vote — which is exactly the scheme's weakness.
    pub fn detect(
        &self,
        table: &Table,
        columns: &[ColumnBinning],
        trees: &BTreeMap<String, DomainHierarchyTree>,
        mark_len: usize,
    ) -> Result<Vec<bool>, WatermarkError> {
        let plan = self.plan_detect(table.schema(), columns, trees, mark_len)?;
        let kernel = self.prepare_detect(&plan, table)?;
        let tally = kernel.run_range(&plan, table, 0..table.len())?;
        Ok(tally.into_report(mark_len).mark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::WatermarkKey;
    use medshield_binning::{BinningAgent, BinningConfig};
    use medshield_datagen::{DatasetConfig, MedicalDataset};
    use medshield_dht::GeneralizationSet;
    use medshield_metrics::mark_loss;

    fn binned(n: usize, k: usize) -> (MedicalDataset, BinningOutcome) {
        let ds = MedicalDataset::generate(&DatasetConfig::small(n));
        let agent = BinningAgent::new(BinningConfig::with_k(k));
        let maximal: BTreeMap<String, GeneralizationSet> = ds
            .trees
            .iter()
            .map(|(name, tree)| (name.clone(), GeneralizationSet::at_depth(tree, 1)))
            .collect();
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        (ds, outcome)
    }

    #[test]
    fn single_level_roundtrip_without_attack() {
        let (ds, outcome) = binned(1200, 4);
        let key = WatermarkKey::from_master(b"owner", 8);
        let wm = SingleLevelWatermarker::new(WatermarkConfig::new(key));
        let mark = Mark::from_bytes(b"single-level", 20);
        let marked = wm.embed(&outcome, &ds.trees, &mark).unwrap();
        let detected = wm.detect(&marked, &outcome.columns, &ds.trees, mark.len()).unwrap();
        let loss = mark_loss(mark.bits(), &detected);
        assert!(
            loss <= 0.1,
            "clean single-level detection should mostly recover the mark (loss {loss})"
        );
    }

    #[test]
    fn values_stay_at_ultimate_level() {
        let (ds, outcome) = binned(600, 4);
        let key = WatermarkKey::from_master(b"owner", 6);
        let wm = SingleLevelWatermarker::new(WatermarkConfig::new(key));
        let mark = Mark::from_bytes(b"x", 16);
        let marked = wm.embed(&outcome, &ds.trees, &mark).unwrap();
        for cb in &outcome.columns {
            let tree = &ds.trees[&cb.column];
            for v in marked.column_values(&cb.column).unwrap() {
                let node = tree.node_for_value(&v).unwrap();
                assert!(cb.ultimate.contains(node));
            }
        }
    }

    #[test]
    fn empty_mark_rejected() {
        let (ds, outcome) = binned(50, 2);
        let key = WatermarkKey::from_master(b"owner", 4);
        let wm = SingleLevelWatermarker::new(WatermarkConfig::new(key));
        assert!(matches!(
            wm.embed(&outcome, &ds.trees, &Mark::from_bits(vec![])),
            Err(WatermarkError::EmptyMark)
        ));
        assert!(matches!(
            wm.detect(&outcome.table, &outcome.columns, &ds.trees, 0),
            Err(WatermarkError::EmptyMark)
        ));
    }
}

//! The single-level watermarking scheme of §5.2 — the baseline that the
//! generalization attack defeats.
//!
//! The scheme permutes values only at the level of the ultimate
//! generalization nodes: the bit is carried by the parity of the chosen
//! node's index within its sorted sibling set. Because the bit lives at that
//! one level only, an attacker who further generalizes every value (which is
//! still an allowable generalization as long as the maximal nodes permit it)
//! destroys the embedded bits without knowing the watermarking key. The
//! hierarchical scheme in [`crate::hierarchical`] exists precisely to close
//! this hole; this module is kept as the comparison baseline used in the
//! ablation experiment.

use crate::error::WatermarkError;
use crate::hierarchical::DetectionTally;
use crate::key::{Mark, WatermarkConfig};
use crate::plan::{DetectPlan, EmbedPlan};
use crate::select::{set_parity, Selector};
use medshield_binning::{BinningOutcome, ColumnBinning};
use medshield_dht::{DomainHierarchyTree, GeneralizationSet, NodeId};
use medshield_relation::{Table, Tuple};
use std::collections::BTreeMap;

/// The single-level watermarking agent (baseline).
#[derive(Debug, Clone)]
pub struct SingleLevelWatermarker {
    config: WatermarkConfig,
}

impl SingleLevelWatermarker {
    /// Create an agent from a configuration.
    pub fn new(config: WatermarkConfig) -> Self {
        SingleLevelWatermarker { config }
    }

    /// Precompute the run-wide embedding state; see
    /// [`HierarchicalWatermarker::plan_embed`](crate::HierarchicalWatermarker::plan_embed).
    pub fn plan_embed<'a>(
        &self,
        schema: &medshield_relation::Schema,
        binning_columns: &'a [ColumnBinning],
        trees: &'a BTreeMap<String, DomainHierarchyTree>,
        mark: &Mark,
    ) -> Result<EmbedPlan<'a>, WatermarkError> {
        EmbedPlan::build(&self.config, schema, binning_columns, trees, mark)
    }

    /// Embed the planned mark into one chunk of rows, in place. Per-tuple
    /// decisions are content-keyed, so `row_offset` (the absolute index of
    /// `rows[0]`) does not influence the result; see
    /// [`HierarchicalWatermarker::embed_chunk`](crate::HierarchicalWatermarker::embed_chunk).
    pub fn embed_chunk(
        &self,
        plan: &EmbedPlan<'_>,
        rows: &mut [Tuple],
        row_offset: usize,
    ) -> Result<(), WatermarkError> {
        let _ = row_offset;
        let Some(identity) = &plan.core.identity else {
            return Ok(());
        };
        for tuple in rows.iter_mut() {
            let ident = identity.bytes(tuple);
            if !plan.core.selector.selects(&ident) {
                continue;
            }
            for pc in &plan.core.columns {
                let column = &pc.binning.column;
                let value = &tuple.values[pc.index];
                if value.is_null() {
                    continue;
                }
                let Ok(node) = pc.binning.ultimate.node_for_value(pc.tree, value) else {
                    continue;
                };
                let bit = plan.wmd[plan.core.selector.bit_index(&ident, column, plan.wmd.len())];
                let Some(new_node) = permute_at_level(
                    pc.tree,
                    &pc.binning.ultimate,
                    node,
                    &plan.core.selector,
                    &ident,
                    column,
                    bit,
                )?
                else {
                    continue;
                };
                tuple.values[pc.index] =
                    pc.tree.node_value(new_node).map_err(WatermarkError::Dht)?;
            }
        }
        Ok(())
    }

    /// Embed the mark by permuting each selected value within the sibling set
    /// of its ultimate generalization node.
    pub fn embed(
        &self,
        binned: &BinningOutcome,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        mark: &Mark,
    ) -> Result<Table, WatermarkError> {
        let plan = self.plan_embed(binned.table.schema(), &binned.columns, trees, mark)?;
        let mut table = binned.table.snapshot();
        self.embed_chunk(&plan, table.tuples_mut(), 0)?;
        Ok(table)
    }

    /// Precompute the run-wide detection state; see
    /// [`HierarchicalWatermarker::plan_detect`](crate::HierarchicalWatermarker::plan_detect).
    pub fn plan_detect<'a>(
        &self,
        schema: &medshield_relation::Schema,
        columns: &'a [ColumnBinning],
        trees: &'a BTreeMap<String, DomainHierarchyTree>,
        mark_len: usize,
    ) -> Result<DetectPlan<'a>, WatermarkError> {
        DetectPlan::build(&self.config, schema, columns, trees, mark_len)
    }

    /// Collect single-level detection votes from one chunk of rows.
    pub fn detect_chunk(
        &self,
        plan: &DetectPlan<'_>,
        rows: &[Tuple],
        row_offset: usize,
    ) -> Result<DetectionTally, WatermarkError> {
        let _ = row_offset;
        let mut tally = DetectionTally::new(plan.wmd_len());
        let Some(identity) = &plan.core.identity else {
            // No virtual-key columns in the suspect table: zero votes.
            return Ok(tally);
        };
        for tuple in rows {
            let ident = identity.bytes(tuple);
            if !plan.core.selector.selects(&ident) {
                continue;
            }
            tally.note_selected();
            for pc in &plan.core.columns {
                let value = &tuple.values[pc.index];
                let Ok(node) = pc.tree.node_for_value(value) else { continue };
                if !pc.binning.ultimate.contains(node) {
                    // The value no longer sits at the ultimate level: the
                    // single-level bit is gone.
                    continue;
                }
                let siblings = pc.tree.siblings(node).map_err(WatermarkError::Dht)?;
                if siblings.len() <= 1 {
                    // A singleton sibling set carries no information (the
                    // embedder skipped it too).
                    continue;
                }
                let Some(idx) = DomainHierarchyTree::index_in(node, &siblings) else { continue };
                let bit = idx % 2 == 1;
                let pos = plan.core.selector.bit_index(&ident, &pc.binning.column, plan.wmd_len());
                tally.vote(pos, bit, 1.0)?;
            }
        }
        Ok(tally)
    }

    /// Detect the mark by reading the parity of each selected value's
    /// ultimate-node index within its sibling set. Values that are no longer
    /// ultimate generalization nodes (e.g. after a generalization attack)
    /// yield no vote — which is exactly the scheme's weakness.
    pub fn detect(
        &self,
        table: &Table,
        columns: &[ColumnBinning],
        trees: &BTreeMap<String, DomainHierarchyTree>,
        mark_len: usize,
    ) -> Result<Vec<bool>, WatermarkError> {
        let plan = self.plan_detect(table.schema(), columns, trees, mark_len)?;
        let tally = self.detect_chunk(&plan, table.tuples(), 0)?;
        Ok(tally.into_report(mark_len).mark)
    }
}

/// Permute `node` within its sibling set so that the chosen sibling's index
/// parity encodes `bit`; if the chosen sibling is not an ultimate
/// generalization node, continue downward among its children until one is
/// reached. Returns `None` if the sibling set is a singleton (no bandwidth).
fn permute_at_level(
    tree: &DomainHierarchyTree,
    ultimate: &GeneralizationSet,
    node: NodeId,
    selector: &Selector,
    ident: &[u8],
    column: &str,
    bit: bool,
) -> Result<Option<NodeId>, WatermarkError> {
    let siblings = tree.siblings(node).map_err(WatermarkError::Dht)?;
    if siblings.len() <= 1 {
        return Ok(None);
    }
    let raw = selector.permutation_index(ident, column, siblings.len());
    let idx = set_parity(raw, bit, siblings.len());
    let mut target = siblings[idx];
    // Descend until we land on an ultimate generalization node, so the value
    // remains a valid binned value.
    loop {
        if ultimate.contains(target) {
            return Ok(Some(target));
        }
        let children = tree.children(target).map_err(WatermarkError::Dht)?;
        if children.is_empty() {
            // The sibling's subtree holds no ultimate node (it lies above the
            // ultimate level); give up on this cell rather than emit an
            // invalid value.
            return Ok(None);
        }
        let raw = selector.permutation_index(ident, column, children.len());
        let idx = set_parity(raw, bit, children.len());
        target = children[idx];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::WatermarkKey;
    use medshield_binning::{BinningAgent, BinningConfig};
    use medshield_datagen::{DatasetConfig, MedicalDataset};
    use medshield_metrics::mark_loss;

    fn binned(n: usize, k: usize) -> (MedicalDataset, BinningOutcome) {
        let ds = MedicalDataset::generate(&DatasetConfig::small(n));
        let agent = BinningAgent::new(BinningConfig::with_k(k));
        let maximal: BTreeMap<String, GeneralizationSet> = ds
            .trees
            .iter()
            .map(|(name, tree)| (name.clone(), GeneralizationSet::at_depth(tree, 1)))
            .collect();
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        (ds, outcome)
    }

    #[test]
    fn single_level_roundtrip_without_attack() {
        let (ds, outcome) = binned(1200, 4);
        let key = WatermarkKey::from_master(b"owner", 8);
        let wm = SingleLevelWatermarker::new(WatermarkConfig::new(key));
        let mark = Mark::from_bytes(b"single-level", 20);
        let marked = wm.embed(&outcome, &ds.trees, &mark).unwrap();
        let detected = wm.detect(&marked, &outcome.columns, &ds.trees, mark.len()).unwrap();
        let loss = mark_loss(mark.bits(), &detected);
        assert!(
            loss <= 0.1,
            "clean single-level detection should mostly recover the mark (loss {loss})"
        );
    }

    #[test]
    fn values_stay_at_ultimate_level() {
        let (ds, outcome) = binned(600, 4);
        let key = WatermarkKey::from_master(b"owner", 6);
        let wm = SingleLevelWatermarker::new(WatermarkConfig::new(key));
        let mark = Mark::from_bytes(b"x", 16);
        let marked = wm.embed(&outcome, &ds.trees, &mark).unwrap();
        for cb in &outcome.columns {
            let tree = &ds.trees[&cb.column];
            for v in marked.column_values(&cb.column).unwrap() {
                let node = tree.node_for_value(v).unwrap();
                assert!(cb.ultimate.contains(node));
            }
        }
    }

    #[test]
    fn empty_mark_rejected() {
        let (ds, outcome) = binned(50, 2);
        let key = WatermarkKey::from_master(b"owner", 4);
        let wm = SingleLevelWatermarker::new(WatermarkConfig::new(key));
        assert!(matches!(
            wm.embed(&outcome, &ds.trees, &Mark::from_bits(vec![])),
            Err(WatermarkError::EmptyMark)
        ));
        assert!(matches!(
            wm.detect(&outcome.table, &outcome.columns, &ds.trees, 0),
            Err(WatermarkError::EmptyMark)
        ));
    }
}

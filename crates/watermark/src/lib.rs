//! # medshield-watermark
//!
//! The watermarking agent of the MedShield framework (Bertino et al.,
//! ICDE 2005, §5). After binning, the quasi-identifying columns are
//! essentially categorical, and the gap between the *maximal* generalization
//! nodes (allowed by the usage metrics) and the *ultimate* generalization
//! nodes (actually applied by binning) forms the bandwidth channel: permuting
//! a value among the ultimate nodes that share the same maximal node is just
//! another allowable generalization, so a keyed permutation can carry mark
//! bits without breaking data usability.
//!
//! Modules:
//!
//! * [`key`] — the secret watermarking key `(k1, k2, η)` and the [`Mark`]
//!   bit-string type.
//! * [`fingerprint`] — per-recipient fingerprint marks derived from the owner
//!   key via the labeled PRF (recipient id as derivation label, no stored key
//!   material) and the traitor-tracing scorer that ranks a release's
//!   recipients against the bits recovered from a leaked table.
//! * [`select`] — keyed tuple selection, Eq. (5): `H(ti.ident, k1) mod η = 0`,
//!   with an optional virtual primary key when the identifying columns cannot
//!   be relied on.
//! * [`hierarchical`] — the hierarchical embedding/detection algorithm of
//!   Fig. 9, which watermarks *every* level between the maximal and ultimate
//!   generalization nodes and is therefore resilient to the generalization
//!   attack.
//! * [`single_level`] — the single-level scheme of §5.2, kept as the baseline
//!   that the generalization attack defeats.
//! * [`plan`] — precomputed per-run state ([`plan::EmbedPlan`] /
//!   [`plan::DetectPlan`]) shared by workers processing disjoint row chunks;
//!   the foundation of the chunk-parallel protection engine.
//! * [`kernel`] — the columnar batch kernels behind both schemes: per-run
//!   identity codecs, per-dictionary-code memoization of the tree walks, and
//!   one wide midstate-cached PRF per (tuple, column) reduced per level.
//!   Workers scan disjoint row ranges of a shared `&Table`; embedding emits
//!   edit lists applied on the caller's thread.
//! * [`voting`] — plain and level-weighted majority voting used in detection.
//! * [`ownership`] — the rightful-ownership protocol of §5.4: the mark is
//!   `F(v)` for a statistic `v` of the clear-text identifying column, so the
//!   owner never has to present the entire original table in court.
//!
//! The ownership resolver derives the owner's mark from the original data
//! alone, so the court can recompute it at dispute time:
//!
//! ```
//! use medshield_datagen::{DatasetConfig, MedicalDataset};
//! use medshield_watermark::ownership::OwnershipProof;
//!
//! let ds = MedicalDataset::generate(&DatasetConfig::small(100));
//! let proof = OwnershipProof::from_original_table(&ds.table, 16).unwrap();
//! assert_eq!(proof.mark().len(), 16);
//! // Deterministic: the same table always yields the same mark.
//! assert_eq!(proof.mark().bits(), OwnershipProof::from_original_table(&ds.table, 16).unwrap().mark().bits());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod fingerprint;
pub mod hierarchical;
pub mod kernel;
pub mod key;
pub mod ownership;
pub mod plan;
pub mod select;
pub mod single_level;
pub mod voting;

pub use error::WatermarkError;
pub use fingerprint::{
    derive_recipient_mark, score_recipients, FingerprintDeriver, RecipientScore,
};
pub use hierarchical::{DetectionReport, DetectionTally, EmbeddingReport, HierarchicalWatermarker};
pub use kernel::{DetectKernel, EmbedChunk, EmbedKernel};
pub use key::{Mark, WatermarkConfig, WatermarkKey};
pub use ownership::{OwnershipProof, OwnershipVerdict};
pub use plan::{DetectPlan, EmbedPlan};
pub use select::{ResolvedIdentity, TupleIdentity};
pub use single_level::SingleLevelWatermarker;
pub use voting::VotingError;

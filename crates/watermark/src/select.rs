//! Tuple identity and keyed tuple selection (Eq. 5 of the paper).
//!
//! Watermarking alters only a keyed fraction of the tuples: tuple `ti` is
//! selected when `H(ti.ident, k1) mod η == 0`. The identity bytes normally
//! come from the (encrypted) identifying columns, which binning leaves intact;
//! when those cannot be relied on, a *virtual primary key* is assembled from
//! other columns (footnote 1, referencing Li/Swarup/Jajodia).

use crate::error::WatermarkError;
use crate::key::WatermarkKey;
use medshield_crypto::KeyedPrf;
use medshield_relation::{Table, Tuple};

/// How a tuple's identity bytes are derived for the keyed hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TupleIdentity {
    /// Concatenate the canonical bytes of the identifying columns (the
    /// default; these are encrypted by binning and assumed to stay intact).
    IdentifyingColumns,
    /// Concatenate the canonical bytes of the named columns (virtual primary
    /// key).
    VirtualKey(Vec<String>),
}

impl TupleIdentity {
    /// Build the identity source from a watermark configuration.
    pub fn from_virtual_columns(virtual_key_columns: &[String]) -> Self {
        if virtual_key_columns.is_empty() {
            TupleIdentity::IdentifyingColumns
        } else {
            TupleIdentity::VirtualKey(virtual_key_columns.to_vec())
        }
    }

    /// The identity bytes of `tuple` within `table`.
    pub fn bytes(&self, table: &Table, tuple: &Tuple) -> Result<Vec<u8>, WatermarkError> {
        let indices: Vec<usize> = match self {
            TupleIdentity::IdentifyingColumns => {
                let idx = table.schema().identifying_indices();
                if idx.is_empty() {
                    return Err(WatermarkError::NoIdentity);
                }
                idx
            }
            TupleIdentity::VirtualKey(columns) => {
                if columns.is_empty() {
                    return Err(WatermarkError::NoIdentity);
                }
                columns.iter().map(|c| table.schema().index_of(c)).collect::<Result<Vec<_>, _>>()?
            }
        };
        let mut out = Vec::new();
        for i in indices {
            out.extend_from_slice(&tuple.values[i].canonical_bytes());
        }
        Ok(out)
    }
}

/// The selection predicate of Eq. (5) plus the derived indices used by the
/// embedding primitive, bundled so every call site reduces hashes the same
/// way.
#[derive(Debug, Clone)]
pub struct Selector {
    selection: KeyedPrf,
    permutation: KeyedPrf,
    eta: u64,
}

impl Selector {
    /// Build a selector from the watermarking key.
    pub fn new(key: &WatermarkKey) -> Result<Self, WatermarkError> {
        if key.eta == 0 {
            return Err(WatermarkError::InvalidEta);
        }
        Ok(Selector {
            selection: key.selection_prf(),
            permutation: key.permutation_prf(),
            eta: key.eta,
        })
    }

    /// Eq. (5): is this tuple watermarked?
    pub fn selects(&self, ident: &[u8]) -> bool {
        self.selection.selects(ident, self.eta)
    }

    /// Index of the mark bit carried by this tuple in `column`
    /// (`H(ident, k2) mod |wmd|`, domain-separated per column).
    pub fn bit_index(&self, ident: &[u8], column: &str, wmd_len: usize) -> usize {
        if wmd_len == 0 {
            return 0;
        }
        self.permutation.labeled_value_mod(&format!("bit:{column}"), ident, wmd_len as u64) as usize
    }

    /// Raw permutation index for a sibling set of size `set_len`
    /// (`H(ident, k2) mod |S|`, domain-separated per column).
    pub fn permutation_index(&self, ident: &[u8], column: &str, set_len: usize) -> usize {
        if set_len == 0 {
            return 0;
        }
        self.permutation.labeled_value_mod(&format!("perm:{column}"), ident, set_len as u64)
            as usize
    }
}

/// `SetµBit`: force the least significant bit of a permutation index to the
/// mark bit, keeping the index within `set_len`. With a singleton set the bit
/// cannot be represented and index 0 is returned.
pub fn set_parity(index: usize, bit: bool, set_len: usize) -> usize {
    if set_len <= 1 {
        return 0;
    }
    let wanted = usize::from(bit);
    let candidate = (index & !1usize) | wanted;
    if candidate < set_len {
        return candidate;
    }
    // Fall back to the highest index with the right parity.
    let top = set_len - 1;
    if top % 2 == wanted {
        top
    } else {
        top - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_relation::{ColumnDef, ColumnRole, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("ssn", ColumnRole::Identifying),
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
            ColumnDef::new("doctor", ColumnRole::QuasiCategorical),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for i in 0..50 {
            t.insert(vec![
                Value::text(format!("ssn-{i}")),
                Value::int(30 + i),
                Value::text("Surgeon"),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn identity_from_identifying_columns() {
        let t = table();
        let id = TupleIdentity::IdentifyingColumns;
        let first = t.iter().next().unwrap();
        let bytes = id.bytes(&t, first).unwrap();
        assert_eq!(bytes, Value::text("ssn-0").canonical_bytes());
    }

    #[test]
    fn identity_from_virtual_key() {
        let t = table();
        let id = TupleIdentity::VirtualKey(vec!["age".into(), "doctor".into()]);
        let first = t.iter().next().unwrap();
        let bytes = id.bytes(&t, first).unwrap();
        let mut expected = Value::int(30).canonical_bytes();
        expected.extend_from_slice(&Value::text("Surgeon").canonical_bytes());
        assert_eq!(bytes, expected);
        // Unknown virtual column is an error.
        let bad = TupleIdentity::VirtualKey(vec!["nope".into()]);
        assert!(bad.bytes(&t, first).is_err());
        // Empty virtual key is rejected.
        let empty = TupleIdentity::VirtualKey(vec![]);
        assert!(matches!(empty.bytes(&t, first), Err(WatermarkError::NoIdentity)));
    }

    #[test]
    fn identity_requires_identifying_columns_when_default() {
        let schema = Schema::new(vec![ColumnDef::new("x", ColumnRole::NonIdentifying)]).unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::int(1)]).unwrap();
        let id = TupleIdentity::IdentifyingColumns;
        let first = t.iter().next().unwrap();
        assert!(matches!(id.bytes(&t, first), Err(WatermarkError::NoIdentity)));
    }

    #[test]
    fn from_virtual_columns_picks_source() {
        assert_eq!(TupleIdentity::from_virtual_columns(&[]), TupleIdentity::IdentifyingColumns);
        assert_eq!(
            TupleIdentity::from_virtual_columns(&["a".into()]),
            TupleIdentity::VirtualKey(vec!["a".into()])
        );
    }

    #[test]
    fn selector_rejects_zero_eta() {
        let key = WatermarkKey::new(b"k1".to_vec(), b"k2".to_vec(), 0);
        assert!(matches!(Selector::new(&key), Err(WatermarkError::InvalidEta)));
    }

    #[test]
    fn selection_rate_tracks_eta() {
        let key = WatermarkKey::from_master(b"secret", 10);
        let sel = Selector::new(&key).unwrap();
        let n = 10_000;
        let picked = (0..n).filter(|i| sel.selects(format!("ident-{i}").as_bytes())).count();
        let expected = n as f64 / 10.0;
        assert!(
            (picked as f64 - expected).abs() < expected * 0.3,
            "picked {picked}, expected ≈ {expected}"
        );
    }

    #[test]
    fn eta_one_selects_everything() {
        let key = WatermarkKey::from_master(b"secret", 1);
        let sel = Selector::new(&key).unwrap();
        assert!((0..100).all(|i| sel.selects(format!("id-{i}").as_bytes())));
    }

    #[test]
    fn indices_are_deterministic_and_in_range() {
        let key = WatermarkKey::from_master(b"secret", 5);
        let sel = Selector::new(&key).unwrap();
        for i in 0..200u32 {
            let ident = i.to_be_bytes();
            let b = sel.bit_index(&ident, "age", 160);
            assert!(b < 160);
            assert_eq!(b, sel.bit_index(&ident, "age", 160));
            let p = sel.permutation_index(&ident, "age", 7);
            assert!(p < 7);
        }
        // Degenerate lengths.
        assert_eq!(sel.bit_index(b"x", "age", 0), 0);
        assert_eq!(sel.permutation_index(b"x", "age", 0), 0);
    }

    #[test]
    fn column_separation_of_indices() {
        let key = WatermarkKey::from_master(b"secret", 5);
        let sel = Selector::new(&key).unwrap();
        let differing = (0..100u32)
            .filter(|i| {
                sel.bit_index(&i.to_be_bytes(), "age", 1000)
                    != sel.bit_index(&i.to_be_bytes(), "doctor", 1000)
            })
            .count();
        assert!(differing > 50, "column labels should decorrelate bit indices");
    }

    #[test]
    fn set_parity_behaviour() {
        // Even request.
        assert_eq!(set_parity(5, false, 8), 4);
        // Odd request.
        assert_eq!(set_parity(4, true, 8), 5);
        // Parity preserved when already correct.
        assert_eq!(set_parity(6, false, 8), 6);
        // Clamped to range: index 7 requested odd in a set of 7 (max 6).
        assert_eq!(set_parity(7, true, 7), 5);
        assert_eq!(set_parity(7, false, 7), 6);
        // Singleton set cannot encode.
        assert_eq!(set_parity(3, true, 1), 0);
        assert_eq!(set_parity(0, false, 1), 0);
        // Result always in range and with requested parity when set_len > 1.
        for len in 2..10usize {
            for idx in 0..len {
                for bit in [false, true] {
                    let r = set_parity(idx, bit, len);
                    assert!(r < len);
                    assert_eq!(r % 2 == 1, bit);
                }
            }
        }
    }
}

//! Tuple identity and keyed tuple selection (Eq. 5 of the paper).
//!
//! Watermarking alters only a keyed fraction of the tuples: tuple `ti` is
//! selected when `H(ti.ident, k1) mod η == 0`. The identity bytes normally
//! come from the (encrypted) identifying columns, which binning leaves intact;
//! when those cannot be relied on, a *virtual primary key* is assembled from
//! other columns (footnote 1, referencing Li/Swarup/Jajodia).

use crate::error::WatermarkError;
use crate::key::WatermarkKey;
use medshield_crypto::KeyedPrf;
use medshield_relation::{Schema, Table, Tuple};
use std::collections::BTreeSet;

/// How a tuple's identity bytes are derived for the keyed hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TupleIdentity {
    /// Concatenate the canonical bytes of the identifying columns (the
    /// default; these are encrypted by binning and assumed to stay intact).
    IdentifyingColumns,
    /// Concatenate the canonical bytes of the named columns (virtual primary
    /// key).
    VirtualKey(Vec<String>),
}

impl TupleIdentity {
    /// Build the identity source from a watermark configuration.
    pub fn from_virtual_columns(virtual_key_columns: &[String]) -> Self {
        if virtual_key_columns.is_empty() {
            TupleIdentity::IdentifyingColumns
        } else {
            TupleIdentity::VirtualKey(virtual_key_columns.to_vec())
        }
    }

    /// Resolve the identity source against a schema once, so the per-tuple
    /// byte derivation needs no table access (the chunk-parallel engine hands
    /// workers bare `&[Tuple]` slices).
    ///
    /// A [`TupleIdentity::VirtualKey`] naming the same column twice is
    /// rejected: the duplicate adds no entropy but makes two keys over
    /// different column sets (e.g. `[a, a]` and `[a]` extended ad hoc)
    /// silently produce related identities.
    pub fn resolve(&self, schema: &Schema) -> Result<ResolvedIdentity, WatermarkError> {
        let indices: Vec<usize> = match self {
            TupleIdentity::IdentifyingColumns => {
                let idx = schema.identifying_indices();
                if idx.is_empty() {
                    return Err(WatermarkError::NoIdentity);
                }
                idx
            }
            TupleIdentity::VirtualKey(columns) => {
                if columns.is_empty() {
                    return Err(WatermarkError::NoIdentity);
                }
                let mut seen = BTreeSet::new();
                for c in columns {
                    if !seen.insert(c.as_str()) {
                        return Err(WatermarkError::DuplicateIdentityColumn(c.clone()));
                    }
                }
                columns.iter().map(|c| schema.index_of(c)).collect::<Result<Vec<_>, _>>()?
            }
        };
        Ok(ResolvedIdentity { indices })
    }

    /// The identity bytes of `tuple` within `table`.
    pub fn bytes(&self, table: &Table, tuple: &Tuple) -> Result<Vec<u8>, WatermarkError> {
        Ok(self.resolve(table.schema())?.bytes(tuple))
    }
}

/// A [`TupleIdentity`] resolved against a schema: the column indices whose
/// values form a tuple's identity, ready for per-tuple use without a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedIdentity {
    indices: Vec<usize>,
}

impl ResolvedIdentity {
    /// The identity bytes of one tuple: each identity field's canonical bytes
    /// prefixed by its 64-bit big-endian length. The framing keeps the
    /// concatenation injective regardless of the field encoding — two
    /// distinct tuples cannot collide to one identity by shifting bytes
    /// across a field boundary (e.g. `("ab", "c")` vs `("a", "bc")`).
    pub fn bytes(&self, tuple: &Tuple) -> Vec<u8> {
        let mut out = Vec::new();
        for &i in &self.indices {
            let field = tuple.values[i].canonical_bytes();
            out.extend_from_slice(&(field.len() as u64).to_be_bytes());
            out.extend_from_slice(&field);
        }
        out
    }

    /// The resolved column indices, in identity order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }
}

/// The selection predicate of Eq. (5) plus the derived indices used by the
/// embedding primitive, bundled so every call site reduces hashes the same
/// way.
#[derive(Debug, Clone)]
pub struct Selector {
    selection: KeyedPrf,
    permutation: KeyedPrf,
    eta: u64,
}

impl Selector {
    /// Build a selector from the watermarking key.
    pub fn new(key: &WatermarkKey) -> Result<Self, WatermarkError> {
        if key.eta == 0 {
            return Err(WatermarkError::InvalidEta);
        }
        Ok(Selector {
            selection: key.selection_prf(),
            permutation: key.permutation_prf(),
            eta: key.eta,
        })
    }

    /// Eq. (5): is this tuple watermarked?
    pub fn selects(&self, ident: &[u8]) -> bool {
        self.selection.selects(ident, self.eta)
    }

    /// Index of the mark bit carried by this tuple in `column`
    /// (`H(ident, k2) mod |wmd|`, domain-separated per column).
    pub fn bit_index(&self, ident: &[u8], column: &str, wmd_len: usize) -> usize {
        if wmd_len == 0 {
            return 0;
        }
        self.permutation.labeled_value_mod(&format!("bit:{column}"), ident, wmd_len as u64) as usize
    }

    /// Raw permutation index for a sibling set of size `set_len`
    /// (`H(ident, k2) mod |S|`, domain-separated per column).
    pub fn permutation_index(&self, ident: &[u8], column: &str, set_len: usize) -> usize {
        if set_len == 0 {
            return 0;
        }
        self.permutation.labeled_value_mod(&format!("perm:{column}"), ident, set_len as u64)
            as usize
    }

    /// The permutation/bit-index PRF, for batch kernels that hoist the label
    /// prefix out of the row loop and reduce one wide PRF value per level
    /// ([`KeyedPrf::prefixed_value_wide`] + [`KeyedPrf::reduce_wide`] —
    /// bit-identical to [`Selector::bit_index`] /
    /// [`Selector::permutation_index`]).
    pub(crate) fn permutation_prf(&self) -> &KeyedPrf {
        &self.permutation
    }
}

/// `SetµBit`: force the least significant bit of a permutation index to the
/// mark bit, keeping the index within `set_len`. With a singleton set the bit
/// cannot be represented and index 0 is returned.
pub fn set_parity(index: usize, bit: bool, set_len: usize) -> usize {
    if set_len <= 1 {
        return 0;
    }
    let wanted = usize::from(bit);
    let candidate = (index & !1usize) | wanted;
    if candidate < set_len {
        return candidate;
    }
    // Fall back to the highest index with the right parity.
    let top = set_len - 1;
    if top % 2 == wanted {
        top
    } else {
        top - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_relation::{ColumnDef, ColumnRole, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("ssn", ColumnRole::Identifying),
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
            ColumnDef::new("doctor", ColumnRole::QuasiCategorical),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for i in 0..50 {
            t.insert(vec![
                Value::text(format!("ssn-{i}")),
                Value::int(30 + i),
                Value::text("Surgeon"),
            ])
            .unwrap();
        }
        t
    }

    /// Length-prefix one field the way [`ResolvedIdentity::bytes`] does.
    fn framed(value: &Value) -> Vec<u8> {
        let field = value.canonical_bytes();
        let mut out = (field.len() as u64).to_be_bytes().to_vec();
        out.extend_from_slice(&field);
        out
    }

    #[test]
    fn identity_from_identifying_columns() {
        let t = table();
        let id = TupleIdentity::IdentifyingColumns;
        let first = t.iter().next().unwrap();
        let bytes = id.bytes(&t, &first).unwrap();
        assert_eq!(bytes, framed(&Value::text("ssn-0")));
    }

    #[test]
    fn identity_from_virtual_key() {
        let t = table();
        let id = TupleIdentity::VirtualKey(vec!["age".into(), "doctor".into()]);
        let first = t.iter().next().unwrap();
        let bytes = id.bytes(&t, &first).unwrap();
        let mut expected = framed(&Value::int(30));
        expected.extend_from_slice(&framed(&Value::text("Surgeon")));
        assert_eq!(bytes, expected);
        // Unknown virtual column is an error.
        let bad = TupleIdentity::VirtualKey(vec!["nope".into()]);
        assert!(bad.bytes(&t, &first).is_err());
        // Empty virtual key is rejected.
        let empty = TupleIdentity::VirtualKey(vec![]);
        assert!(matches!(empty.bytes(&t, &first), Err(WatermarkError::NoIdentity)));
    }

    #[test]
    fn duplicate_virtual_key_columns_are_rejected() {
        let t = table();
        let dup = TupleIdentity::VirtualKey(vec!["age".into(), "doctor".into(), "age".into()]);
        assert!(matches!(
            dup.resolve(t.schema()),
            Err(WatermarkError::DuplicateIdentityColumn(c)) if c == "age"
        ));
        let first = t.iter().next().unwrap();
        assert!(dup.bytes(&t, &first).is_err());
    }

    #[test]
    fn identity_bytes_are_injective_under_adversarial_values() {
        // Adversarial pairs designed to collide if fields were concatenated
        // without framing: content shifted across the field boundary, empty
        // vs. missing content, and text that mimics another variant's bytes.
        let schema = Schema::new(vec![
            ColumnDef::new("a", ColumnRole::Identifying),
            ColumnDef::new("b", ColumnRole::Identifying),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        let rows: Vec<(Value, Value)> = vec![
            (Value::text("ab"), Value::text("c")),
            (Value::text("a"), Value::text("bc")),
            (Value::text("abc"), Value::text("")),
            (Value::text(""), Value::text("abc")),
            (Value::Null, Value::text("abc")),
            (Value::int(0x6162), Value::text("c")),
            (Value::interval(0, 1), Value::Null),
            (Value::Null, Value::interval(0, 1)),
        ];
        for (a, b) in rows {
            t.insert(vec![a, b]).unwrap();
        }
        let resolved = TupleIdentity::IdentifyingColumns.resolve(t.schema()).unwrap();
        let identities: Vec<Vec<u8>> = t.iter().map(|tp| resolved.bytes(&tp)).collect();
        for i in 0..identities.len() {
            for j in (i + 1)..identities.len() {
                assert_ne!(
                    identities[i], identities[j],
                    "tuples {i} and {j} collided to one identity"
                );
            }
        }
    }

    #[test]
    fn resolved_identity_matches_table_path() {
        let t = table();
        let id = TupleIdentity::VirtualKey(vec!["doctor".into(), "age".into()]);
        let resolved = id.resolve(t.schema()).unwrap();
        assert_eq!(resolved.indices(), &[2, 1]);
        for tuple in t.iter() {
            assert_eq!(resolved.bytes(&tuple), id.bytes(&t, &tuple).unwrap());
        }
    }

    #[test]
    fn identity_requires_identifying_columns_when_default() {
        let schema = Schema::new(vec![ColumnDef::new("x", ColumnRole::NonIdentifying)]).unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::int(1)]).unwrap();
        let id = TupleIdentity::IdentifyingColumns;
        let first = t.iter().next().unwrap();
        assert!(matches!(id.bytes(&t, &first), Err(WatermarkError::NoIdentity)));
    }

    #[test]
    fn from_virtual_columns_picks_source() {
        assert_eq!(TupleIdentity::from_virtual_columns(&[]), TupleIdentity::IdentifyingColumns);
        assert_eq!(
            TupleIdentity::from_virtual_columns(&["a".into()]),
            TupleIdentity::VirtualKey(vec!["a".into()])
        );
    }

    #[test]
    fn selector_rejects_zero_eta() {
        let key = WatermarkKey::new(b"k1".to_vec(), b"k2".to_vec(), 0);
        assert!(matches!(Selector::new(&key), Err(WatermarkError::InvalidEta)));
    }

    #[test]
    fn selection_rate_tracks_eta() {
        let key = WatermarkKey::from_master(b"secret", 10);
        let sel = Selector::new(&key).unwrap();
        let n = 10_000;
        let picked = (0..n).filter(|i| sel.selects(format!("ident-{i}").as_bytes())).count();
        let expected = n as f64 / 10.0;
        assert!(
            (picked as f64 - expected).abs() < expected * 0.3,
            "picked {picked}, expected ≈ {expected}"
        );
    }

    #[test]
    fn eta_one_selects_everything() {
        let key = WatermarkKey::from_master(b"secret", 1);
        let sel = Selector::new(&key).unwrap();
        assert!((0..100).all(|i| sel.selects(format!("id-{i}").as_bytes())));
    }

    #[test]
    fn indices_are_deterministic_and_in_range() {
        let key = WatermarkKey::from_master(b"secret", 5);
        let sel = Selector::new(&key).unwrap();
        for i in 0..200u32 {
            let ident = i.to_be_bytes();
            let b = sel.bit_index(&ident, "age", 160);
            assert!(b < 160);
            assert_eq!(b, sel.bit_index(&ident, "age", 160));
            let p = sel.permutation_index(&ident, "age", 7);
            assert!(p < 7);
        }
        // Degenerate lengths.
        assert_eq!(sel.bit_index(b"x", "age", 0), 0);
        assert_eq!(sel.permutation_index(b"x", "age", 0), 0);
    }

    #[test]
    fn column_separation_of_indices() {
        let key = WatermarkKey::from_master(b"secret", 5);
        let sel = Selector::new(&key).unwrap();
        let differing = (0..100u32)
            .filter(|i| {
                sel.bit_index(&i.to_be_bytes(), "age", 1000)
                    != sel.bit_index(&i.to_be_bytes(), "doctor", 1000)
            })
            .count();
        assert!(differing > 50, "column labels should decorrelate bit indices");
    }

    #[test]
    fn set_parity_behaviour() {
        // Even request.
        assert_eq!(set_parity(5, false, 8), 4);
        // Odd request.
        assert_eq!(set_parity(4, true, 8), 5);
        // Parity preserved when already correct.
        assert_eq!(set_parity(6, false, 8), 6);
        // Clamped to range: index 7 requested odd in a set of 7 (max 6).
        assert_eq!(set_parity(7, true, 7), 5);
        assert_eq!(set_parity(7, false, 7), 6);
        // Singleton set cannot encode.
        assert_eq!(set_parity(3, true, 1), 0);
        assert_eq!(set_parity(0, false, 1), 0);
        // Result always in range and with requested parity when set_len > 1.
        for len in 2..10usize {
            for idx in 0..len {
                for bit in [false, true] {
                    let r = set_parity(idx, bit, len);
                    assert!(r < len);
                    assert_eq!(r % 2 == 1, bit);
                }
            }
        }
    }
}
